"""Algebraic division by linear building blocks (paper Section 14.4.3).

Given the divisor pool exposed by CCE and Cube_Ex, every polynomial (and
every non-trivial block definition) is divided by every linear block::

    P = l * q + r,   then recursively  q = l * q' + r'  (powers of l)

A successful chain turns ``x^2 + 6xy + 9y^2`` into ``d^2`` with
``d = x + 3y`` — "possible only through algebraic division; none of the
other expression manipulation techniques can identify this
transformation".  Divisions are kept as *candidate representations*; the
combination search of Algorithm 7 decides which ones win.
"""

from __future__ import annotations

from repro.obs import current_tracer
from repro.poly import Polynomial, divmod_poly
from repro.poly.division import (
    _divide_out_all_packed,
    _packed_divmod_core,
    _packed_lead_rest,
)
from repro.poly.packed import PackedContext, packed_enabled, packed_form

from .blocks import BlockRegistry
from .budget import CHECK_STRIDE, current_deadline


def divide_by_block(
    poly: Polynomial,
    divisor_ground: Polynomial,
    block_name: str,
    max_depth: int = 8,
) -> Polynomial | None:
    """Express ``poly`` as nested multiples of one linear block.

    Returns a polynomial over ``poly.vars + (block_name,)`` (the block
    variable carries the divisor), or ``None`` when the divisor yields no
    quotient at all.  The identity ``result[block := divisor] == poly``
    holds exactly.
    """
    if divisor_ground.vars != poly.vars:
        # Align the operands once up front: the recursion below divides
        # the quotient (already over these variables) by the same divisor
        # repeatedly, and per-level re-unification was a dominant cost of
        # the division phase.
        if set(divisor_ground.used_vars()) <= set(poly.vars):
            divisor_ground = divisor_ground.with_vars(poly.vars)
        else:
            poly, divisor_ground = Polynomial.unify(poly, divisor_ground)
    ctx = None
    if packed_enabled() and not poly.is_zero:
        ctx = PackedContext.for_degrees(
            len(poly.vars),
            max(poly.total_degree(), divisor_ground.total_degree()),
        )
    if ctx is not None:
        return _divide_by_block_packed(
            poly, divisor_ground, block_name, max_depth, ctx
        )
    quotient, remainder = divmod_poly(poly, divisor_ground)
    if quotient.is_zero:
        return None
    inner = quotient
    if max_depth > 1 and quotient.total_degree() >= divisor_ground.total_degree():
        deeper = divide_by_block(quotient, divisor_ground, block_name, max_depth - 1)
        if deeper is not None:
            inner = deeper
    block_var = Polynomial.variable(block_name)
    return block_var * inner + remainder


def _packed_division_levels(
    poly: Polynomial,
    divisor_ground: Polynomial,
    max_depth: int,
    ctx: PackedContext,
) -> list[tuple[dict[int, int], dict[int, int]]] | None:
    """The packed quotient/remainder chain of a block division.

    Reduces ``P = l*(l*(...*q + r_m...) + r_1) + r_0`` entirely in
    packed space; level ``k`` holds the ``(quotient, remainder)`` dicts
    of the ``k``-th reduction.  Returns ``None`` when the divisor
    yields no quotient at all.  Kept separate from the polynomial
    assembly so the candidate loop can rank chains by term count and
    only materialize the winners.
    """
    lead, lead_coeff, rest = _packed_lead_rest(divisor_ground, ctx)
    divisor_degree = divisor_ground.total_degree()
    divides = ctx.divides
    degree_of = ctx.degree_of
    levels: list[tuple[dict[int, int], dict[int, int]]] = []
    work_map: dict[int, int] = packed_form(poly, ctx).term_map()
    depth = max_depth
    while True:
        # Zero-quotient early-out (same probe as divmod_poly): the
        # candidate loops try divisor pools where most chains end here.
        for p, c in work_map.items():
            if c % lead_coeff == 0 and divides(lead, p):
                break
        else:
            break
        quotient, remainder = _packed_divmod_core(
            dict(work_map), lead, lead_coeff, rest, ctx
        )
        if not quotient:
            break
        levels.append((quotient, remainder))
        depth -= 1
        if depth < 1 or degree_of(min(quotient)) < divisor_degree:
            break
        work_map = quotient
    return levels or None


def _level_term_count(levels: list[tuple[dict[int, int], dict[int, int]]]) -> int:
    """``len()`` of the polynomial the levels assemble to, without building it.

    Every level gets a distinct block power, so no two emitted terms can
    collide and the counts simply add.
    """
    return len(levels[-1][0]) + sum(len(rem) for _, rem in levels)


def _assemble_packed_levels(
    poly: Polynomial,
    levels: list[tuple[dict[int, int], dict[int, int]]],
    block_name: str,
    ctx: PackedContext,
) -> Polynomial:
    """Materialize a division chain as ``block^(m+1)*q_m + sum block^k*r_k``.

    Term order of the result reproduces the tuple path exactly: the
    nested ``block * inner + remainder`` construction yields the deepest
    quotient's terms first (highest block power), then each level's
    remainder in descending block power, every group in its reduction
    order.  The variable tuple is the sorted union the tuple path's
    unify would produce.
    """
    union = tuple(sorted(set(poly.vars) | {block_name}))
    block_at = union.index(block_name)
    position = [union.index(v) for v in poly.vars]
    nunion = len(union)
    unpack = ctx.unpack
    terms: dict[tuple, int] = {}

    def emit(packed_terms: dict[int, int], block_power: int) -> None:
        for p, coeff in packed_terms.items():
            exps = unpack(p)
            out = [0] * nunion
            for src, dst in enumerate(position):
                out[dst] = exps[src]
            out[block_at] = block_power
            terms[tuple(out)] = coeff

    deepest = len(levels) - 1
    emit(levels[deepest][0], deepest + 1)
    for level in range(deepest, -1, -1):
        emit(levels[level][1], level)
    return Polynomial._raw(union, terms)


def _divide_by_block_packed(
    poly: Polynomial,
    divisor_ground: Polynomial,
    block_name: str,
    max_depth: int,
    ctx: PackedContext,
) -> Polynomial | None:
    """The packed whole-chain equivalent of the recursive tuple path."""
    levels = _packed_division_levels(poly, divisor_ground, max_depth, ctx)
    if levels is None:
        return None
    return _assemble_packed_levels(poly, levels, block_name, ctx)


def _align_for_packed(
    poly: Polynomial, divisor: Polynomial
) -> tuple[Polynomial, Polynomial, PackedContext] | None:
    """Operands aligned + a sized context, or ``None`` -> tuple fallback.

    The same alignment :func:`divide_by_block` performs, hoisted so the
    candidate loop can drive the packed chain directly.
    """
    if not packed_enabled() or poly.is_zero:
        return None
    if divisor.vars != poly.vars:
        if set(divisor.used_vars()) <= set(poly.vars):
            divisor = divisor.with_vars(poly.vars)
        else:
            poly, divisor = Polynomial.unify(poly, divisor)
    ctx = PackedContext.for_degrees(
        len(poly.vars), max(poly.total_degree(), divisor.total_degree())
    )
    if ctx is None:
        return None
    return poly, divisor, ctx


def division_candidates(
    ground_poly: Polynomial,
    registry: BlockRegistry,
    max_candidates: int = 6,
) -> list[Polynomial]:
    """Candidate representations of one polynomial via the divisor pool.

    Tries every registered linear block; candidates are ranked by how much
    structure the division removed (fewer remaining ground terms first)
    and capped at ``max_candidates``.  In packed mode losing chains are
    never materialized: the ranking key (the assembled term count) is
    read off the packed level dicts, and only the ``max_candidates``
    survivors are built into polynomials after the sort.
    """
    candidates: list[tuple[int, object]] = []
    poly_vars = set(ground_poly.used_vars())
    ground_trim = ground_poly.trim()
    deadline = current_deadline()
    ticking = deadline.enabled
    pending = 0
    with current_tracer().span("algdiv/divide") as span:
        divisors = 0
        for name, divisor in registry.linear_blocks():
            if ticking:
                pending += 1
                if pending >= CHECK_STRIDE:
                    deadline.tick(pending, site="algdiv/divide")
                    pending = 0
            if name in poly_vars:
                # The block's own variable appears (with positive degree)
                # in the polynomial — dividing would be self-referential.
                continue
            if not set(divisor.used_vars()) <= poly_vars:
                continue  # the divisor mentions variables the polynomial lacks
            divisors += 1
            prepared = _align_for_packed(ground_poly, divisor)
            if prepared is not None:
                apoly, adivisor, ctx = prepared
                levels = _packed_division_levels(apoly, adivisor, 8, ctx)
                if levels is None:
                    continue
                count = _level_term_count(levels)
                if count == len(ground_trim):
                    # Only a count tie can be an identity rewrite; check
                    # it eagerly so no-op candidates never enter the pool.
                    rewritten = _assemble_packed_levels(apoly, levels, name, ctx)
                    if rewritten.trim() == ground_trim:
                        continue
                    candidates.append((count, rewritten))
                else:
                    candidates.append((count, (apoly, levels, name, ctx)))
                continue
            rewritten = divide_by_block(ground_poly, divisor, name)
            if rewritten is None:
                continue
            # Equal polynomials need equal term counts — skip the trim
            # and comparison when the counts already differ.
            if len(rewritten) == len(ground_trim) and rewritten.trim() == ground_trim:
                continue
            # Rank: strongly prefer representations with fewer terms (more of
            # the polynomial folded into the block structure).
            candidates.append((len(rewritten), rewritten))
        if ticking and pending:
            deadline.tick(pending, site="algdiv/divide")
        span.count(divisors=divisors, candidates=len(candidates))
    candidates.sort(key=lambda item: item[0])
    chosen: list[Polynomial] = []
    for _, entry in candidates[:max_candidates]:
        if isinstance(entry, Polynomial):
            chosen.append(entry)
        else:
            apoly, levels, name, ctx = entry
            chosen.append(_assemble_packed_levels(apoly, levels, name, ctx))
    return chosen


def refine_block_definitions(registry: BlockRegistry) -> int:
    """Rewrite block definitions through other blocks when exact.

    For every block whose ground polynomial is exactly divisible by some
    *other* linear block (possibly repeatedly), replace its definition by
    the factored form — e.g. the CCE block ``x^2 + 2xy + y^2`` becomes
    ``d1^2`` once ``d1 = x + y`` exists.  Returns how many definitions
    were rewritten.
    """
    from repro.poly import divide_out_all

    rewritten = 0
    with current_tracer().span("algdiv/refine") as span:
        rewritten = _refine_block_definitions(registry, divide_out_all)
        span.count(rewritten=rewritten)
    return rewritten


def _refine_block_definitions(registry: BlockRegistry, divide_out_all) -> int:
    deadline = current_deadline()
    ticking = deadline.enabled
    pending = 0
    rewritten = 0
    use_packed = packed_enabled()
    for name in list(registry.defs):
        ground = registry.ground[name]
        if ground.is_linear:
            continue
        best: Polynomial | None = None
        ground_used = set(ground.used_vars())
        ground_degree = ground.total_degree()
        # One context and one packed form serve the whole divisor sweep:
        # every admitted divisor has degree <= the ground's, so the
        # context divide_out_all would size per pair is this one.
        ctx = None
        if use_packed and not ground.is_zero:
            ctx = PackedContext.for_degrees(len(ground.vars), ground_degree)
        for divisor_name, divisor in registry.linear_blocks():
            if ticking:
                pending += 1
                if pending >= CHECK_STRIDE:
                    deadline.tick(pending, site="algdiv/refine")
                    pending = 0
            if divisor_name == name:
                continue
            # Exact divisibility over Z needs every divisor variable to
            # appear in the dividend (a product cannot erase a variable)
            # and cannot raise the total degree — reject without dividing.
            if divisor.total_degree() > ground_degree:
                continue
            if not set(divisor.used_vars()) <= ground_used:
                continue
            if ctx is not None and divisor.vars == ground.vars:
                reduced, multiplicity = _divide_out_all_packed(
                    ground, divisor, ctx
                )
            else:
                reduced, multiplicity = divide_out_all(ground, divisor)
            if multiplicity == 0:
                continue
            new_vars = tuple(dict.fromkeys(reduced.vars + (divisor_name,)))
            block_var = Polynomial.variable(divisor_name, new_vars)
            candidate = reduced.with_vars(new_vars) * block_var ** multiplicity
            if best is None or len(candidate) < len(best):
                best = candidate
        if best is not None and len(best) < len(registry.defs[name]):
            registry.rewrite_definition(name, best)
            rewritten += 1
    if ticking and pending:
        deadline.tick(pending, site="algdiv/refine")
    return rewritten
