"""Algebraic division by linear building blocks (paper Section 14.4.3).

Given the divisor pool exposed by CCE and Cube_Ex, every polynomial (and
every non-trivial block definition) is divided by every linear block::

    P = l * q + r,   then recursively  q = l * q' + r'  (powers of l)

A successful chain turns ``x^2 + 6xy + 9y^2`` into ``d^2`` with
``d = x + 3y`` — "possible only through algebraic division; none of the
other expression manipulation techniques can identify this
transformation".  Divisions are kept as *candidate representations*; the
combination search of Algorithm 7 decides which ones win.
"""

from __future__ import annotations

from repro.obs import current_tracer
from repro.poly import Polynomial, divmod_poly

from .blocks import BlockRegistry
from .budget import CHECK_STRIDE, current_deadline


def divide_by_block(
    poly: Polynomial,
    divisor_ground: Polynomial,
    block_name: str,
    max_depth: int = 8,
) -> Polynomial | None:
    """Express ``poly`` as nested multiples of one linear block.

    Returns a polynomial over ``poly.vars + (block_name,)`` (the block
    variable carries the divisor), or ``None`` when the divisor yields no
    quotient at all.  The identity ``result[block := divisor] == poly``
    holds exactly.
    """
    if divisor_ground.vars != poly.vars:
        # Align the operands once up front: the recursion below divides
        # the quotient (already over these variables) by the same divisor
        # repeatedly, and per-level re-unification was a dominant cost of
        # the division phase.
        if set(divisor_ground.used_vars()) <= set(poly.vars):
            divisor_ground = divisor_ground.with_vars(poly.vars)
        else:
            poly, divisor_ground = Polynomial.unify(poly, divisor_ground)
    quotient, remainder = divmod_poly(poly, divisor_ground)
    if quotient.is_zero:
        return None
    inner = quotient
    if max_depth > 1 and quotient.total_degree() >= divisor_ground.total_degree():
        deeper = divide_by_block(quotient, divisor_ground, block_name, max_depth - 1)
        if deeper is not None:
            inner = deeper
    block_var = Polynomial.variable(block_name)
    return block_var * inner + remainder


def division_candidates(
    ground_poly: Polynomial,
    registry: BlockRegistry,
    max_candidates: int = 6,
) -> list[Polynomial]:
    """Candidate representations of one polynomial via the divisor pool.

    Tries every registered linear block; candidates are ranked by how much
    structure the division removed (fewer remaining ground terms first)
    and capped at ``max_candidates``.
    """
    candidates: list[tuple[int, Polynomial]] = []
    poly_vars = set(ground_poly.used_vars())
    deadline = current_deadline()
    ticking = deadline.enabled
    pending = 0
    with current_tracer().span("algdiv/divide") as span:
        divisors = 0
        for name, divisor in registry.linear_blocks():
            if ticking:
                pending += 1
                if pending >= CHECK_STRIDE:
                    deadline.tick(pending, site="algdiv/divide")
                    pending = 0
            if name in ground_poly.vars and ground_poly.degree(name) > 0:
                continue
            if not set(divisor.used_vars()) <= poly_vars:
                continue  # the divisor mentions variables the polynomial lacks
            divisors += 1
            rewritten = divide_by_block(ground_poly, divisor, name)
            if rewritten is None:
                continue
            if rewritten.trim() == ground_poly.trim():
                continue
            # Rank: strongly prefer representations with fewer terms (more of
            # the polynomial folded into the block structure).
            candidates.append((len(rewritten), rewritten))
        if ticking and pending:
            deadline.tick(pending, site="algdiv/divide")
        span.count(divisors=divisors, candidates=len(candidates))
    candidates.sort(key=lambda item: item[0])
    return [poly for _, poly in candidates[:max_candidates]]


def refine_block_definitions(registry: BlockRegistry) -> int:
    """Rewrite block definitions through other blocks when exact.

    For every block whose ground polynomial is exactly divisible by some
    *other* linear block (possibly repeatedly), replace its definition by
    the factored form — e.g. the CCE block ``x^2 + 2xy + y^2`` becomes
    ``d1^2`` once ``d1 = x + y`` exists.  Returns how many definitions
    were rewritten.
    """
    from repro.poly import divide_out_all

    rewritten = 0
    with current_tracer().span("algdiv/refine") as span:
        rewritten = _refine_block_definitions(registry, divide_out_all)
        span.count(rewritten=rewritten)
    return rewritten


def _refine_block_definitions(registry: BlockRegistry, divide_out_all) -> int:
    deadline = current_deadline()
    ticking = deadline.enabled
    pending = 0
    rewritten = 0
    for name in list(registry.defs):
        ground = registry.ground[name]
        if ground.is_linear:
            continue
        best: Polynomial | None = None
        ground_used = set(ground.used_vars())
        ground_degree = ground.total_degree()
        for divisor_name, divisor in registry.linear_blocks():
            if ticking:
                pending += 1
                if pending >= CHECK_STRIDE:
                    deadline.tick(pending, site="algdiv/refine")
                    pending = 0
            if divisor_name == name:
                continue
            # Exact divisibility over Z needs every divisor variable to
            # appear in the dividend (a product cannot erase a variable)
            # and cannot raise the total degree — reject without dividing.
            if divisor.total_degree() > ground_degree:
                continue
            if not set(divisor.used_vars()) <= ground_used:
                continue
            reduced, multiplicity = divide_out_all(ground, divisor)
            if multiplicity == 0:
                continue
            new_vars = tuple(dict.fromkeys(reduced.vars + (divisor_name,)))
            block_var = Polynomial.variable(divisor_name, new_vars)
            candidate = reduced.with_vars(new_vars) * block_var ** multiplicity
            if best is None or len(candidate) < len(best):
                best = candidate
        if best is not None and len(best) < len(registry.defs[name]):
            registry.rewrite_definition(name, best)
            rewritten += 1
    if ticking and pending:
        deadline.tick(pending, site="algdiv/refine")
    return rewritten
