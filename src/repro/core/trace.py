"""Structured tracing of the synthesis flow.

``synthesize(..., trace=FlowTrace())`` records one event per meaningful
action of every phase — representations generated, blocks registered,
definitions refined, combinations scored — giving benches and debugging
sessions the same visibility Fig. 14.1 gives the paper's reader.
Tracing is opt-in and the flow never reads the trace back, so it cannot
change results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class FlowEvent:
    """One recorded action."""

    phase: str
    message: str
    data: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extra = f" {self.data}" if self.data else ""
        return f"[{self.phase}] {self.message}{extra}"


@dataclass
class FlowTrace:
    """An append-only log of flow events."""

    events: list[FlowEvent] = field(default_factory=list)

    def record(self, phase: str, message: str, **data: Any) -> None:
        self.events.append(FlowEvent(phase, message, dict(data)))

    def by_phase(self, phase: str) -> list[FlowEvent]:
        return [e for e in self.events if e.phase == phase]

    def phases(self) -> list[str]:
        seen: list[str] = []
        for event in self.events:
            if event.phase not in seen:
                seen.append(event.phase)
        return seen

    def summary(self) -> str:
        lines = []
        for phase in self.phases():
            events = self.by_phase(phase)
            lines.append(f"{phase}: {len(events)} event(s)")
            for event in events[:8]:
                lines.append(f"  - {event.message}")
            if len(events) > 8:
                lines.append(f"  ... and {len(events) - 8} more")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.events)
