"""Resource budgets and cooperative deadlines for the synthesis flow.

The flow's worst cases are combinatorial: canonicalization over ``Z_2^m``
is exponential in the number of inputs (Section 14.3.1's falling-factorial
rewrite), the kernel-intersection CSE is quadratic in kernel count, and
the combination search multiplies representation-list sizes.  A single
pathological job must not hang a caller (or a batch-engine pool worker)
forever, so every hot loop checks an ambient :class:`Deadline`
cooperatively and raises :class:`BudgetExceeded` when its
:class:`Budget` runs out.

Design mirrors :mod:`repro.obs.tracer`:

* **Near-zero overhead when off.**  The ambient deadline defaults to
  :data:`NULL_DEADLINE`, whose :meth:`~NullDeadline.tick` is an empty
  method; hot loops fetch the deadline once per function and tick it
  unconditionally.
* **Ambient, not threaded.**  A ``ContextVar`` carries the active
  deadline (:func:`current_deadline` / :func:`use_deadline`), so the
  deep call chains (``synthesize`` > ``cse/extract`` > kernel loops)
  need no signature changes.
* **Cooperative, not preemptive.**  A tick is an integer decrement; the
  wall clock is consulted every :data:`CHECK_STRIDE` ticks.  Preemption
  of truly hung code is the batch engine's job (hard per-job pool
  timeouts; see ``docs/ROBUSTNESS.md``).

:class:`Budget` is the *policy* (immutable, serializable, part of
:class:`~repro.config.RunConfig`); :class:`Deadline` is the *runtime
state* of one job enforcing it.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Any, Iterator

#: How many :meth:`Deadline.tick` calls go by between wall-clock checks.
CHECK_STRIDE = 64


class BudgetExceeded(RuntimeError):
    """A cooperative budget check failed.

    Carries where it fired (``site``) and which limit tripped
    (``limit``: ``"job"``, ``"phase"``, or ``"steps"``) so degradation
    records stay diagnosable.
    """

    def __init__(self, message: str, *, site: str = "", limit: str = "job") -> None:
        super().__init__(message)
        self.site = site
        self.limit = limit


@dataclass(frozen=True)
class Budget:
    """Resource limits for one synthesis job (all ``None`` = unlimited).

    * ``job_seconds`` — wall-clock ceiling for the whole job,
    * ``phase_seconds`` — wall-clock ceiling for each flow phase,
    * ``max_steps`` — a deterministic step-count fuse: every cooperative
      checkpoint consumes steps, so tests (and reproducible degradation)
      do not depend on machine speed.
    """

    job_seconds: float | None = None
    phase_seconds: float | None = None
    max_steps: int | None = None

    @property
    def unlimited(self) -> bool:
        return (
            self.job_seconds is None
            and self.phase_seconds is None
            and self.max_steps is None
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "kind": "budget",
            "job_seconds": self.job_seconds,
            "phase_seconds": self.phase_seconds,
            "max_steps": self.max_steps,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Budget":
        if data.get("kind") != "budget":
            raise ValueError(f"not a budget payload: {data.get('kind')!r}")
        return cls(
            job_seconds=(
                None if data.get("job_seconds") is None else float(data["job_seconds"])
            ),
            phase_seconds=(
                None
                if data.get("phase_seconds") is None
                else float(data["phase_seconds"])
            ),
            max_steps=(
                None if data.get("max_steps") is None else int(data["max_steps"])
            ),
        )


@dataclass(frozen=True)
class Degradation:
    """One recorded budget overrun and what the flow did about it."""

    phase: str   # which phase (or "job" / "pool") hit the limit
    action: str  # "skipped" | "partial" | "fallback:<method>" | "degraded-rerun"
    reason: str  # human-readable cause, e.g. "phase budget 0.5s exceeded"

    def as_dict(self) -> dict[str, Any]:
        return {"phase": self.phase, "action": self.action, "reason": self.reason}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Degradation":
        return cls(
            phase=str(data["phase"]),
            action=str(data["action"]),
            reason=str(data["reason"]),
        )

    def __str__(self) -> str:
        return f"{self.phase}: {self.action} ({self.reason})"


class NullDeadline:
    """The disabled deadline: every operation is a cheap no-op."""

    __slots__ = ()
    enabled = False
    steps = 0

    def tick(self, n: int = 1, site: str = "") -> None:
        pass

    def check(self, site: str = "") -> None:
        pass

    def expired(self) -> bool:
        return False

    def remaining(self) -> float | None:
        return None

    def start_phase(self, name: str) -> None:
        pass

    def end_phase(self) -> None:
        pass

    def disarm(self) -> None:
        pass


NULL_DEADLINE = NullDeadline()


class Deadline:
    """Runtime enforcement of one job's :class:`Budget`.

    Created when a job starts; installed as the ambient deadline with
    :func:`use_deadline`.  Hot loops call :meth:`tick`; phase boundaries
    call :meth:`start_phase`/:meth:`end_phase` (done by the flow's
    ``_phase`` machinery).
    """

    __slots__ = (
        "budget",
        "steps",
        "_job_deadline",
        "_phase_deadline",
        "_phase_name",
        "_countdown",
        "_armed",
    )

    enabled = True

    def __init__(self, budget: Budget) -> None:
        self.budget = budget
        self.steps = 0
        now = time.perf_counter()
        self._job_deadline = (
            None if budget.job_seconds is None else now + budget.job_seconds
        )
        self._phase_deadline: float | None = None
        self._phase_name = ""
        self._countdown = CHECK_STRIDE
        self._armed = True

    # -- phase boundaries -------------------------------------------------

    def start_phase(self, name: str) -> None:
        self._phase_name = name
        if self._armed and self.budget.phase_seconds is not None:
            self._phase_deadline = time.perf_counter() + self.budget.phase_seconds

    def end_phase(self) -> None:
        self._phase_name = ""
        self._phase_deadline = None

    # -- cooperative checks ----------------------------------------------

    def tick(self, n: int = 1, site: str = "") -> None:
        """Consume ``n`` steps; check the wall clock every few steps.

        Hot loops may batch: calling ``tick(64)`` once consumes the same
        steps — and consults the wall clock on the same cadence — as 64
        ``tick()`` calls, because the stride countdown is denominated in
        steps, not calls.
        """
        if not self._armed:
            return
        self.steps += n
        max_steps = self.budget.max_steps
        if max_steps is not None and self.steps > max_steps:
            raise BudgetExceeded(
                f"step budget {max_steps} exceeded"
                + (f" at {site}" if site else ""),
                site=site,
                limit="steps",
            )
        self._countdown -= n
        if self._countdown <= 0:
            self._countdown = CHECK_STRIDE
            self.check(site)

    def check(self, site: str = "") -> None:
        """Raise :class:`BudgetExceeded` if any wall-clock limit passed."""
        if not self._armed:
            return
        now = time.perf_counter()
        if self._phase_deadline is not None and now > self._phase_deadline:
            raise BudgetExceeded(
                f"phase budget {self.budget.phase_seconds}s exceeded in "
                f"{self._phase_name or 'unknown phase'}"
                + (f" at {site}" if site else ""),
                site=site,
                limit="phase",
            )
        if self._job_deadline is not None and now > self._job_deadline:
            raise BudgetExceeded(
                f"job budget {self.budget.job_seconds}s exceeded"
                + (f" at {site}" if site else ""),
                site=site,
                limit="job",
            )

    def expired(self) -> bool:
        """Has a wall-clock or step limit already passed? (Never raises.)"""
        if not self._armed:
            return False
        try:
            self.check()
        except BudgetExceeded:
            return True
        max_steps = self.budget.max_steps
        return max_steps is not None and self.steps > max_steps

    def disarm(self) -> None:
        """Stop enforcing limits for the rest of the job.

        Called once the flow has committed to wrapping up with a partial
        result: retrieving the cached best combination and validating it
        are mandatory, bounded work that must not be interrupted again.
        """
        self._armed = False
        self._phase_deadline = None

    def remaining(self) -> float | None:
        """Seconds until the tightest wall-clock limit (None = unlimited)."""
        now = time.perf_counter()
        candidates = [
            d - now
            for d in (self._job_deadline, self._phase_deadline)
            if d is not None
        ]
        return min(candidates) if candidates else None


# ----------------------------------------------------------------------
# The ambient deadline
# ----------------------------------------------------------------------

_current: ContextVar["Deadline | NullDeadline"] = ContextVar(
    "repro_deadline", default=NULL_DEADLINE
)


def current_deadline() -> "Deadline | NullDeadline":
    """The ambient deadline (the no-op deadline unless one was installed)."""
    return _current.get()


@contextmanager
def use_deadline(deadline: "Deadline | NullDeadline") -> Iterator["Deadline | NullDeadline"]:
    """Temporarily install ``deadline`` as the ambient deadline.

    >>> from repro.core.budget import Budget, Deadline, use_deadline
    >>> with use_deadline(Deadline(Budget(max_steps=10_000))):
    ...     pass  # cooperative checks in here consume the budget
    """
    token = _current.set(deadline)
    try:
        yield deadline
    finally:
        _current.reset(token)


def deadline_for(budget: "Budget | None") -> "Deadline | NullDeadline":
    """A :class:`Deadline` for ``budget``, or the no-op when unlimited."""
    if budget is None or budget.unlimited:
        return NULL_DEADLINE
    return Deadline(budget)
