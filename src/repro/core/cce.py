"""Common Coefficient Extraction — Algorithm 6 of the paper.

Kernel/co-kernel factoring treats numeric coefficients as opaque literals,
so it can never see ``8x + 16y + 24z = 8(x + 2y + 3z)``.  CCE fixes that
with integer GCDs:

1. collect the coefficients involved in multiplications (the standalone
   additive constant is ignored — implementing ``+11`` directly is free),
2. compute all pairwise GCDs, keeping only those equal to one of the two
   coefficients (a GCD strictly smaller than both, like ``gcd(24,30)=6``,
   would *add* multipliers: ``6(4z+5b)`` is worse than ``24z+30b``),
3. walk the surviving GCDs in decreasing order, extracting each group of
   still-unconsumed terms it divides,
4. register the extracted groups as building blocks — the linear ones
   feed algebraic division later.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gcd

from repro.obs import current_tracer
from repro.poly import Polynomial
from repro.poly.monomial import mono_literal_count

from .blocks import BlockRegistry
from .budget import current_deadline


@dataclass(frozen=True)
class CceResult:
    """Rewritten polynomial plus the blocks the extraction created."""

    poly: Polynomial           # over the original variables + block variables
    extracted: tuple[str, ...]  # block names, in extraction order


def candidate_gcds(coefficients: list[int]) -> list[int]:
    """The filtered, descending GCD list of Algorithm 6 (lines 3-10)."""
    deadline = current_deadline()
    magnitudes = [abs(c) for c in coefficients if abs(c) > 1]
    kept: set[int] = set()
    for i in range(len(magnitudes)):
        deadline.tick(len(magnitudes) - i - 1, site="cce/candidate_gcds")
        for j in range(i + 1, len(magnitudes)):
            g = gcd(magnitudes[i], magnitudes[j])
            if g == 1:
                continue
            if g < magnitudes[i] and g < magnitudes[j]:
                continue
            kept.add(g)
    return sorted(kept, reverse=True)


def common_coefficient_extraction(
    poly: Polynomial, registry: BlockRegistry
) -> CceResult | None:
    """Apply Algorithm 6 to one polynomial.

    Returns ``None`` when no extraction applies.  The rewritten polynomial
    is expressed over the original variables plus one fresh block variable
    per extracted group; substituting the definitions back reproduces the
    input exactly (an integer identity — CCE never needs modular
    reasoning).
    """
    eligible = {
        exps: coeff
        for exps, coeff in poly.terms.items()
        if mono_literal_count(exps) >= 1 and abs(coeff) > 1
    }
    if len(eligible) < 2:
        return None
    with current_tracer().span("cce/gcd_pass") as span:
        gcd_list = candidate_gcds(list(eligible.values()))
        span.count(eligible=len(eligible), gcds=len(gcd_list))
        if not gcd_list:
            return None

        deadline = current_deadline()
        consumed: set = set()
        groups: list[tuple[int, dict]] = []
        for g in gcd_list:
            deadline.tick(len(eligible), site="cce/group")
            group = {
                exps: coeff
                for exps, coeff in eligible.items()
                if exps not in consumed and coeff % g == 0
            }
            if len(group) < 2:
                continue
            consumed.update(group)
            groups.append(
                (g, {exps: coeff // g for exps, coeff in group.items()})
            )
        span.count(groups=len(groups))
    if not groups:
        return None

    leftover = {
        exps: coeff for exps, coeff in poly.terms.items() if exps not in consumed
    }
    new_vars = poly.vars
    rebuilt = Polynomial(new_vars, leftover)
    names: list[str] = []
    for g, block_terms in groups:
        block_poly = Polynomial(poly.vars, block_terms)
        name, sign = registry.register(block_poly)
        names.append(name)
        if name not in new_vars:
            new_vars = new_vars + (name,)
        rebuilt = rebuilt.with_vars(new_vars) if rebuilt.vars != new_vars else rebuilt
        block_var = Polynomial.variable(name, new_vars)
        rebuilt = rebuilt + block_var.scale(g * sign)
    return CceResult(rebuilt, tuple(names))
