"""Cube_Ex — common cube / kernel exposure (paper Section 14.4.2).

The paper employs kernel/co-kernel extraction "for extracting cubes
composed only of variables" (coefficients are CCE's job) and records both
the co-kernel cubes and the kernels as potential building blocks.  What
the integrated flow actually consumes downstream is the set of **linear
kernels** — they become the divisor pool of algebraic division
(Section 14.4.3: "we consider only the exposed linear expressions as
algebraic divisors"), e.g. ``{(x+6y), (6x+9y), (x+3y)}`` for the
motivating system.

The factored *representations* (``P1 = (xy)(x+z)``) do not need to be
materialized here: the final CSE pass re-derives any profitable kernel
factoring from the flat form, and the cost model scores it identically.
"""

from __future__ import annotations

from repro.cse import all_kernels
from repro.obs import current_events, current_tracer
from repro.poly import Polynomial

from .blocks import BlockRegistry
from .budget import CHECK_STRIDE, current_deadline


def exposed_linear_kernels(poly: Polynomial) -> list[Polynomial]:
    """All linear kernels of a polynomial (ground form, unregistered)."""
    out: list[Polynomial] = []
    seen: set[Polynomial] = set()
    for entry in all_kernels(poly):
        kernel = entry.kernel.trim()
        if kernel.is_linear and len(kernel) >= 2 and kernel not in seen:
            seen.add(kernel)
            out.append(kernel)
    return out


def cube_extraction(
    polys: list[Polynomial], registry: BlockRegistry
) -> list[str]:
    """Expose linear kernels of every polynomial (and block definition).

    Registers each as a block and returns the names.  Polynomials may
    reference block variables; kernels are computed on the expressions as
    given *and* on their ground expansions, so structure hidden behind a
    CCE block (``4(xy^2+3y^3)`` hiding the kernel ``x+3y``) is still
    found.
    """
    deadline = current_deadline()
    ticking = deadline.enabled
    pending = 0
    names: list[str] = []
    seen: set[Polynomial] = set()
    events = current_events()
    emitting = events.enabled  # hoisted: harvest runs inside the search loop

    defs = registry.defs

    def harvest(poly: Polynomial) -> None:
        nonlocal pending
        for kernel in exposed_linear_kernels(poly):
            if ticking:
                pending += 1
                if pending >= CHECK_STRIDE:
                    deadline.tick(pending, site="cube_extract/harvest")
                    pending = 0
            if any(name in defs for name in kernel.used_vars()):
                ground = registry.expand(kernel).trim()
            else:
                # Block-variable-free kernels expand to themselves (the
                # substitution machinery reduces to a trim) — and they are
                # already trimmed by exposed_linear_kernels.
                ground = kernel
            if not ground.is_linear or ground.is_constant or ground.is_zero:
                continue
            if ground in seen:
                continue
            seen.add(ground)
            name, _ = registry.register(kernel)
            if name not in names:
                names.append(name)
                if emitting:
                    events.emit(
                        "block_registered",
                        name=name,
                        source="cube_extract",
                        definition=str(ground),
                    )

    with current_tracer().span("cube_extract/kernels") as span:
        for poly in polys:
            harvest(poly)
            # Without block variables the expansion could only re-trim the
            # polynomial, whose (trimmed) kernels harvest already saw.
            if any(name in defs for name in poly.used_vars()):
                expanded = registry.expand(poly)
                if expanded != poly:
                    harvest(expanded)
        for block_name in list(registry.defs):
            harvest(registry.ground[block_name])
        if ticking and pending:
            deadline.tick(pending, site="cube_extract/harvest")
        span.count(kernels=len(names))
    return names


def homogeneous_part(poly: Polynomial) -> Polynomial:
    """The top-total-degree homogeneous part of a polynomial."""
    degree = poly.total_degree()
    if degree < 0:
        return poly
    return Polynomial(
        poly.vars,
        {e: c for e, c in poly.terms.items() if sum(e) == degree},
    )


def expose_homogeneous_factors(
    polys: list[Polynomial], registry: BlockRegistry
) -> list[str]:
    """Factor each polynomial's top homogeneous form; register linear factors.

    The top-degree form is invariant under input shifts and immune to the
    additive tails that defeat whole-polynomial factoring, so this is
    where hidden linear structure (``72x^2+96xy+32y^2 = 8(3x+2y)^2``)
    surfaces even when the polynomial itself is irreducible.  CCE's GCD
    filter can never split such a group (the content 8 is smaller than
    every coefficient — Algorithm 6 line 6), so this exposure step is what
    hands algebraic division its divisor.
    """
    from repro.factor import factor_polynomial

    names: list[str] = []
    seen: set[Polynomial] = set()
    events = current_events()
    emitting = events.enabled
    with current_tracer().span("cube_extract/homogeneous") as span:
        for poly in polys:
            ground = registry.expand(poly)
            top = homogeneous_part(ground).primitive_part()
            if top.is_constant or top.total_degree() < 2 or len(top) < 2:
                continue
            key = top.trim()
            if key in seen:
                continue
            seen.add(key)
            factorization = factor_polynomial(top)
            for base, _ in factorization.factors:
                if base.is_linear and len(base) >= 2:
                    name, _ = registry.register(base)
                    if name not in names:
                        names.append(name)
                        if emitting:
                            events.emit(
                                "block_registered",
                                name=name,
                                source="homogeneous",
                                definition=str(base),
                            )
        span.count(forms=len(seen), factors=len(names))
    return names
