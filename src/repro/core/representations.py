"""Candidate representation lists — the Fig. 14.1 polynomial data structure.

Algorithm 7 keeps, for every polynomial of the system, a growing list of
alternative representations: the original expanded form, the canonical
(falling-factorial) form, the square-free / fully factored form, the
CCE-rewritten form, and the algebraic-division forms.  Each representation
here is a :class:`~repro.poly.polynomial.Polynomial` over the input
variables plus block variables from the shared
:class:`~repro.core.blocks.BlockRegistry`; the combination search then
picks one representation per polynomial.

Canonical forms deserve a note: they are equal to the original only *as
functions over the bit-vector signature* (mod ``2^m``), so every
representation carries a ``modular`` flag that the validation layer
honours.  The falling-factorial products are expressed through *shift
blocks* (``x - 1``, ``x - 2``, ...), which turns ``5 Y3(x) Y2(y)`` into
the plain cube ``5 * x * (x-1) * (x-2) * y * (y-1)`` — exactly the shape
in which the final CSE can discover shared factors like the paper's
``d3 = x(x-1)y(y-1)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.factor import factor_polynomial
from repro.poly import Polynomial
from repro.rings import BitVectorSignature, to_canonical
from repro.rings.falling import falling_factorial_poly

from .blocks import BlockRegistry
from .cce import common_coefficient_extraction


@dataclass(frozen=True)
class Representation:
    """One candidate form of one polynomial of the system."""

    poly: Polynomial   # over input variables + block variables
    tag: str           # provenance, e.g. "original", "cce", "div(_b3)"
    modular: bool = False  # equal to the original only mod 2^m

    def __str__(self) -> str:
        flag = " (mod 2^m)" if self.modular else ""
        return f"[{self.tag}]{flag} {self.poly}"


def original_representation(poly: Polynomial) -> Representation:
    """The expanded sum-of-products the designer wrote."""
    return Representation(poly, "original")


def factored_representation(
    poly: Polynomial, registry: BlockRegistry
) -> Representation | None:
    """Square-free / full factorization rewritten over factor blocks.

    ``x^2 + 6xy + 9y^2`` becomes ``_b1^2`` with ``_b1 = x + 3y``.  Returns
    ``None`` when the factorization is trivial (a single multiplicity-1
    factor) — the candidate would duplicate the original.
    """
    factorization = factor_polynomial(poly)
    factors = factorization.factors
    if not factors:
        return None
    if len(factors) == 1 and factors[0][1] == 1:
        return None
    result = Polynomial.constant(factorization.content)
    for base, multiplicity in factors:
        if base.is_constant:
            result = result * base ** multiplicity
            continue
        if base.is_linear and len(base) == 1:
            # A bare cube factor (x, 2y, ...) is not worth a named block.
            result = result * base ** multiplicity
            continue
        name, sign = registry.register(base)
        block_var = Polynomial.variable(name)
        result = result * (block_var.scale(sign)) ** multiplicity
    return Representation(result, "factored")


def cce_representation(
    representation: Representation, registry: BlockRegistry
) -> Representation | None:
    """Algorithm 6 applied to an existing representation."""
    outcome = common_coefficient_extraction(representation.poly, registry)
    if outcome is None:
        return None
    return Representation(
        outcome.poly, f"cce({representation.tag})", representation.modular
    )


def canonical_representations(
    poly: Polynomial,
    signature: BitVectorSignature,
    registry: BlockRegistry,
    max_variables: int = 3,
) -> list[Representation]:
    """Partial falling-factorial rewrites over every subset of variables.

    For each non-empty subset ``S`` of the used variables, the canonical
    coefficients are re-expanded with falling factorials for the variables
    in ``S`` (as products of shift blocks) and the power basis for the
    rest.  ``S = {x, y}`` on Table 14.2's ``P3`` produces the paper's
    ``5x(x-1)(x-2)y(y-1) + 3z^2``.
    """
    used = [v for v in poly.used_vars() if v in set(signature.variables)]
    if not used or len(used) > max_variables:
        return []
    try:
        canonical = to_canonical(poly, signature)
    except KeyError:
        return []
    out: list[Representation] = []
    seen: set[Polynomial] = {poly.trim()}
    subsets: list[tuple[str, ...]] = []
    for size in range(1, len(used) + 1):
        subsets.extend(combinations(used, size))
    for subset in subsets:
        candidate = _partial_falling(canonical, set(subset), signature, registry)
        trimmed = candidate.trim()
        if trimmed in seen:
            continue
        seen.add(trimmed)
        out.append(
            Representation(candidate, f"canonical({','.join(subset)})", modular=True)
        )
    # The pure power-basis canonical reduction (degree reduction only).
    reduced = canonical.to_polynomial().with_vars(poly.vars)
    if reduced.trim() not in seen:
        out.append(Representation(reduced, "canonical(reduced)", modular=True))
    return out


def _partial_falling(
    canonical,
    falling_vars: set[str],
    signature: BitVectorSignature,
    registry: BlockRegistry,
) -> Polynomial:
    """Rebuild a canonical form with falling basis only for some variables."""
    from repro.rings import coefficient_modulus

    variables = signature.variables
    total = Polynomial.zero()
    for k_tuple, coeff in canonical.coefficients:
        # Balanced representative: 65531 (mod 2^16) is really -5, and the
        # shift-add constant multiplier for -5 is vastly cheaper.  The
        # coefficient is unique modulo coefficient_modulus(k), so shifting
        # by that modulus preserves the function.
        residue_modulus = coefficient_modulus(signature.output_width, k_tuple)
        if coeff > residue_modulus // 2:
            coeff -= residue_modulus
        term = Polynomial.constant(coeff)
        for var, k in zip(variables, k_tuple):
            if not k:
                continue
            if var in falling_vars:
                # Y_k(var) = var * (var-1) * ... * (var-k+1) as a cube of
                # the variable and k-1 shift blocks.
                factor = Polynomial.variable(var)
                for offset in range(1, k):
                    shift = registry.shift_block(var, offset)
                    factor = factor * Polynomial.variable(shift)
                term = term * factor
            else:
                term = term * falling_factorial_poly(var, k)
        total = total + term
    return total


def initial_representations(
    poly: Polynomial,
    registry: BlockRegistry,
    signature: BitVectorSignature | None = None,
    enable_canonical: bool = True,
    enable_factoring: bool = True,
) -> list[Representation]:
    """The pre-CCE representation list of one polynomial (Fig. 14.1a)."""
    reps = [original_representation(poly)]
    if enable_factoring:
        factored = factored_representation(poly, registry)
        if factored is not None:
            reps.append(factored)
    if enable_canonical and signature is not None:
        reps.extend(canonical_representations(poly, signature, registry))
    return reps


def dedupe_representations(reps: list[Representation]) -> list[Representation]:
    """Drop representations with identical polynomials (keep first tags)."""
    seen: set[Polynomial] = set()
    out: list[Representation] = []
    for rep in reps:
        key = rep.poly.trim()
        if key in seen:
            continue
        seen.add(key)
        out.append(rep)
    return out
