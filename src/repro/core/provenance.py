"""Per-result provenance: *why* the flow produced the result it did.

Verification-oriented work treats auditable evidence of a result's
origin as a first-class output; a :class:`Provenance` gives every
:class:`~repro.core.synth.SynthesisResult` the same property.  It
records the decisions of the Algorithm-7 run — which representation was
chosen per polynomial (and from how large a search space), how the
combination search spent its budget (scored / memoized / pruned), which
blocks and kernels the winner uses, and every degradation taken — as
plain data the ``repro explain`` subcommand renders for humans
(``--format json`` for machines).

The counts here are the *same integers* the run publishes to the
metrics registry (``repro_search_combos_scored`` /
``repro_search_memo_hits`` / ``repro_search_pruned`` and, in dag mode,
the ``repro_search_dag_*`` family); tests hold the two views to exact
agreement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class ChosenRepresentation:
    """One polynomial's winning representation in the final combination."""

    polynomial: str   # the original polynomial, as text
    tag: str          # representation family tag ("original", "cce", ...)
    index: int        # position inside the polynomial's representation list
    candidates: int   # size of that list (the polynomial's search axis)

    def as_dict(self) -> dict[str, Any]:
        return {
            "polynomial": self.polynomial,
            "tag": self.tag,
            "index": self.index,
            "candidates": self.candidates,
        }


@dataclass
class Provenance:
    """The decision record of one synthesis run."""

    objective: str = "area"
    search_mode: str = "exhaustive"  # "exhaustive" | "descent" | "degraded"
    search_space: int = 0        # product of representation-list sizes
    search_bound: int = 0        # combinations the search could have scored
    combinations_scored: int = 0
    memo_hits: int = 0
    pruned: int = 0
    direct_fallback: bool = False  # the flat SOP beat every combination
    # DAG-mode sharing statistics (all zero under cse_mode="rectangle").
    cse_mode: str = "rectangle"  # "dag" | "rectangle"
    dag_nodes: int = 0           # interned nodes in the run's DAG
    dag_intern_hits: int = 0     # intern requests answered by existing nodes
    dag_shared_nodes: int = 0    # product nodes shared across >= 2 sums
    dag_finalists: int = 0       # combinations lowered through exact CSE
    chosen: list[ChosenRepresentation] = field(default_factory=list)
    blocks: dict[str, str] = field(default_factory=dict)  # name -> definition
    degradations: list[str] = field(default_factory=list)

    @property
    def memo_hit_rate(self) -> float:
        """Fraction of combination lookups served without a fresh scoring."""
        total = self.combinations_scored + self.memo_hits
        return self.memo_hits / total if total else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "kind": "provenance",
            "objective": self.objective,
            "search_mode": self.search_mode,
            "search_space": self.search_space,
            "search_bound": self.search_bound,
            "combinations_scored": self.combinations_scored,
            "memo_hits": self.memo_hits,
            "pruned": self.pruned,
            "direct_fallback": self.direct_fallback,
            "cse_mode": self.cse_mode,
            "dag_nodes": self.dag_nodes,
            "dag_intern_hits": self.dag_intern_hits,
            "dag_shared_nodes": self.dag_shared_nodes,
            "dag_finalists": self.dag_finalists,
            "chosen": [c.as_dict() for c in self.chosen],
            "blocks": dict(self.blocks),
            "degradations": list(self.degradations),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Provenance":
        if data.get("kind") != "provenance":
            raise ValueError(f"not a provenance payload: {data.get('kind')!r}")
        return cls(
            objective=str(data.get("objective", "area")),
            search_mode=str(data.get("search_mode", "exhaustive")),
            search_space=int(data.get("search_space", 0)),
            search_bound=int(data.get("search_bound", 0)),
            combinations_scored=int(data.get("combinations_scored", 0)),
            memo_hits=int(data.get("memo_hits", 0)),
            pruned=int(data.get("pruned", 0)),
            direct_fallback=bool(data.get("direct_fallback", False)),
            cse_mode=str(data.get("cse_mode", "rectangle")),
            dag_nodes=int(data.get("dag_nodes", 0)),
            dag_intern_hits=int(data.get("dag_intern_hits", 0)),
            dag_shared_nodes=int(data.get("dag_shared_nodes", 0)),
            dag_finalists=int(data.get("dag_finalists", 0)),
            chosen=[
                ChosenRepresentation(
                    polynomial=str(c["polynomial"]),
                    tag=str(c["tag"]),
                    index=int(c["index"]),
                    candidates=int(c["candidates"]),
                )
                for c in data.get("chosen", [])
            ],
            blocks={str(k): str(v) for k, v in data.get("blocks", {}).items()},
            degradations=[str(d) for d in data.get("degradations", [])],
        )


def explain_text(result, name: str = "") -> str:
    """Human-readable decision report of a :class:`SynthesisResult`.

    Renders the provenance record: the search's shape and telemetry,
    the chosen representation per polynomial, the blocks/kernels of the
    winning decomposition, and any degradations taken.
    """
    prov = result.provenance
    if prov is None:
        return "no provenance recorded (result predates provenance support)"
    lines: list[str] = []
    if name:
        lines.append(f"system: {name}")
    lines += [
        f"objective: {prov.objective}",
        (
            f"search: {prov.search_mode}, space {prov.search_space} "
            f"combination(s), bound {prov.search_bound}"
        ),
        (
            f"telemetry: {prov.combinations_scored} scored, "
            f"{prov.memo_hits} memo hit(s) "
            f"({prov.memo_hit_rate * 100.0:.0f}% hit rate), "
            f"{prov.pruned} pruned"
        ),
        (
            f"cost: {result.initial_op_count} initial "
            f"-> {result.op_count} final"
        ),
    ]
    if prov.cse_mode == "dag":
        lines.append(
            f"dag sharing: {prov.dag_nodes} node(s) interned, "
            f"{prov.dag_intern_hits} intern hit(s), "
            f"{prov.dag_shared_nodes} shared across polynomials, "
            f"{prov.dag_finalists} finalist(s) assembled"
        )
    if prov.direct_fallback:
        lines.append(
            "note: the flat direct SOP beat every assembled combination "
            "and was kept"
        )
    lines.append("chosen representations:")
    for position, choice in enumerate(prov.chosen):
        lines.append(
            f"  p{position}: {choice.tag} "
            f"(candidate {choice.index + 1} of {choice.candidates}) "
            f"for {choice.polynomial}"
        )
    if prov.blocks:
        lines.append("blocks / kernels of the winner:")
        for block, definition in prov.blocks.items():
            lines.append(f"  {block} = {definition}")
    else:
        lines.append("blocks / kernels of the winner: none")
    if prov.degradations:
        lines.append("degradations:")
        lines.extend(f"  {d}" for d in prov.degradations)
    return "\n".join(lines)
