"""Poly_Synth — the integrated synthesis flow (paper Algorithm 7).

The phases, mirroring the paper:

1. **Initial representations** — original, fully factored (square-free and
   deeper), and canonical falling-factorial variants per polynomial
   (Fig. 14.1a).
2. **CCE** (Algorithm 6) on every representation; extracted groups become
   building blocks.
3. **Cube_Ex** — linear kernels of every representation and block
   definition join the divisor pool.
4. **Block refinement** — non-linear block definitions are factored
   (``x^2+2xy+y^2 -> d1^2``) and divided through other blocks.
5. **Algebraic division** — every polynomial is divided by every linear
   block; quotient chains become candidate representations (Fig. 14.1b).
6. **Combination search** — pick one representation per polynomial
   (exhaustively when the product of list sizes is small, by coordinate
   descent otherwise), scoring each combination by running the final CSE
   over the chosen polynomials *plus all live block definitions* and
   counting weighted MULT/ADD operators (Fig. 14.1c).

The winner is returned as a validated
:class:`~repro.expr.decomposition.Decomposition`.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from itertools import product
from typing import Iterator

from repro.cse import eliminate_common_subexpressions
from repro.dag import ExpressionDAG
from repro.obs import current_events, current_tracer, get_registry, observe_timings
from repro.expr import Decomposition, OpCount, expr_from_polynomial, expr_op_count
from repro.expr.ast import Add, BlockRef, Expr, Mul, Pow, Var
from repro.factor import horner_greedy
from repro.poly import Polynomial
from repro.rings import BitVectorSignature, functions_equal
from repro.testing.faults import fault_point

from .algdiv import division_candidates, refine_block_definitions
from .blocks import BlockRegistry
from .budget import (
    NULL_DEADLINE,
    Budget,
    BudgetExceeded,
    Degradation,
    deadline_for,
    use_deadline,
)
from .cube_extract import cube_extraction
from .metrics import Timings
from .provenance import ChosenRepresentation, Provenance
from .representations import (
    Representation,
    cce_representation,
    dedupe_representations,
    initial_representations,
)
from .trace import FlowTrace


@dataclass(frozen=True)
class SynthesisOptions:
    """Phase toggles and search knobs (the ablation surface of DESIGN.md)."""

    enable_canonical: bool = True
    enable_factoring: bool = True
    enable_cse_exposure: bool = True
    enable_cce: bool = True
    enable_cube_extraction: bool = True
    enable_division: bool = True
    enable_final_cse: bool = True
    max_division_candidates: int = 6
    max_representations: int = 10
    exhaustive_limit: int = 600
    descent_sweeps: int = 3
    descent_budget: int = 150  # max combinations scored during descent
    mul_weight: int = 20
    cmul_weight: int = 2
    add_weight: int = 1
    objective: str = "area"  # "area" (hardware estimate) or "ops" (weighted count)
    # How the combination search prices sharing: "dag" scores every
    # combination on the shared expression DAG (each interned product
    # node paid once) and lowers only a shortlist of finalists through
    # the exact rectangle extractor; "rectangle" is the pre-DAG
    # behaviour — a full greedy CSE run per scored combination.
    cse_mode: str = "dag"


@dataclass
class SynthesisResult:
    """Everything Algorithm 7 produced, including the Fig. 14.1 lists."""

    decomposition: Decomposition
    op_count: OpCount
    initial_op_count: OpCount
    representation_lists: list[list[Representation]]
    chosen: tuple[int, ...]
    registry: BlockRegistry
    combinations_scored: int = 0
    trace: "FlowTrace | None" = None
    timings: "Timings | None" = None
    degradations: list[Degradation] = field(default_factory=list)
    provenance: "Provenance | None" = None

    @property
    def degraded(self) -> bool:
        """Did any phase run out of budget (and get skipped or replaced)?"""
        return bool(self.degradations)

    def summary(self) -> str:
        lines = [
            f"initial cost: {self.initial_op_count}",
            f"final cost:   {self.op_count}",
        ]
        if self.degradations:
            lines.append("degradations:")
            lines.extend(f"  {d}" for d in self.degradations)
        lines += ["", self.decomposition.summary()]
        return "\n".join(lines)


def _weighted(count: OpCount, options: SynthesisOptions) -> int:
    return count.weighted(
        options.mul_weight, options.cmul_weight, options.add_weight
    )


def _retag_vars(expr: Expr, block_names: set[str]) -> Expr:
    """Replace Var nodes naming blocks with BlockRef nodes."""
    if isinstance(expr, Var):
        return BlockRef(expr.name) if expr.name in block_names else expr
    if isinstance(expr, Add):
        return Add(tuple(_retag_vars(op, block_names) for op in expr.operands))
    if isinstance(expr, Mul):
        return Mul(tuple(_retag_vars(op, block_names) for op in expr.operands))
    if isinstance(expr, Pow):
        return Pow(_retag_vars(expr.base, block_names), expr.exponent)
    return expr


#: Content-keyed memo for :func:`best_expression`.  The combination
#: search assembles each scored combination from largely identical rows
#: (block definitions repeat verbatim, output rows repeat across descent
#: trials), so the same row never pays for Horner refactoring twice.
#: Keyed by the *trimmed* (variable order, term set) identity: the
#: expression depends on the relative order of used variables (operand
#: ordering) but not on padding or term-dict order — sum-of-products
#: rendering sorts terms, and Horner splits are content-driven.
#: Expressions are immutable, making sharing safe.  Bounded by
#: wholesale clearing.
_BEST_EXPR_CACHE: dict[tuple, Expr] = {}
_BEST_EXPR_CACHE_MAX = 16384


def clear_synthesis_caches() -> None:
    """Drop all content-keyed memos of the synthesis flow.

    Tests use this to compare cold runs against memoized runs; results
    must be identical either way (the caches are keyed by mathematical
    content and hold immutable values).  Covers the packed-monomial
    context intern pool and the rings-layer ``lru_cache`` memos too, so
    a "cold" benchmark run really starts cold.
    """
    from repro.cse.kernels import clear_kernel_cache
    from repro.dag import default_dag
    from repro.poly.packed import clear_packed_context_cache
    from repro.rings.falling import clear_falling_caches
    from repro.rings.modular import clear_modular_caches

    _BEST_EXPR_CACHE.clear()
    clear_kernel_cache()
    default_dag().clear()
    clear_packed_context_cache()
    clear_falling_caches()
    clear_modular_caches()


def synthesis_cache_sizes() -> dict[str, int]:
    """Current entry counts of the flow's content-keyed memo caches.

    The same caches :func:`clear_synthesis_caches` drops; traced runs
    publish them as ``repro_search_<name>_size`` gauges, and
    :func:`repro.api.clear_caches` returns them as its sizes dict.
    """
    from repro.cse.kernels import kernel_cache_size
    from repro.dag import default_dag
    from repro.poly.packed import packed_context_cache_size
    from repro.rings.falling import falling_cache_size
    from repro.rings.modular import modular_cache_size

    return {
        "best_expr_cache": len(_BEST_EXPR_CACHE),
        "kernel_cache": kernel_cache_size(),
        "dag_interner": default_dag().size(),
        "packed_contexts": packed_context_cache_size(),
        "rings_falling": falling_cache_size(),
        "rings_modular": modular_cache_size(),
    }


def best_expression(poly: Polynomial) -> Expr:
    """The cheaper of the direct SOP and the greedy Horner form."""
    trimmed = poly.trim()
    key = (trimmed.vars, frozenset(trimmed.terms.items()))
    hit = _BEST_EXPR_CACHE.get(key)
    if hit is not None:
        return hit
    direct = expr_from_polynomial(poly)
    horner = horner_greedy(poly)
    best = direct
    if _op_weight(expr_op_count(horner)) < _op_weight(expr_op_count(direct)):
        best = horner
    if len(_BEST_EXPR_CACHE) >= _BEST_EXPR_CACHE_MAX:
        _BEST_EXPR_CACHE.clear()
    _BEST_EXPR_CACHE[key] = best
    return best


def refactored_expression(poly: Polynomial, block_names: set[str]) -> Expr:
    """Best expression of a polynomial with block variables as BlockRefs."""
    return _retag_vars(best_expression(poly), block_names)


def _op_weight(count: OpCount) -> int:
    return count.weighted()


def _live_closure(polys: list[Polynomial], defs: dict[str, Polynomial]) -> list[str]:
    """Block names reachable from the polynomials, in definition order."""
    live: set[str] = set()
    frontier: list[str] = []
    for poly in polys:
        frontier.extend(v for v in poly.used_vars() if v in defs)
    while frontier:
        name = frontier.pop()
        if name in live:
            continue
        live.add(name)
        frontier.extend(v for v in defs[name].used_vars() if v in defs)
    return [name for name in defs if name in live]


def assemble_decomposition(
    chosen: list[Representation],
    registry: BlockRegistry,
    options: SynthesisOptions,
    method: str = "poly_synth",
) -> Decomposition:
    """Final CSE + expression refactoring for one combination.

    Pure function: neither the registry nor the representations are
    mutated, so the combination search can call it freely.
    """
    polys = Polynomial.unify_all([rep.poly for rep in chosen])
    defs = dict(registry.defs)
    live = _live_closure(polys, defs)
    rows = polys + [defs[name] for name in live]

    if options.enable_final_cse and rows:
        result = eliminate_common_subexpressions(rows, prefix="_k")
        rows = result.polys
        extra_blocks = result.blocks
    else:
        extra_blocks = {}

    n_outputs = len(polys)
    out_rows = rows[:n_outputs]
    def_rows = rows[n_outputs:]

    block_defs: dict[str, Polynomial] = {}
    for name, new_def in zip(live, def_rows):
        block_defs[name] = new_def
    for name, new_def in extra_blocks.items():
        block_defs[name] = new_def

    block_names = set(block_defs)
    decomposition = Decomposition(method=method)
    for name, def_poly in block_defs.items():
        decomposition.blocks[name] = _retag_vars(best_expression(def_poly), block_names)
    for row in out_rows:
        decomposition.outputs.append(_retag_vars(best_expression(row), block_names))
    decomposition.inline_trivial_blocks()
    return decomposition


def _score(
    chosen: list[Representation],
    registry: BlockRegistry,
    options: SynthesisOptions,
    signature: BitVectorSignature | None,
) -> tuple[float, Decomposition]:
    """Score one combination: estimated hardware area, or weighted ops.

    The area objective matches what the paper ultimately reports
    (Table 14.3); the op-count objective is the paper's fast in-flow
    estimate and remains available for ablations.
    """
    decomposition = assemble_decomposition(chosen, registry, options)
    return _score_assembled(decomposition, options, signature), decomposition


def _dag_score(
    chosen: list[Representation],
    registry: BlockRegistry,
    options: SynthesisOptions,
    dag: ExpressionDAG,
) -> float:
    """Score one combination on the shared expression DAG.

    The rows are the same ones :func:`assemble_decomposition` would CSE
    — the chosen representations plus the live block closure — but
    instead of a greedy extraction run, the cost is a union of interned
    node sets: every distinct product node is paid exactly once (the
    operator count a DAG lowering realizes), with per-node costs
    memoized inside the DAG.  Re-scoring a neighbouring combination
    therefore only pays for rows the DAG has not seen yet.
    """
    polys = [rep.poly for rep in chosen]
    defs = registry.defs
    live = _live_closure(polys, defs)
    roots = [dag.intern(p) for p in polys]
    roots.extend(dag.intern(defs[name]) for name in live)
    return float(
        dag.combination_cost(
            roots, options.mul_weight, options.cmul_weight, options.add_weight
        )
    )


def _score_assembled(
    decomposition: Decomposition,
    options: SynthesisOptions,
    signature: BitVectorSignature | None,
) -> float:
    """Objective value of an already-assembled decomposition."""
    ops = _weighted(decomposition.op_count(), options)
    if options.objective == "area" and signature is not None:
        from repro.cost import estimate_decomposition

        area = estimate_decomposition(decomposition, signature).area
        # Tie-break equal-area combinations with the operator surrogate.
        return area + ops * 1e-6
    return float(ops)


def _standalone_weight(poly: Polynomial, registry: BlockRegistry) -> int:
    """Weighted SOP cost of a representation *including* its block closure.

    A representation like ``12*_b7 + 9*_b8 + 2*_b10`` looks free until the
    blocks it references are paid for; pruning must see the whole bill
    (shared blocks are double-counted across candidates, which is fine
    for a relative ranking).
    """
    total = 0
    seen: set[str] = set()
    frontier = [poly]
    while frontier:
        current = frontier.pop()
        total += _op_weight(expr_op_count(expr_from_polynomial(current)))
        for var in current.used_vars():
            if var in registry.defs and var not in seen:
                seen.add(var)
                frontier.append(registry.defs[var])
    return total


def direct_cost(system: list[Polynomial], options: SynthesisOptions) -> OpCount:
    """Cost of the naive expanded implementation (the paper's C_initial base)."""
    total = OpCount()
    for poly in system:
        total = total + expr_op_count(expr_from_polynomial(poly))
    return total


@contextmanager
def _phase(
    timings: Timings,
    tracer,
    name: str,
    deadline=NULL_DEADLINE,
    degradations: list[Degradation] | None = None,
    skippable: bool = False,
) -> Iterator:
    """Time one phase into both the Timings and a span of the same name.

    The yielded clock is the :class:`~repro.core.metrics.Timings` phase
    accumulator; its counters are mirrored onto the span when the phase
    closes, so the span tree and the flat timings always agree.

    The phase is also a budget boundary: the ambient deadline's per-phase
    clock restarts here, and — for ``skippable`` phases, whose work only
    *enriches* the candidate representation lists — a
    :class:`BudgetExceeded` raised by a cooperative check inside the body
    is absorbed: the overrun is recorded in ``degradations`` and the flow
    continues with whatever the phase produced so far.  Non-skippable
    phases let the exception propagate to :func:`synthesize`'s fallback
    ladder.
    """
    events = current_events()
    with tracer.span(name) as span, timings.phase(name) as clock:
        deadline.start_phase(name)
        events.emit("phase_start", name=name)
        degraded_here = False
        try:
            fault_point(f"phase:{name}")
            yield clock
        except BudgetExceeded as exc:
            if not skippable or degradations is None:
                raise
            degraded_here = True
            degradations.append(Degradation(name, "skipped", str(exc)))
            span.set(degraded=True)
            events.emit("degradation", phase=name, action="skipped")
        finally:
            deadline.end_phase()
            span.count(**clock.counters)
            events.emit("phase_end", name=name, degraded=degraded_here)


def synthesize(
    system: list[Polynomial],
    signature: BitVectorSignature | None = None,
    options: SynthesisOptions | None = None,
    trace: FlowTrace | None = None,
    timings: Timings | None = None,
    budget: Budget | None = None,
    dag: ExpressionDAG | None = None,
) -> SynthesisResult:
    """Run the full integrated flow on a polynomial system.

    ``signature`` enables the canonical-form representations (without it
    only the integer-exact transformations run).  Pass a
    :class:`~repro.core.trace.FlowTrace` to record what every phase did.
    Per-phase wall times and counters are always collected into a
    :class:`~repro.core.metrics.Timings` (pass your own to aggregate
    across calls) and exposed as ``result.timings``.

    ``budget`` bounds the run (see :mod:`repro.core.budget` and
    ``docs/ROBUSTNESS.md``): when a phase exceeds its share, the flow
    *degrades gracefully* instead of raising — enrichment phases are
    skipped, the combination search settles for the best candidate scored
    so far, and in the worst case the whole flow falls back down the
    ladder ``factor+cse`` → ``horner``.  Every overrun is recorded in
    ``result.degradations``; the returned decomposition is always valid.

    When the ambient :func:`repro.obs.current_tracer` is enabled the run
    additionally records a hierarchical span tree — ``poly_synth`` at the
    root, one child per phase, algorithm sub-steps (``cce/extract``,
    ``algdiv/divide``, ``cse/extract``, ...) below — and the timings feed
    the global metrics registry.  The flow never reads any of this back:
    traced and untraced runs produce identical results.

    ``options.cse_mode`` selects how the combination search prices
    sharing: ``"dag"`` (the default) scores every combination on a
    shared expression DAG and lowers only a shortlist of finalists
    through the exact rectangle extractor; ``"rectangle"`` runs the full
    greedy extractor on every scored combination (the pre-DAG
    behaviour).  ``dag`` optionally supplies the
    :class:`~repro.dag.ExpressionDAG` to score on — by default each run
    uses a fresh instance so provenance statistics never depend on what
    else the process interned.

    The returned decomposition is validated: integer-exact outputs must
    expand to the original polynomials, canonical-form outputs must be
    functionally equal over the signature.
    """
    options = options or SynthesisOptions()
    if options.cse_mode not in ("dag", "rectangle"):
        raise ValueError(
            f"unknown cse_mode {options.cse_mode!r}; expected 'dag' or 'rectangle'"
        )
    trace = trace if trace is not None else FlowTrace()
    timings = timings if timings is not None else Timings()
    tracer = current_tracer()
    deadline = deadline_for(budget)
    degradations: list[Degradation] = []
    with tracer.span("poly_synth", objective=options.objective) as root:
        with use_deadline(deadline):
            if deadline.expired():
                # The deadline passed before any work started: skip the
                # flow entirely and take the cheapest valid fallback.
                degradations.append(
                    Degradation("job", "expired-at-start", "deadline already expired")
                )
                result = _degraded_result(
                    system, signature, options, trace, timings, tracer,
                    degradations, ladder=("horner",),
                )
            else:
                try:
                    result = _synthesize_flow(
                        system, signature, options, trace, timings, tracer,
                        deadline, degradations, dag,
                    )
                except BudgetExceeded as exc:
                    degradations.append(Degradation("job", "fallback", str(exc)))
                    current_events().emit(
                        "degradation", phase="job", action="fallback"
                    )
                    result = _degraded_result(
                        system, signature, options, trace, timings, tracer,
                        degradations,
                    )
        root.count(
            combinations=result.combinations_scored,
            ops_final=_weighted(result.op_count, options),
            ops_initial=_weighted(result.initial_op_count, options),
            degradations=len(result.degradations),
        )
        if result.degradations:
            root.set(degraded=True)
    if tracer.enabled:
        observe_timings(timings)
        _publish_search_metrics(result)
    return result


def _publish_search_metrics(result: SynthesisResult) -> None:
    """Publish one traced run's search telemetry to the global registry.

    The counters carry the *same integers* as ``result.provenance`` —
    ``repro explain`` and the Prometheus exposition must agree exactly
    (tests enforce this).
    """
    registry = get_registry()
    provenance = result.provenance
    if provenance is not None:
        if provenance.combinations_scored:
            registry.counter("repro_search_combos_scored").inc(
                provenance.combinations_scored
            )
        if provenance.memo_hits:
            registry.counter("repro_search_memo_hits").inc(provenance.memo_hits)
        if provenance.pruned:
            registry.counter("repro_search_pruned").inc(provenance.pruned)
        if provenance.dag_nodes:
            registry.counter("repro_search_dag_nodes").inc(provenance.dag_nodes)
        if provenance.dag_intern_hits:
            registry.counter("repro_search_dag_intern_hits").inc(
                provenance.dag_intern_hits
            )
        if provenance.dag_shared_nodes:
            registry.counter("repro_search_dag_shared_nodes").inc(
                provenance.dag_shared_nodes
            )
        if provenance.dag_finalists:
            registry.counter("repro_search_dag_finalists").inc(
                provenance.dag_finalists
            )
    for name, size in synthesis_cache_sizes().items():
        registry.gauge(f"repro_search_{name}_size").set(size)


def _degraded_result(
    system: list[Polynomial],
    signature: BitVectorSignature | None,
    options: SynthesisOptions,
    trace: FlowTrace,
    timings: Timings,
    tracer,
    degradations: list[Degradation],
    ladder: tuple[str, ...] = ("factor+cse", "horner"),
) -> SynthesisResult:
    """Walk the degradation ladder and return a valid, cheap decomposition.

    ``factor+cse`` (the paper's baseline — a strict subset of the
    proposed flow's search space) runs under a fresh grace deadline so a
    pathological system cannot hang the fallback either; ``horner`` (and
    the implicit ``direct`` expression inside :func:`best_expression`)
    runs unbounded — it is linear in the input and cannot blow up.
    """
    system = Polynomial.unify_all(list(system))
    if not system:
        raise ValueError("cannot synthesize an empty system")
    decomposition: Decomposition | None = None
    with _phase(timings, tracer, "degraded-fallback") as clock:
        for method in ladder:
            try:
                if method == "factor+cse":
                    from repro.baselines.factor_cse import factor_cse_decomposition

                    # A bounded second chance: generous relative to one
                    # phase, tiny relative to a hung job.
                    grace = Budget(job_seconds=_FALLBACK_GRACE_SECONDS)
                    with use_deadline(deadline_for(grace)):
                        decomposition = factor_cse_decomposition(system)
                else:
                    from repro.baselines.horner import horner_baseline

                    with use_deadline(NULL_DEADLINE):
                        decomposition = horner_baseline(system)
            except Exception as exc:  # noqa: BLE001 - walk down the ladder
                degradations.append(
                    Degradation("degraded-fallback", f"failed:{method}", str(exc))
                )
                continue
            degradations.append(
                Degradation(
                    "degraded-fallback",
                    f"fallback:{method}",
                    "budget exceeded; degraded to a baseline decomposition",
                )
            )
            trace.record("degraded-fallback", f"fell back to {method}")
            clock.count(ladder_steps=ladder.index(method) + 1)
            break
    if decomposition is None:
        raise RuntimeError(
            "degradation ladder exhausted without a valid decomposition"
        )
    initial = direct_cost(system, options)
    lists = [[Representation(poly, "original")] for poly in system]
    provenance = Provenance(
        objective=options.objective,
        search_mode="degraded",
        search_space=1,
        search_bound=0,
        cse_mode=options.cse_mode,
        chosen=[
            ChosenRepresentation(
                polynomial=str(poly), tag="original", index=0, candidates=1
            )
            for poly in system
        ],
        blocks={
            name: str(expr) for name, expr in decomposition.blocks.items()
        },
        degradations=[str(d) for d in degradations],
    )
    return SynthesisResult(
        decomposition=decomposition,
        op_count=decomposition.op_count(),
        initial_op_count=initial,
        representation_lists=lists,
        chosen=tuple(0 for _ in system),
        registry=BlockRegistry(system[0].vars),
        combinations_scored=0,
        trace=trace,
        timings=timings,
        degradations=degradations,
        provenance=provenance,
    )


#: Wall-clock grace the ``factor+cse`` fallback gets after the main flow
#: ran out of budget (seconds).  The baseline is orders of magnitude
#: cheaper than the full flow; if even this expires we drop to Horner.
_FALLBACK_GRACE_SECONDS = 10.0


def _synthesize_flow(
    system: list[Polynomial],
    signature: BitVectorSignature | None,
    options: SynthesisOptions,
    trace: FlowTrace,
    timings: Timings,
    tracer,
    deadline=NULL_DEADLINE,
    degradations: list[Degradation] | None = None,
    dag: ExpressionDAG | None = None,
) -> SynthesisResult:
    """The phases of Algorithm 7 (see :func:`synthesize` for the contract)."""
    if degradations is None:
        degradations = []
    system = Polynomial.unify_all(list(system))
    if not system:
        raise ValueError("cannot synthesize an empty system")
    registry = BlockRegistry(system[0].vars)

    # Phase 1: initial representation lists (Fig. 14.1a) — original,
    # square-free/factored, and canonical falling-factorial rewrites.
    # Canonicalization is the flow's combinatorial worst case (the
    # falling-factorial rewrite of Section 14.3.1 is exponential in wide
    # signatures); over budget it degrades per-polynomial to the identity
    # representation — the original polynomial — and the flow carries on.
    lists: list[list[Representation]] = []
    with _phase(timings, tracer, "initial", deadline, degradations) as clock:
        degraded_polys = 0
        for poly in system:
            try:
                reps = initial_representations(
                    poly,
                    registry,
                    signature=signature if options.enable_canonical else None,
                    enable_canonical=options.enable_canonical,
                    enable_factoring=options.enable_factoring,
                )
            except BudgetExceeded as exc:
                reps = [Representation(poly, "original")]
                degraded_polys += 1
                if degraded_polys == 1:
                    degradations.append(
                        Degradation("initial", "identity", str(exc))
                    )
            lists.append(reps)
            trace.record(
                "initial", f"{len(reps)} representation(s)",
                tags=[r.tag for r in reps],
            )
        clock.count(
            representations=sum(len(reps) for reps in lists),
            blocks=len(registry.defs),
            degraded_polys=degraded_polys,
        )

    # Phase 1b: CSE exposure — shared multi-term sub-expressions of the
    # *system as written* become registry blocks, so the later factoring /
    # division phases can dig into them (e.g. a quadratic form shared by
    # every shifted filter copy, which then factors into linear blocks).
    if options.enable_cse_exposure:
        with _phase(
            timings, tracer, "cse-exposure", deadline, degradations, skippable=True
        ) as clock:
            before_blocks = len(registry.defs)
            exposure = eliminate_common_subexpressions(system, prefix="_pre")
            mapping: dict[str, Polynomial] = {}
            for pre_name, pre_def in exposure.blocks.items():
                substituted = pre_def.subs(
                    {old: repl for old, repl in mapping.items()
                     if old in pre_def.used_vars()}
                )
                try:
                    reg_name, sign = registry.register(substituted)
                except ValueError:
                    continue  # trivial block (constant after substitution)
                mapping[pre_name] = Polynomial.variable(reg_name).scale(sign)
            trace.record(
                "cse-exposure", f"{len(mapping)} shared sub-expression block(s)"
            )
            if mapping:
                for poly, reps in zip(exposure.polys, lists):
                    rewritten = poly.subs(
                        {old: repl for old, repl in mapping.items()
                         if old in poly.used_vars()}
                    )
                    if rewritten.trim() != reps[0].poly.trim():
                        reps.append(Representation(rewritten, "cse"))
            clock.count(blocks=len(registry.defs) - before_blocks)

    # Phase 2: CCE on every representation.
    if options.enable_cce:
        with _phase(
            timings, tracer, "cce", deadline, degradations, skippable=True
        ) as clock:
            cce_hits = 0
            for reps in lists:
                for rep in list(reps):
                    extracted = cce_representation(rep, registry)
                    if extracted is not None:
                        reps.append(extracted)
                        cce_hits += 1
            trace.record("cce", f"{cce_hits} representation(s) extracted")
            clock.count(representations=cce_hits)

    # Phase 3: Cube_Ex exposes linear kernels as divisor blocks, and the
    # top homogeneous forms contribute their linear factors (shift-
    # invariant structure CCE's filter cannot split).
    with _phase(
        timings, tracer, "cube-extract", deadline, degradations, skippable=True
    ) as clock:
        before_blocks = len(registry.defs)
        if options.enable_cube_extraction:
            all_rep_polys = [rep.poly for reps in lists for rep in reps]
            cube_extraction(all_rep_polys, registry)
        if options.enable_factoring:
            from .cube_extract import expose_homogeneous_factors

            exposed = expose_homogeneous_factors(list(system), registry)
            trace.record(
                "expose", f"{len(registry.defs)} block(s) in the registry",
                homogeneous=[str(registry.ground[n]) for n in exposed],
            )
        clock.count(blocks=len(registry.defs) - before_blocks)

    # Phase 4: refine block definitions (factor + divide through blocks).
    with _phase(
        timings, tracer, "refine", deadline, degradations, skippable=True
    ) as clock:
        _factor_block_definitions(registry, options)
        refined = refine_block_definitions(registry)
        trace.record("refine", f"{refined} definition(s) rewritten through blocks")
        clock.count(refined=refined)

    # Phase 5: algebraic division candidates (Fig. 14.1b).
    if options.enable_division:
        with _phase(
            timings, tracer, "division", deadline, degradations, skippable=True
        ) as clock:
            division_hits = 0
            for poly, reps in zip(system, lists):
                for candidate in division_candidates(
                    poly, registry, options.max_division_candidates
                ):
                    reps.append(Representation(candidate, "division"))
                    division_hits += 1
                cce_reps = [r for r in reps if r.tag.startswith("cce")]
                for rep in cce_reps:
                    for candidate in division_candidates(
                        rep.poly, registry, 2
                    ):
                        reps.append(
                            Representation(
                                candidate, f"division({rep.tag})", rep.modular
                            )
                        )
                        division_hits += 1
            clock.count(representations=division_hits)

    # Prune each list: dedupe, keep the cheapest few (always keep original).
    with _phase(timings, tracer, "prune", deadline) as clock:
        before_reps = sum(len(reps) for reps in lists)
        pruned: list[list[Representation]] = []
        for reps in lists:
            reps = dedupe_representations(reps)
            scored = sorted(
                reps, key=lambda r: _standalone_weight(r.poly, registry)
            )
            keep = scored[: options.max_representations]
            if reps[0] not in keep:
                keep.append(reps[0])
            pruned.append(keep)
        lists = pruned
        after_reps = sum(len(reps) for reps in lists)
        clock.count(representations=after_reps, dropped=before_reps - after_reps)

    # Phase 6: combination search (Fig. 14.1c).  In dag mode the search
    # scores combinations on the shared expression DAG (cheap set
    # unions over interned nodes) and only a shortlist of finalists is
    # assembled through the exact rectangle extractor afterwards; in
    # rectangle mode every scored combination pays for a full greedy
    # CSE run, exactly the pre-DAG behaviour.
    dag_mode = options.cse_mode == "dag"
    run_dag = (dag if dag is not None else ExpressionDAG()) if dag_mode else None
    cache: dict[tuple[int, ...], tuple[float, Decomposition | None]] = {}
    content_cache: dict[tuple, tuple[float, Decomposition | None]] = {}
    exact_cache: dict[tuple, tuple[float, Decomposition]] = {}
    scored_counter = 0
    memo_hits = 0
    pruned_count = 0
    search_bound = 0
    # Hot-loop discipline: hoist the enabled flag so the disabled stream
    # costs one truth test per lookup and allocates zero event objects.
    events = current_events()
    emitting = events.enabled

    def score_indices(indices: tuple[int, ...]) -> tuple[float, Decomposition | None]:
        nonlocal scored_counter, memo_hits
        hit = cache.get(indices)
        if hit is None:
            chosen = [lists[i][j] for i, j in enumerate(indices)]
            # Second-level, content-hash key: distinct index tuples can
            # select mathematically identical rows (representation lists
            # share members across polynomials in shifted-copy systems).
            key = tuple(rep.poly for rep in chosen)
            hit = content_cache.get(key)
            if hit is None:
                if run_dag is not None:
                    hit = (_dag_score(chosen, registry, options, run_dag), None)
                else:
                    hit = _score(chosen, registry, options, signature)
                content_cache[key] = hit
                scored_counter += 1
                if emitting:
                    events.emit(
                        "combo_scored",
                        scored=scored_counter,
                        bound=search_bound,
                        cost=hit[0],
                    )
            else:
                memo_hits += 1
                if emitting:
                    events.emit("combo_memo_hit", level="content")
            cache[indices] = hit
        else:
            memo_hits += 1
            if emitting:
                events.emit("combo_memo_hit", level="indices")
        return hit

    def note_prune(surrogate: int, bound: float) -> None:
        nonlocal pruned_count
        pruned_count += 1
        if emitting:
            events.emit("combo_pruned", surrogate=surrogate, bound=bound)

    def exact_score(indices: tuple[int, ...]) -> tuple[float, Decomposition]:
        """Assemble and exactly score one finalist (dag mode only).

        Content-keyed like the surrogate memo: distinct index tuples
        that select identical rows pay for one assembly.
        """
        chosen = [lists[i][j] for i, j in enumerate(indices)]
        key = tuple(rep.poly for rep in chosen)
        hit = exact_cache.get(key)
        if hit is None:
            hit = _score(chosen, registry, options, signature)
            exact_cache[key] = hit
        return hit

    with _phase(timings, tracer, "search", deadline) as clock:
        sizes = [len(reps) for reps in lists]
        search_space = 1
        for size in sizes:
            search_space *= size
        total = 1
        for size in sizes:
            total *= size
            if total > options.exhaustive_limit:
                break

        # Surrogate weights for branch-and-bound pruning: the standalone
        # (pre-CSE) weighted cost of each representation, closure
        # included.  Final CSE can only *remove* shared work, so a
        # combination whose surrogate total is several times the best
        # scored combination's surrogate is dominated — the shared-term
        # pool it offers is a subset of what cheaper members already
        # provide — and scoring it (a full CSE run) is wasted budget.
        # The prune is deterministic and independent of the memo caches,
        # so memoized and cold searches visit identical combinations.
        weights = [
            [_standalone_weight(rep.poly, registry) for rep in reps]
            for reps in lists
        ]

        search_mode = "exhaustive" if total <= options.exhaustive_limit else "descent"
        if search_mode == "exhaustive":
            search_bound = total
        else:
            search_bound = (
                len(_search_seeds(lists, weights)) + options.descent_budget
            )

        degraded_search = False
        try:
            if search_mode == "exhaustive":
                best_indices = None
                best_cost = None
                best_surrogate = None
                for indices in product(*(range(s) for s in sizes)):
                    surrogate = sum(
                        row[j] for row, j in zip(weights, indices)
                    )
                    if (
                        best_surrogate is not None
                        and surrogate > _PRUNE_FACTOR * best_surrogate
                    ):
                        note_prune(surrogate, _PRUNE_FACTOR * best_surrogate)
                        continue
                    cost, _ = score_indices(indices)
                    if best_cost is None or cost < best_cost:
                        best_cost = cost
                        best_indices = indices
                        best_surrogate = surrogate
                    elif surrogate < best_surrogate:
                        # Track the cheapest surrogate among scored
                        # combinations so the bound only tightens.
                        best_surrogate = surrogate
            else:
                best_indices, best_cost = _seeded_descent(
                    lists, sizes, weights, options, score_indices, note_prune
                )
        except BudgetExceeded as exc:
            # Out of budget mid-search: settle for the best combination
            # scored so far (the search caches every scored candidate).
            # If nothing at all was scored, escalate to the fallback
            # ladder — even a single scoring pass was too expensive.
            if not cache:
                raise
            best_indices = min(cache, key=lambda indices: cache[indices][0])
            degraded_search = True
            degradations.append(Degradation("search", "partial", str(exc)))
            events.emit("degradation", phase="search", action="partial")
            clock.count(degraded=1)
            # Committed to the partial winner: retrieval and validation
            # below must finish, so enforcement stops here.
            deadline.disarm()

        assert best_indices is not None
        dag_finalist_count = 0
        if run_dag is not None:
            # Finalist pass: the DAG surrogate ranked every combination
            # by shared operator count; only a shortlist is now lowered
            # through the exact extractor and area model.  The shortlist
            # is the family seeds (each algebraic family's cheapest
            # member — they carry the relative-quality guarantees the
            # test suite pins against the factor+cse baseline) plus the
            # top surrogate ranks, deduplicated in that order.  Over
            # budget, the surrogate winner alone is assembled — the
            # deadline is already disarmed, so one assembly is safe.
            if degraded_search:
                finalists = [best_indices]
            else:
                ranked = sorted(cache, key=lambda idx: (cache[idx][0], idx))
                finalists = list(
                    dict.fromkeys(
                        [
                            s
                            for s in _search_seeds(lists, weights)
                            if s in cache
                        ]
                        + ranked[:_DAG_FINALISTS]
                    )
                )
            best_exact = None
            for idx in finalists:
                cost, _ = exact_score(idx)
                dag_finalist_count += 1
                if emitting:
                    events.emit(
                        "dag_finalist",
                        cost=cost,
                        surrogate=cache[idx][0],
                        chosen=[lists[i][j].tag for i, j in enumerate(idx)],
                    )
                if best_exact is None or cost < best_exact:
                    best_exact = cost
                    best_indices = idx
            winner_cost, decomposition = exact_score(best_indices)
            dag_stats = run_dag.stats()
            if emitting:
                events.emit(
                    "dag_stats",
                    **dag_stats.as_dict(),
                    finalists=dag_finalist_count,
                )
        else:
            dag_stats = None
            # Direct cache read: the winner was necessarily scored, and
            # the retrieval must not inflate the memo-hit telemetry.
            winner_cost, decomposition = cache[best_indices]
        trace.record(
            "search",
            f"{scored_counter} combination(s) scored",
            chosen=[lists[i][j].tag for i, j in enumerate(best_indices)],
        )
        chosen = [lists[i][j] for i, j in enumerate(best_indices)]

        # Never-worse-than-direct guard.  Every assembled combination is
        # rendered through ``best_expression``, which Horner-factors rows
        # whenever the *op count* improves — but on non-uniform widths the
        # width-aware area model can disagree (factoring can push a
        # constant multiply onto a wide operand).  The all-original seed
        # is therefore not the direct SOP, and the search can return a
        # decomposition costlier than the naive baseline.  Scoring the
        # flat direct form under the same objective restores the
        # guarantee that the flow is a superset of ``direct``.
        direct_dec = Decomposition(method="poly_synth")
        for poly in system:
            direct_dec.outputs.append(expr_from_polynomial(poly))
        direct_fallback = False
        if _score_assembled(direct_dec, options, signature) < winner_cost:
            decomposition = direct_dec
            direct_fallback = True
            trace.record(
                "search",
                "direct SOP beat every assembled combination; kept direct",
            )
            clock.count(direct_fallback=1)

        initial = direct_cost(system, options)
        final = decomposition.op_count()
        clock.count(
            combinations=scored_counter,
            memo_hits=memo_hits,
            pruned=pruned_count,
            dag_finalists=dag_finalist_count,
            ops_initial=_weighted(initial, options),
            ops_final=_weighted(final, options),
        )

    with _phase(timings, tracer, "validate", deadline):
        # Validation is a correctness gate, never skipped: it runs with
        # the per-phase clock restarted, so a job-budget overrun earlier
        # in the flow does not leave the winning decomposition unchecked.
        _validate(decomposition, system, chosen, signature)

    provenance = Provenance(
        objective=options.objective,
        search_mode=search_mode,
        search_space=search_space,
        search_bound=search_bound,
        combinations_scored=scored_counter,
        memo_hits=memo_hits,
        pruned=pruned_count,
        direct_fallback=direct_fallback,
        cse_mode=options.cse_mode,
        dag_nodes=dag_stats.nodes if dag_stats else 0,
        dag_intern_hits=dag_stats.intern_hits if dag_stats else 0,
        dag_shared_nodes=dag_stats.shared_nodes if dag_stats else 0,
        dag_finalists=dag_finalist_count,
        chosen=[
            ChosenRepresentation(
                polynomial=str(poly),
                tag=lists[i][j].tag,
                index=j,
                candidates=len(lists[i]),
            )
            for i, (poly, j) in enumerate(zip(system, best_indices))
        ],
        blocks={
            name: str(expr) for name, expr in decomposition.blocks.items()
        },
        degradations=[str(d) for d in degradations],
    )

    return SynthesisResult(
        decomposition=decomposition,
        op_count=final,
        initial_op_count=initial,
        representation_lists=lists,
        chosen=best_indices,
        registry=registry,
        combinations_scored=scored_counter,
        trace=trace,
        timings=timings,
        degradations=degradations,
        provenance=provenance,
    )


#: Branch-and-bound prune margin for the combination search: skip scoring
#: a combination whose standalone-weight surrogate exceeds this multiple
#: of the best scored combination's surrogate.  The surrogate is an upper
#: envelope (final CSE only removes work), so the factor is deliberately
#: generous — the prune should only drop combinations that are dominated
#: beyond any plausible sharing gain.
_PRUNE_FACTOR = 3.0

#: Number of top surrogate-ranked combinations (beyond the family seeds)
#: that dag mode lowers through the exact rectangle extractor.  The DAG
#: surrogate ranks the exact winner first or second on every calibration
#: system; a small buffer keeps the finalist pass robust to ranking
#: noise without re-paying the per-combination CSE cost the surrogate
#: exists to avoid.
_DAG_FINALISTS = 4


def _search_seeds(
    lists: list[list[Representation]],
    weights: list[list[int]],
) -> list[tuple[int, ...]]:
    """Starting points for the descent search.

    Symmetric systems (shifted filter copies) want every polynomial to use
    the *same family* of representation — mixing families breaks the
    cross-polynomial matches the final CSE relies on.  Seeds:

    * all-original (this makes the proposed flow a strict superset of the
      factorization+CSE baseline: it can always fall back to it),
    * one uniform seed per tag family (cce, factored, canonical, division),
      falling back to original where a polynomial lacks the family,
    * the per-polynomial standalone-cheapest combination.
    """
    families = ("original", "cse", "cce", "factored", "canonical", "division")
    seeds: list[tuple[int, ...]] = []
    for family in families:
        indices = []
        for i, reps in enumerate(lists):
            members = [
                (j, weights[i][j])
                for j, rep in enumerate(reps)
                if rep.tag.startswith(family) or (family != "original" and family in rep.tag)
            ]
            if members:
                indices.append(min(members, key=lambda item: item[1])[0])
            else:
                indices.append(0)  # original is always first
        seeds.append(tuple(indices))
    cheapest = tuple(
        min(range(len(reps)), key=lambda j: weights[i][j])
        for i, reps in enumerate(lists)
    )
    seeds.append(cheapest)
    return list(dict.fromkeys(seeds))


def _seeded_descent(
    lists: list[list[Representation]],
    sizes: list[int],
    weights: list[list[int]],
    options: SynthesisOptions,
    score_indices,
    note_prune=None,
) -> tuple[tuple[int, ...], float]:
    """Score the family seeds, then coordinate-descend from the best one.

    Single-coordinate moves whose surrogate weight regresses the current
    combination beyond the branch-and-bound margin are pruned without
    scoring (see :data:`_PRUNE_FACTOR`) — the saved budget goes to moves
    that can plausibly win.  ``note_prune(surrogate, bound)`` reports
    each pruned move to the caller's telemetry.
    """
    best_indices: tuple[int, ...] | None = None
    best_cost: float | None = None
    for seed in _search_seeds(lists, weights):
        cost, _ = score_indices(seed)
        if best_cost is None or cost < best_cost:
            best_cost = cost
            best_indices = seed
    assert best_indices is not None and best_cost is not None
    # Coordinate descent, budgeted for large systems.
    budget = options.descent_budget
    scored = 0
    best_surrogate = sum(
        row[j] for row, j in zip(weights, best_indices)
    )
    bound = _PRUNE_FACTOR * best_surrogate
    for _ in range(options.descent_sweeps):
        improved = False
        for i in range(len(lists)):
            for j in range(sizes[i]):
                if j == best_indices[i]:
                    continue
                trial_surrogate = (
                    best_surrogate - weights[i][best_indices[i]] + weights[i][j]
                )
                if trial_surrogate > bound:
                    if note_prune is not None:
                        note_prune(trial_surrogate, bound)
                    continue
                trial = best_indices[:i] + (j,) + best_indices[i + 1:]
                cost, _ = score_indices(trial)
                scored += 1
                if cost < best_cost:
                    best_cost = cost
                    best_indices = trial
                    best_surrogate = trial_surrogate
                    bound = _PRUNE_FACTOR * best_surrogate
                    improved = True
                if scored >= budget:
                    return best_indices, best_cost
        if not improved:
            break
    return best_indices, best_cost


def _factor_block_definitions(
    registry: BlockRegistry, options: SynthesisOptions
) -> None:
    """Factor non-linear block definitions through (new) blocks.

    The CCE block ``x^2 + 2xy + y^2`` factors to ``(x+y)^2``: the linear
    factor is registered (feeding the divisor pool) and the definition is
    rewritten as ``_bk^2``.
    """
    if not options.enable_factoring:
        return
    from repro.factor import factor_polynomial

    for name in list(registry.defs):
        ground = registry.ground[name]
        if ground.is_linear:
            continue
        factorization = factor_polynomial(ground)
        factors = factorization.factors
        if len(factors) == 1 and factors[0][1] == 1:
            continue
        rebuilt = Polynomial.constant(factorization.content)
        for base, multiplicity in factors:
            if base.is_constant or (base.is_linear and len(base) == 1):
                rebuilt = rebuilt * base ** multiplicity
                continue
            if registry.expand(base).trim() == ground.trim():
                rebuilt = rebuilt * base ** multiplicity
                continue
            factor_name, sign = registry.register(base)
            block_var = Polynomial.variable(factor_name)
            rebuilt = rebuilt * (block_var.scale(sign)) ** multiplicity
        if any(registry.is_block(v) for v in rebuilt.used_vars()):
            registry.rewrite_definition(name, rebuilt)


def _validate(
    decomposition: Decomposition,
    system: list[Polynomial],
    chosen: list[Representation],
    signature: BitVectorSignature | None,
) -> None:
    """Check the decomposition against the original system.

    Integer-exact representations must expand to identical polynomials;
    canonical-form representations must be functionally equal over the
    bit-vector signature.
    """
    expanded = decomposition.to_polynomials()
    if len(expanded) != len(system):
        raise RuntimeError("decomposition lost outputs")
    for index, (ours, original, rep) in enumerate(zip(expanded, system, chosen)):
        if rep.modular:
            if signature is None:
                raise RuntimeError("modular representation without a signature")
            if not functions_equal(ours, original, signature):
                raise RuntimeError(
                    f"output {index} ({rep.tag}) is not functionally equal "
                    f"to the original over the signature"
                )
        elif ours != original:
            raise RuntimeError(
                f"output {index} ({rep.tag}) expands to {ours}, expected {original}"
            )
