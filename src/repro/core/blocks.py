"""Building-block registry (the glue of the integrated approach).

Every transformation in Algorithm 7 — CCE, cube extraction, square-free
factorization, algebraic division, final CSE — produces *building blocks*:
sub-polynomials that are implemented once and referenced as if they were
input variables.  The registry

* hands out fresh, collision-free variable names (``_b1``, ``_b2``, ...),
* **hash-conses by ground polynomial**: the linear block ``x - y`` exposed
  by CCE in one polynomial and the divisor ``x - y`` discovered by
  algebraic division in another get the *same* name, which is precisely
  what lets the final CSE merge them (paper Table 14.2, ``d2``),
* normalizes signs, so ``y - x`` resolves to ``-(x - y)``,
* tracks definitions over earlier blocks (``Y3(x) = Y2(x) * (x - 2)``)
  while keeping the fully-expanded ground polynomial for validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cse import expand_blocks
from repro.poly import Polynomial


@dataclass
class BlockRegistry:
    """Names, definitions, and ground truths for shared building blocks."""

    input_vars: tuple[str, ...]
    prefix: str = "_b"
    defs: dict[str, Polynomial] = field(default_factory=dict)
    ground: dict[str, Polynomial] = field(default_factory=dict)
    _by_ground: dict[Polynomial, str] = field(default_factory=dict)
    _counter: int = 0

    def fresh_name(self) -> str:
        """A block name guaranteed not to collide with input variables."""
        self._counter += 1
        return f"{self.prefix}{self._counter}"

    def register(self, definition: Polynomial) -> tuple[str, int]:
        """Intern a block; returns ``(name, sign)``.

        ``definition`` may reference input variables and previously
        registered blocks.  If an equivalent block (same ground polynomial
        up to sign) exists, its name is returned with the sign relating
        ``definition`` to the stored orientation.
        """
        ground = self.expand(definition).trim()
        if ground.is_zero or ground.is_constant:
            raise ValueError(f"refusing to register trivial block {definition}")
        sign = 1
        if ground.leading_coeff("grevlex") < 0:
            ground = -ground
            definition = -definition
            sign = -1
        existing = self._by_ground.get(ground)
        if existing is not None:
            return existing, sign
        name = self.fresh_name()
        self.defs[name] = definition
        self.ground[name] = ground
        self._by_ground[ground] = name
        return name, sign

    def lookup(self, ground: Polynomial) -> tuple[str, int] | None:
        """Find an existing block for a ground polynomial (sign-aware)."""
        ground = ground.trim()
        positive = ground
        sign = 1
        if not positive.is_zero and positive.leading_coeff("grevlex") < 0:
            positive = -positive
            sign = -1
        name = self._by_ground.get(positive)
        if name is None:
            return None
        return name, sign

    def shift_block(self, var: str, offset: int) -> str:
        """The block ``var - offset`` (the literals of falling factorials)."""
        if offset == 0:
            raise ValueError("shift block with zero offset is the variable itself")
        definition = Polynomial.variable(var) - offset
        name, sign = self.register(definition)
        if sign != 1:
            raise RuntimeError("shift block unexpectedly sign-flipped")
        return name

    def expand(self, poly: Polynomial) -> Polynomial:
        """Substitute all block definitions to reach input variables only."""
        return expand_blocks(poly, self.defs)

    def rewrite_definition(self, name: str, new_definition: Polynomial) -> None:
        """Replace a block's definition with an equivalent (validated) one."""
        if name not in self.defs:
            raise KeyError(f"unknown block {name!r}")
        trial = dict(self.defs)
        trial[name] = new_definition
        expanded = expand_blocks(new_definition, trial).trim()
        if expanded != self.ground[name]:
            raise ValueError(
                f"new definition of {name!r} expands to {expanded}, "
                f"expected {self.ground[name]}"
            )
        self.defs[name] = new_definition

    def linear_blocks(self) -> list[tuple[str, Polynomial]]:
        """All blocks whose ground polynomial is linear (division candidates)."""
        return [
            (name, ground)
            for name, ground in self.ground.items()
            if ground.is_linear
        ]

    def is_block(self, var: str) -> bool:
        return var in self.defs

    def block_names(self) -> list[str]:
        return list(self.defs)

    def copy(self) -> "BlockRegistry":
        """Independent copy (used by the combination search to branch)."""
        clone = BlockRegistry(self.input_vars, self.prefix)
        clone.defs = dict(self.defs)
        clone.ground = dict(self.ground)
        clone._by_ground = dict(self._by_ground)
        clone._counter = self._counter
        return clone
