"""The paper's contribution: the integrated CCE + algebra + CSE flow.

Algorithm 6 (:mod:`repro.core.cce`), cube/kernel exposure
(:mod:`repro.core.cube_extract`), algebraic division
(:mod:`repro.core.algdiv`), the Fig. 14.1 representation lists
(:mod:`repro.core.representations`), and Algorithm 7
(:mod:`repro.core.synth`).
"""

from .algdiv import (
    divide_by_block,
    division_candidates,
    refine_block_definitions,
)
from .blocks import BlockRegistry
from .budget import (
    Budget,
    BudgetExceeded,
    Deadline,
    Degradation,
    current_deadline,
    deadline_for,
    use_deadline,
)
from .cce import CceResult, candidate_gcds, common_coefficient_extraction
from .cube_extract import (
    cube_extraction,
    expose_homogeneous_factors,
    exposed_linear_kernels,
    homogeneous_part,
)
from .metrics import PhaseTiming, Timings
from .provenance import ChosenRepresentation, Provenance, explain_text
from .representations import (
    Representation,
    canonical_representations,
    cce_representation,
    dedupe_representations,
    factored_representation,
    initial_representations,
    original_representation,
)
from .synth import (
    SynthesisOptions,
    SynthesisResult,
    assemble_decomposition,
    best_expression,
    clear_synthesis_caches,
    direct_cost,
    refactored_expression,
    synthesis_cache_sizes,
    synthesize,
)
from .trace import FlowEvent, FlowTrace

__all__ = [
    "BlockRegistry",
    "Budget",
    "BudgetExceeded",
    "CceResult",
    "ChosenRepresentation",
    "Deadline",
    "Degradation",
    "FlowEvent",
    "FlowTrace",
    "PhaseTiming",
    "Provenance",
    "Representation",
    "SynthesisOptions",
    "SynthesisResult",
    "Timings",
    "assemble_decomposition",
    "best_expression",
    "candidate_gcds",
    "canonical_representations",
    "cce_representation",
    "clear_synthesis_caches",
    "common_coefficient_extraction",
    "cube_extraction",
    "current_deadline",
    "deadline_for",
    "dedupe_representations",
    "divide_by_block",
    "direct_cost",
    "explain_text",
    "division_candidates",
    "expose_homogeneous_factors",
    "exposed_linear_kernels",
    "homogeneous_part",
    "factored_representation",
    "initial_representations",
    "original_representation",
    "refactored_expression",
    "refine_block_definitions",
    "synthesis_cache_sizes",
    "synthesize",
    "use_deadline",
]
