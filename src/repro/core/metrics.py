"""Per-phase timing and counter instrumentation of the synthesis flow.

:class:`Timings` is the quantitative sibling of
:class:`~repro.core.trace.FlowTrace`: where the trace records *what* each
phase of Algorithm 7 did, the timings record *how long it took* and a few
integer counters (representations generated, blocks registered,
combinations scored, weighted operator deltas).  The flow never reads the
timings back, so instrumentation cannot change results.

The layer is deliberately lightweight — one ``perf_counter`` pair per
phase — so it stays on by default: every
:class:`~repro.core.synth.SynthesisResult` carries a ``timings`` field,
and the batch engine aggregates them across jobs into its
:class:`~repro.engine.BatchReport`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass(frozen=True)
class PhaseTiming:
    """Wall time and counters for one phase of the flow."""

    phase: str
    seconds: float
    counters: dict[str, int] = field(default_factory=dict)

    def __str__(self) -> str:
        extra = "".join(f" {k}={v}" for k, v in self.counters.items())
        return f"{self.phase}: {self.seconds * 1000.0:.2f} ms{extra}"


class _PhaseClock:
    """Mutable counter accumulator yielded while a phase is being timed."""

    __slots__ = ("counters",)

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}

    def count(self, **deltas: int) -> None:
        """Add integer counters to the phase (cumulative per key)."""
        for key, value in deltas.items():
            self.counters[key] = self.counters.get(key, 0) + int(value)


@dataclass
class Timings:
    """An append-only list of per-phase timings."""

    phases: list[PhaseTiming] = field(default_factory=list)

    @contextmanager
    def phase(self, name: str) -> Iterator[_PhaseClock]:
        """Time a phase; the yielded clock collects counters.

        >>> timings = Timings()
        >>> with timings.phase("cce") as clock:
        ...     clock.count(representations=3)
        """
        clock = _PhaseClock()
        start = time.perf_counter()
        try:
            yield clock
        finally:
            self.phases.append(
                PhaseTiming(name, time.perf_counter() - start, dict(clock.counters))
            )

    def record(self, name: str, seconds: float, **counters: int) -> None:
        """Append a pre-measured phase (used when deserializing)."""
        self.phases.append(PhaseTiming(name, float(seconds), dict(counters)))

    def total_seconds(self) -> float:
        return sum(p.seconds for p in self.phases)

    def seconds_by_phase(self) -> dict[str, float]:
        """Phase name -> accumulated seconds (phases may repeat)."""
        out: dict[str, float] = {}
        for p in self.phases:
            out[p.phase] = out.get(p.phase, 0.0) + p.seconds
        return out

    def counter(self, name: str) -> int:
        """Sum of one counter across all phases."""
        return sum(p.counters.get(name, 0) for p in self.phases)

    def merge(self, other: "Timings") -> None:
        """Append another run's phases (batch-level aggregation)."""
        self.phases.extend(other.phases)

    def summary(self) -> str:
        lines = [f"total: {self.total_seconds() * 1000.0:.2f} ms"]
        lines.extend(f"  {p}" for p in self.phases)
        return "\n".join(lines)

    def as_dict(self) -> dict[str, Any]:
        return {
            "kind": "timings",
            "phases": [
                {"phase": p.phase, "seconds": p.seconds, "counters": dict(p.counters)}
                for p in self.phases
            ],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Timings":
        if data.get("kind") != "timings":
            raise ValueError(f"not a timings payload: {data.get('kind')!r}")
        timings = cls()
        for entry in data["phases"]:
            timings.record(
                str(entry["phase"]),
                float(entry["seconds"]),
                **{str(k): int(v) for k, v in entry.get("counters", {}).items()},
            )
        return timings

    def __len__(self) -> int:
        return len(self.phases)
