"""Canonical-form equivalence checking with counterexample search.

Three levels of object can be compared over a bit-vector signature:

* polynomials (:func:`check_polynomials`),
* whole systems (:func:`check_systems`),
* synthesized decompositions (:func:`check_decompositions`) — each is
  expanded through its blocks first, so this verifies *implementations*,
  not just specifications.

Equivalence is decided **exactly** by canonical-form equality (no
simulation, no sampling).  When two functions differ,
:func:`find_counterexample` produces a concrete input assignment
witnessing the difference — found algebraically: any non-zero canonical
coefficient of the difference pinpoints a falling-factorial term, and the
point ``x_i = k_i`` (the term's degree tuple) evaluates that term to
``prod k_i!`` while every *other* term with any larger degree vanishes;
walking the terms in increasing degree order yields a witness quickly,
with randomized search as a fallback.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.expr import Decomposition
from repro.poly import Polynomial
from repro.rings import BitVectorSignature, to_canonical


@dataclass(frozen=True)
class EquivalenceReport:
    """Outcome of an equivalence check."""

    equivalent: bool
    failing_output: int | None = None
    counterexample: Mapping[str, int] | None = None

    def __bool__(self) -> bool:
        return self.equivalent

    def __str__(self) -> str:
        if self.equivalent:
            return "equivalent"
        where = (
            f"output {self.failing_output}" if self.failing_output is not None else "?"
        )
        return f"NOT equivalent at {where}, witness {dict(self.counterexample or {})}"


#: Default seed for the randomized witness fallback.  Explicit (and
#: threaded through every ``check_*`` entry point) so a failed
#: equivalence check prints the *same* witness on every run.
DEFAULT_WITNESS_SEED = 0xD1FF


def check_polynomials(
    left: Polynomial, right: Polynomial, signature: BitVectorSignature,
    seed: int = DEFAULT_WITNESS_SEED,
) -> EquivalenceReport:
    """Exact functional equivalence of two polynomials."""
    difference = left - right
    canonical = to_canonical(difference, signature)
    if not canonical.coefficients:
        return EquivalenceReport(True)
    witness = find_counterexample(left, right, signature, seed=seed)
    return EquivalenceReport(False, failing_output=0, counterexample=witness)


def check_systems(
    left: Sequence[Polynomial],
    right: Sequence[Polynomial],
    signature: BitVectorSignature,
    seed: int = DEFAULT_WITNESS_SEED,
) -> EquivalenceReport:
    """Outputs pair up positionally; the first mismatch is reported."""
    if len(left) != len(right):
        return EquivalenceReport(False, failing_output=min(len(left), len(right)))
    for index, (a, b) in enumerate(zip(left, right)):
        report = check_polynomials(a, b, signature, seed=seed)
        if not report:
            return EquivalenceReport(
                False, failing_output=index, counterexample=report.counterexample
            )
    return EquivalenceReport(True)


def check_decompositions(
    left: Decomposition,
    right: Decomposition,
    signature: BitVectorSignature,
    seed: int = DEFAULT_WITNESS_SEED,
) -> EquivalenceReport:
    """Equivalence of two synthesized implementations (blocks expanded)."""
    return check_systems(
        left.to_polynomials(), right.to_polynomials(), signature, seed=seed
    )


def find_counterexample(
    left: Polynomial,
    right: Polynomial,
    signature: BitVectorSignature,
    attempts: int = 4096,
    seed: int = DEFAULT_WITNESS_SEED,
) -> Mapping[str, int] | None:
    """A concrete input where the two functions differ (None if equal).

    Tries the algebraic witnesses first (degree tuples of the difference's
    canonical terms, smallest total degree first — at such a point all
    higher falling-factorial terms vanish), then falls back to randomized
    search driven by a :class:`random.Random` seeded with ``seed`` —
    never the module-level RNG, so the same inputs always yield the same
    witness.
    """
    modulus = signature.modulus
    variables = signature.variables
    difference = to_canonical(left - right, signature)
    if not difference.coefficients:
        return None

    def differs(env: Mapping[str, int]) -> bool:
        return left.evaluate_mod(env, modulus) != right.evaluate_mod(env, modulus)

    candidates = sorted(
        (k_tuple for k_tuple, _ in difference.coefficients),
        key=lambda k: (sum(k), k),
    )
    for k_tuple in candidates:
        env = {var: k for var, k in zip(variables, k_tuple)}
        if differs(env):
            return env

    rng = random.Random(seed)
    for _ in range(attempts):
        env = {
            var: rng.randrange(1 << signature.width_of(var)) for var in variables
        }
        if differs(env):
            return env
    # Canonical forms said "different", so a witness exists; the bounded
    # random search just failed to find it.  Signal with None-free report:
    raise RuntimeError(
        "canonical forms differ but no witness found within the attempt budget"
    )
