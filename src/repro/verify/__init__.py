"""Equivalence checking for polynomial datapaths.

The companion problem to synthesis (and the subject of the authors'
related work on Taylor Expansion Diagrams and finite-ring canonical
forms): decide whether two implementations compute the same bit-vector
function.  Chen's canonical form makes this decidable exactly over a
:class:`~repro.rings.canonical.BitVectorSignature` — two datapaths are
equivalent iff their canonical forms coincide.
"""

from .equivalence import (
    DEFAULT_WITNESS_SEED,
    EquivalenceReport,
    check_decompositions,
    check_polynomials,
    check_systems,
    find_counterexample,
)

__all__ = [
    "DEFAULT_WITNESS_SEED",
    "EquivalenceReport",
    "check_decompositions",
    "check_polynomials",
    "check_systems",
    "find_counterexample",
]
