"""repro — reproduction of Gopalakrishnan & Kalla, DATE 2009.

*Algebraic Techniques to Enhance Common Sub-expression Extraction for
Polynomial System Synthesis.*

Layers (bottom up):

* :mod:`repro.poly` — sparse multivariate integer polynomials (arithmetic,
  division, GCD);
* :mod:`repro.factor` — square-free and full factorization, Horner forms;
* :mod:`repro.rings` — polynomial functions over ``Z_2^m``, canonical
  falling-factorial forms;
* :mod:`repro.cse` — kernel/co-kernel extraction and multi-polynomial CSE;
* :mod:`repro.expr` — factored expressions, decompositions, operator counts;
* :mod:`repro.core` — the paper's integrated flow: CCE (Algorithm 6),
  cube extraction, algebraic division, Poly_Synth (Algorithm 7);
* :mod:`repro.dfg` / :mod:`repro.cost` — dataflow graphs and the hardware
  area/delay model;
* :mod:`repro.suite` / :mod:`repro.baselines` — benchmark systems and
  comparison methods;
* :mod:`repro.api` — the one supported entry point; this package merely
  re-exports its surface.
"""

from repro.api import (  # noqa: F401 — the facade's whole surface
    DEFAULT_METHODS,
    BatchEngine,
    BatchJob,
    BatchReport,
    BitVectorSignature,
    Budget,
    Decomposition,
    Degradation,
    EventStream,
    ExpressionDAG,
    JobResult,
    MethodOutcome,
    OpCount,
    Polynomial,
    PolySystem,
    ProgressRenderer,
    Provenance,
    RetryPolicy,
    RunConfig,
    SynthesisOptions,
    SynthesisResult,
    Timings,
    Tracer,
    TradeoffPoint,
    available_methods,
    clear_caches,
    compare_methods,
    explain_text,
    explore_tradeoffs,
    improvement,
    intern,
    lower_to_blocks,
    method_outcome,
    parse_polynomial,
    parse_system,
    register_method,
    shared_subexpressions,
    synthesize,
    synthesize_system,
)
from repro.api import __all__ as _api_all

__version__ = "1.0.0"

__all__ = [*_api_all, "__version__"]
