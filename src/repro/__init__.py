"""repro — reproduction of Gopalakrishnan & Kalla, DATE 2009.

*Algebraic Techniques to Enhance Common Sub-expression Extraction for
Polynomial System Synthesis.*

Layers (bottom up):

* :mod:`repro.poly` — sparse multivariate integer polynomials (arithmetic,
  division, GCD);
* :mod:`repro.factor` — square-free and full factorization, Horner forms;
* :mod:`repro.rings` — polynomial functions over ``Z_2^m``, canonical
  falling-factorial forms;
* :mod:`repro.cse` — kernel/co-kernel extraction and multi-polynomial CSE;
* :mod:`repro.expr` — factored expressions, decompositions, operator counts;
* :mod:`repro.core` — the paper's integrated flow: CCE (Algorithm 6),
  cube extraction, algebraic division, Poly_Synth (Algorithm 7);
* :mod:`repro.dfg` / :mod:`repro.cost` — dataflow graphs and the hardware
  area/delay model;
* :mod:`repro.suite` / :mod:`repro.baselines` — benchmark systems and
  comparison methods;
* :mod:`repro.api` — one-call entry points.
"""

from repro.api import (
    DEFAULT_METHODS,
    MethodOutcome,
    TradeoffPoint,
    compare_methods,
    explore_tradeoffs,
    improvement,
    method_outcome,
    synthesize_system,
)
from repro.baselines import available_methods, register_method
from repro.config import RetryPolicy, RunConfig
from repro.core import (
    Budget,
    Degradation,
    SynthesisOptions,
    SynthesisResult,
    Timings,
    synthesize,
)
from repro.engine import BatchEngine, BatchJob, BatchReport, JobResult
from repro.obs import Tracer
from repro.expr import Decomposition, OpCount
from repro.poly import Polynomial, parse_polynomial, parse_system
from repro.rings import BitVectorSignature
from repro.system import PolySystem

__version__ = "1.0.0"

__all__ = [
    "BatchEngine",
    "BatchJob",
    "BatchReport",
    "BitVectorSignature",
    "Budget",
    "DEFAULT_METHODS",
    "Decomposition",
    "Degradation",
    "JobResult",
    "MethodOutcome",
    "OpCount",
    "PolySystem",
    "Polynomial",
    "RetryPolicy",
    "RunConfig",
    "SynthesisOptions",
    "SynthesisResult",
    "Timings",
    "Tracer",
    "TradeoffPoint",
    "available_methods",
    "compare_methods",
    "explore_tradeoffs",
    "improvement",
    "method_outcome",
    "parse_polynomial",
    "parse_system",
    "register_method",
    "synthesize",
    "synthesize_system",
    "__version__",
]
