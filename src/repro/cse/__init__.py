"""Kernel-based common sub-expression extraction (substitute for JuanCSE).

Kernels/co-kernels per [13] plus a greedy kernel-intersection and
common-cube extraction loop over whole polynomial systems.

This is the repository's *exact* extractor.  The combination search no
longer runs it per scored combination: candidate combinations are
ranked on the shared expression DAG (:mod:`repro.dag`, see
``docs/DAG.md``) and only the finalists are assembled through
:func:`eliminate_common_subexpressions`.  The DAG's
:func:`repro.dag.lower_to_blocks` produces the same
:class:`CseResult` shape, so both lowerings honour one contract:
substituting every block definition back (:func:`expand_blocks`)
reproduces the input exactly.
"""

from .extract import (
    CseResult,
    eliminate_common_subexpressions,
    expand_blocks,
)
from .kcm import (
    KcmRow,
    KernelCubeMatrix,
    Rectangle,
    best_rectangles,
    build_kcm,
    grow_rectangle,
    rectangle_value,
)
from .kernels import KernelEntry, all_kernels, is_cube_free, iter_kernels

__all__ = [
    "CseResult",
    "KcmRow",
    "KernelCubeMatrix",
    "KernelEntry",
    "Rectangle",
    "all_kernels",
    "best_rectangles",
    "build_kcm",
    "eliminate_common_subexpressions",
    "expand_blocks",
    "grow_rectangle",
    "is_cube_free",
    "iter_kernels",
    "rectangle_value",
]
