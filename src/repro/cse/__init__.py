"""Kernel-based common sub-expression extraction (substitute for JuanCSE).

Kernels/co-kernels per [13] plus a greedy kernel-intersection and
common-cube extraction loop over whole polynomial systems.
"""

from .extract import (
    CseResult,
    eliminate_common_subexpressions,
    expand_blocks,
)
from .kcm import (
    KcmRow,
    KernelCubeMatrix,
    Rectangle,
    best_rectangles,
    build_kcm,
    grow_rectangle,
    rectangle_value,
)
from .kernels import KernelEntry, all_kernels, is_cube_free, iter_kernels

__all__ = [
    "CseResult",
    "KcmRow",
    "KernelCubeMatrix",
    "KernelEntry",
    "Rectangle",
    "all_kernels",
    "best_rectangles",
    "build_kcm",
    "eliminate_common_subexpressions",
    "expand_blocks",
    "grow_rectangle",
    "is_cube_free",
    "iter_kernels",
    "rectangle_value",
]
