"""Kernel / co-kernel extraction (paper Section 14.2.1, after [13]).

For a polynomial ``P`` and a cube ``c``, ``P/c`` is a *kernel* when it is
cube-free and has at least two terms; ``c`` is its *co-kernel*.  Kernels
are where multiple-term common sub-expressions hide: two polynomials share
a multi-term factor iff the factor appears within intersecting kernels
(Brayton's theorem, carried over to polynomials by Hosangadi et al.).

The generator below is the classical recursive enumeration adapted to
integer exponents: literals are variables (coefficients are *never*
divided here — the paper routes coefficient sharing through CCE instead),
and dividing by a literal removes one power of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.poly import Polynomial
from repro.poly.monomial import Exponents, mono_gcd_many, mono_is_one, mono_mul


@dataclass(frozen=True)
class KernelEntry:
    """One (co-kernel cube, kernel polynomial) pair."""

    cokernel: Exponents
    kernel: Polynomial


def _divide_by_literal(poly: Polynomial, index: int) -> Polynomial:
    """Divide the sub-polynomial of terms containing variable ``index``."""
    terms = {
        e[:index] + (e[index] - 1,) + e[index + 1:]: c
        for e, c in poly.terms.items()
        if e[index]
    }
    return Polynomial(poly.vars, terms)


def _common_cube(poly: Polynomial) -> Exponents:
    return mono_gcd_many(poly.terms.keys()) if len(poly) else (0,) * len(poly.vars)


def _divide_by_cube(poly: Polynomial, cube: Exponents) -> Polynomial:
    if mono_is_one(cube):
        return poly
    return Polynomial(
        poly.vars,
        {tuple(x - y for x, y in zip(e, cube)): c for e, c in poly.terms.items()},
    )


def iter_kernels(poly: Polynomial) -> Iterator[KernelEntry]:
    """Enumerate all (co-kernel, kernel) pairs of a polynomial.

    Includes the polynomial itself (with co-kernel 1) when it is cube-free
    with at least two terms, per the standard definition.  Duplicate paths
    are pruned with the classical "no smaller literal in the extracted
    cube" test.
    """
    if len(poly) < 2:
        return
    nvars = len(poly.vars)
    unit = (0,) * nvars

    seen: set[tuple[Exponents, frozenset]] = set()

    def emit(cokernel: Exponents, kernel: Polynomial) -> Iterator[KernelEntry]:
        key = (cokernel, frozenset(kernel.terms.items()))
        if key not in seen:
            seen.add(key)
            yield KernelEntry(cokernel, kernel)

    def recurse(current: Polynomial, cokernel: Exponents, min_index: int) -> Iterator[KernelEntry]:
        for j in range(min_index, nvars):
            count = sum(1 for e in current.terms if e[j])
            if count < 2:
                continue
            divided = _divide_by_literal(current, j)
            cube = _common_cube(divided)
            if any(cube[k] for k in range(j)):
                # A smaller literal divides the quotient: this kernel will
                # be found (or was) through that literal instead.
                continue
            kernel = _divide_by_cube(divided, cube)
            if len(kernel) < 2:
                continue
            step = mono_mul(
                cokernel, mono_mul(cube, tuple(1 if k == j else 0 for k in range(nvars)))
            )
            yield from emit(step, kernel)
            yield from recurse(kernel, step, j)

    top_cube = _common_cube(poly)
    top = _divide_by_cube(poly, top_cube)
    if len(top) >= 2:
        yield from emit(top_cube, top)
    yield from recurse(top, top_cube, 0)
    if not mono_is_one(top_cube):
        # Also enumerate kernels of the original alignment (cube-free part
        # already covered above; nothing else to add).
        pass


def all_kernels(poly: Polynomial) -> list[KernelEntry]:
    """List of every kernel/co-kernel pair (see :func:`iter_kernels`)."""
    return list(iter_kernels(poly))


def is_cube_free(poly: Polynomial) -> bool:
    """True when no non-unit cube divides every term."""
    if poly.is_zero:
        return False
    return mono_is_one(_common_cube(poly))
