"""Kernel / co-kernel extraction (paper Section 14.2.1, after [13]).

For a polynomial ``P`` and a cube ``c``, ``P/c`` is a *kernel* when it is
cube-free and has at least two terms; ``c`` is its *co-kernel*.  Kernels
are where multiple-term common sub-expressions hide: two polynomials share
a multi-term factor iff the factor appears within intersecting kernels
(Brayton's theorem, carried over to polynomials by Hosangadi et al.).

The generator below is the classical recursive enumeration adapted to
integer exponents: literals are variables (coefficients are *never*
divided here — the paper routes coefficient sharing through CCE instead),
and dividing by a literal removes one power of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.poly import Polynomial
from repro.poly.monomial import Exponents, mono_gcd_many, mono_is_one, mono_mul


@dataclass(frozen=True)
class KernelEntry:
    """One (co-kernel cube, kernel polynomial) pair."""

    cokernel: Exponents
    kernel: Polynomial


def _divide_by_literal(poly: Polynomial, index: int) -> Polynomial:
    """Divide the sub-polynomial of terms containing variable ``index``."""
    terms = {
        e[:index] + (e[index] - 1,) + e[index + 1:]: c
        for e, c in poly.terms.items()
        if e[index]
    }
    return Polynomial(poly.vars, terms)


def _common_cube(poly: Polynomial) -> Exponents:
    return mono_gcd_many(poly.terms.keys()) if len(poly) else (0,) * len(poly.vars)


def _divide_by_cube(poly: Polynomial, cube: Exponents) -> Polynomial:
    if mono_is_one(cube):
        return poly
    return Polynomial(
        poly.vars,
        {tuple(x - y for x, y in zip(e, cube)): c for e, c in poly.terms.items()},
    )


def iter_kernels(poly: Polynomial) -> Iterator[KernelEntry]:
    """Enumerate all (co-kernel, kernel) pairs of a polynomial.

    Includes the polynomial itself (with co-kernel 1) when it is cube-free
    with at least two terms, per the standard definition.  Duplicate paths
    are pruned with the classical "no smaller literal in the extracted
    cube" test.
    """
    if len(poly) < 2:
        return
    nvars = len(poly.vars)
    unit = (0,) * nvars

    seen: set[tuple[Exponents, frozenset]] = set()

    def emit(cokernel: Exponents, kernel: Polynomial) -> Iterator[KernelEntry]:
        key = (cokernel, frozenset(kernel.terms.items()))
        if key not in seen:
            seen.add(key)
            yield KernelEntry(cokernel, kernel)

    def recurse(current: Polynomial, cokernel: Exponents, min_index: int) -> Iterator[KernelEntry]:
        for j in range(min_index, nvars):
            count = sum(1 for e in current.terms if e[j])
            if count < 2:
                continue
            divided = _divide_by_literal(current, j)
            cube = _common_cube(divided)
            if any(cube[k] for k in range(j)):
                # A smaller literal divides the quotient: this kernel will
                # be found (or was) through that literal instead.
                continue
            kernel = _divide_by_cube(divided, cube)
            if len(kernel) < 2:
                continue
            step = mono_mul(
                cokernel, mono_mul(cube, tuple(1 if k == j else 0 for k in range(nvars)))
            )
            yield from emit(step, kernel)
            yield from recurse(kernel, step, j)

    top_cube = _common_cube(poly)
    top = _divide_by_cube(poly, top_cube)
    if len(top) >= 2:
        yield from emit(top_cube, top)
    yield from recurse(top, top_cube, 0)
    if not mono_is_one(top_cube):
        # Also enumerate kernels of the original alignment (cube-free part
        # already covered above; nothing else to add).
        pass


#: Content-keyed memo of kernel enumerations.  Keys are the *trimmed*
#: polynomial's (variable names, term set), so the same mathematical
#: polynomial hits regardless of how many unused block variables pad its
#: tuple — the CSE extractor re-pads every polynomial each round, and the
#: combination search re-runs CSE over largely identical rows, so hit
#: rates are high.  Bounded by wholesale clearing (the entries are cheap
#: to rebuild and an LRU would put bookkeeping on the hot path).
_KERNEL_CACHE: dict[tuple, tuple[KernelEntry, ...]] = {}
_KERNEL_CACHE_MAX = 8192

#: Second-level memo of already-rehydrated results, keyed by the *exact*
#: (variable tuple, term set) pair, so repeat calls on the same aligned
#: polynomial skip both trimming and rehydration entirely.
_ALIGNED_CACHE: dict[tuple, list[KernelEntry]] = {}


def clear_kernel_cache() -> None:
    """Drop the kernel memo (tests use this to measure cold runs)."""
    _KERNEL_CACHE.clear()
    _ALIGNED_CACHE.clear()


def kernel_cache_size() -> int:
    """Entries currently held by the content-keyed kernel memo."""
    return len(_KERNEL_CACHE)


def all_kernels(poly: Polynomial) -> list[KernelEntry]:
    """List of every kernel/co-kernel pair (see :func:`iter_kernels`).

    Memoized by polynomial content: enumeration is the combination
    search's hottest sub-step, and the search re-visits the same
    representation polynomials (modulo variable padding) across many
    scored combinations.  Cached entries are rehydrated onto the
    caller's variable tuple; the kernels themselves are immutable.
    """
    aligned_key = (poly.vars, frozenset(poly.terms.items()))
    hit = _ALIGNED_CACHE.get(aligned_key)
    if hit is not None:
        return hit
    trimmed = poly.trim()
    key = (trimmed.vars, frozenset(trimmed.terms.items()))
    cached = _KERNEL_CACHE.get(key)
    if cached is None:
        if len(_KERNEL_CACHE) >= _KERNEL_CACHE_MAX:
            _KERNEL_CACHE.clear()
        cached = tuple(iter_kernels(trimmed))
        _KERNEL_CACHE[key] = cached
    if trimmed.vars == poly.vars:
        out = list(cached)
    else:
        # Re-express the trimmed enumeration over the caller's variables.
        index_of = {v: i for i, v in enumerate(poly.vars)}
        positions = [index_of[v] for v in trimmed.vars]
        nvars = len(poly.vars)
        out = []
        for entry in cached:
            cokernel = [0] * nvars
            for pos, e in zip(positions, entry.cokernel):
                cokernel[pos] = e
            terms = {}
            for exps, coeff in entry.kernel.terms.items():
                full = [0] * nvars
                for pos, e in zip(positions, exps):
                    full[pos] = e
                terms[tuple(full)] = coeff
            out.append(
                KernelEntry(tuple(cokernel), Polynomial._raw(poly.vars, terms))
            )
    if len(_ALIGNED_CACHE) >= _KERNEL_CACHE_MAX:
        _ALIGNED_CACHE.clear()
    _ALIGNED_CACHE[aligned_key] = out
    return out


def is_cube_free(poly: Polynomial) -> bool:
    """True when no non-unit cube divides every term."""
    if poly.is_zero:
        return False
    return mono_is_one(_common_cube(poly))
