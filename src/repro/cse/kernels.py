"""Kernel / co-kernel extraction (paper Section 14.2.1, after [13]).

For a polynomial ``P`` and a cube ``c``, ``P/c`` is a *kernel* when it is
cube-free and has at least two terms; ``c`` is its *co-kernel*.  Kernels
are where multiple-term common sub-expressions hide: two polynomials share
a multi-term factor iff the factor appears within intersecting kernels
(Brayton's theorem, carried over to polynomials by Hosangadi et al.).

The generator below is the classical recursive enumeration adapted to
integer exponents: literals are variables (coefficients are *never*
divided here — the paper routes coefficient sharing through CCE instead),
and dividing by a literal removes one power of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.poly import Polynomial
from repro.poly.monomial import Exponents, mono_gcd_many, mono_is_one, mono_mul
from repro.poly.packed import PackedContext, packed_enabled, packed_form


@dataclass(frozen=True)
class KernelEntry:
    """One (co-kernel cube, kernel polynomial) pair."""

    cokernel: Exponents
    kernel: Polynomial


def _divide_by_literal(poly: Polynomial, index: int) -> Polynomial:
    """Divide the sub-polynomial of terms containing variable ``index``."""
    terms = {
        e[:index] + (e[index] - 1,) + e[index + 1:]: c
        for e, c in poly.terms.items()
        if e[index]
    }
    return Polynomial(poly.vars, terms)


def _common_cube(poly: Polynomial) -> Exponents:
    return mono_gcd_many(poly.terms.keys()) if len(poly) else (0,) * len(poly.vars)


def _divide_by_cube(poly: Polynomial, cube: Exponents) -> Polynomial:
    if mono_is_one(cube):
        return poly
    return Polynomial(
        poly.vars,
        {tuple(x - y for x, y in zip(e, cube)): c for e, c in poly.terms.items()},
    )


def _iter_kernels_packed(
    poly: Polynomial, ctx: PackedContext
) -> Iterator[KernelEntry]:
    """Packed mirror of the tuple recursion in :func:`iter_kernels`.

    Works over parallel ``(packed key, coeff)`` lists so literal/cube
    division is integer subtraction instead of tuple rebuilds.  The
    enumeration order, pruning decisions, and emitted term-dict insertion
    orders are reproduced exactly (downstream greedy tie-breaks observe
    them), so the two paths yield identical sequences.
    """
    nvars = ctx.nvars
    width = ctx.width
    div = ctx.div
    mul = ctx.mul
    unpack = ctx.unpack
    lowmask = ctx.lowmask
    units = [ctx.unit(j) for j in range(nvars)]
    field_mask = (1 << width) - 1

    seen: set[tuple[int, frozenset]] = set()

    def emit(cok_p: int, keys: list[int], coeffs: list[int]) -> Iterator[KernelEntry]:
        key = (cok_p, frozenset(zip(keys, coeffs)))
        if key not in seen:
            seen.add(key)
            terms = {unpack(k): c for k, c in zip(keys, coeffs)}
            yield KernelEntry(unpack(cok_p), Polynomial._raw(poly.vars, terms))

    def common_cube_bits(keys: list[int]) -> int:
        """Field-wise min of the exponent fields (degree field stripped)."""
        it = iter(keys)
        acc = next(it) & lowmask
        gcd = ctx.exps_gcd
        for k in it:
            if not acc:
                break
            acc = gcd(acc, k & lowmask)
        return acc

    def recurse(
        keys: list[int], coeffs: list[int], cok_p: int, min_index: int
    ) -> Iterator[KernelEntry]:
        for j in range(min_index, nvars):
            shift = j * width
            count = 0
            for k in keys:
                if (k >> shift) & field_mask:
                    count += 1
                    if count == 2:
                        break
            if count < 2:
                continue
            unit_j = units[j]
            dkeys: list[int] = []
            dcoeffs: list[int] = []
            for k, c in zip(keys, coeffs):
                if (k >> shift) & field_mask:
                    dkeys.append(div(k, unit_j))
                    dcoeffs.append(c)
            cube_bits = common_cube_bits(dkeys)
            if cube_bits & ((1 << shift) - 1):
                # A smaller literal divides the quotient: this kernel will
                # be found (or was) through that literal instead.
                continue
            if cube_bits:
                cube_p = ctx.with_degree_field(cube_bits)
                kkeys = [div(k, cube_p) for k in dkeys]
            else:
                cube_p = None
                kkeys = dkeys
            if len(kkeys) < 2:
                continue
            step = mul(cok_p, unit_j)
            if cube_p is not None:
                step = mul(step, cube_p)
            yield from emit(step, kkeys, dcoeffs)
            yield from recurse(kkeys, dcoeffs, step, j)

    packed = packed_form(poly, ctx)
    keys = list(packed.keys)
    coeffs = list(packed.coeffs)
    top_bits = common_cube_bits(keys)
    if top_bits:
        top_p = ctx.with_degree_field(top_bits)
        keys = [div(k, top_p) for k in keys]
        top_cok = top_p
    else:
        top_cok = ctx.with_degree_field(0)
    if len(keys) >= 2:
        yield from emit(top_cok, keys, coeffs)
    yield from recurse(keys, coeffs, top_cok, 0)


def _kernel_context(poly: Polynomial) -> PackedContext | None:
    """Context for kernel enumeration (division-only: operand bound)."""
    if not packed_enabled() or poly.is_zero:
        return None
    return PackedContext.for_degrees(len(poly.vars), poly.total_degree())


def iter_kernels(poly: Polynomial) -> Iterator[KernelEntry]:
    """Enumerate all (co-kernel, kernel) pairs of a polynomial.

    Includes the polynomial itself (with co-kernel 1) when it is cube-free
    with at least two terms, per the standard definition.  Duplicate paths
    are pruned with the classical "no smaller literal in the extracted
    cube" test.  Dispatches to the packed-monomial recursion when a
    context fits (see ``repro.poly.packed``); the tuple recursion below
    stays as the reference path and the ``REPRO_PACKED=0`` fallback.
    """
    if len(poly) < 2:
        return
    ctx = _kernel_context(poly)
    if ctx is not None:
        yield from _iter_kernels_packed(poly, ctx)
        return
    nvars = len(poly.vars)
    unit = (0,) * nvars

    seen: set[tuple[Exponents, frozenset]] = set()

    def emit(cokernel: Exponents, kernel: Polynomial) -> Iterator[KernelEntry]:
        key = (cokernel, frozenset(kernel.terms.items()))
        if key not in seen:
            seen.add(key)
            yield KernelEntry(cokernel, kernel)

    def recurse(current: Polynomial, cokernel: Exponents, min_index: int) -> Iterator[KernelEntry]:
        for j in range(min_index, nvars):
            count = sum(1 for e in current.terms if e[j])
            if count < 2:
                continue
            divided = _divide_by_literal(current, j)
            cube = _common_cube(divided)
            if any(cube[k] for k in range(j)):
                # A smaller literal divides the quotient: this kernel will
                # be found (or was) through that literal instead.
                continue
            kernel = _divide_by_cube(divided, cube)
            if len(kernel) < 2:
                continue
            step = mono_mul(
                cokernel, mono_mul(cube, tuple(1 if k == j else 0 for k in range(nvars)))
            )
            yield from emit(step, kernel)
            yield from recurse(kernel, step, j)

    top_cube = _common_cube(poly)
    top = _divide_by_cube(poly, top_cube)
    if len(top) >= 2:
        yield from emit(top_cube, top)
    yield from recurse(top, top_cube, 0)
    if not mono_is_one(top_cube):
        # Also enumerate kernels of the original alignment (cube-free part
        # already covered above; nothing else to add).
        pass


#: Content-keyed memo of kernel enumerations.  Keys are the *trimmed*
#: polynomial's (variable names, term set), so the same mathematical
#: polynomial hits regardless of how many unused block variables pad its
#: tuple — the CSE extractor re-pads every polynomial each round, and the
#: combination search re-runs CSE over largely identical rows, so hit
#: rates are high.  Bounded by wholesale clearing (the entries are cheap
#: to rebuild and an LRU would put bookkeeping on the hot path).
_KERNEL_CACHE: dict[tuple, tuple[KernelEntry, ...]] = {}
_KERNEL_CACHE_MAX = 8192

#: Second-level memo of already-rehydrated results, keyed by the *exact*
#: (variable tuple, term set) pair, so repeat calls on the same aligned
#: polynomial skip both trimming and rehydration entirely.
_ALIGNED_CACHE: dict[tuple, list[KernelEntry]] = {}


def clear_kernel_cache() -> None:
    """Drop the kernel memo (tests use this to measure cold runs)."""
    _KERNEL_CACHE.clear()
    _ALIGNED_CACHE.clear()


def kernel_cache_size() -> int:
    """Entries currently held by the content-keyed kernel memo."""
    return len(_KERNEL_CACHE)


def all_kernels(poly: Polynomial) -> list[KernelEntry]:
    """List of every kernel/co-kernel pair (see :func:`iter_kernels`).

    Memoized by polynomial content: enumeration is the combination
    search's hottest sub-step, and the search re-visits the same
    representation polynomials (modulo variable padding) across many
    scored combinations.  Cached entries are rehydrated onto the
    caller's variable tuple; the kernels themselves are immutable.
    """
    aligned_key = (poly.vars, frozenset(poly.terms.items()))
    hit = _ALIGNED_CACHE.get(aligned_key)
    if hit is not None:
        return hit
    trimmed = poly.trim()
    key = (trimmed.vars, frozenset(trimmed.terms.items()))
    cached = _KERNEL_CACHE.get(key)
    if cached is None:
        if len(_KERNEL_CACHE) >= _KERNEL_CACHE_MAX:
            _KERNEL_CACHE.clear()
        cached = tuple(iter_kernels(trimmed))
        _KERNEL_CACHE[key] = cached
    if trimmed.vars == poly.vars:
        out = list(cached)
    else:
        # Re-express the trimmed enumeration over the caller's variables.
        index_of = {v: i for i, v in enumerate(poly.vars)}
        positions = [index_of[v] for v in trimmed.vars]
        nvars = len(poly.vars)
        out = []
        for entry in cached:
            cokernel = [0] * nvars
            for pos, e in zip(positions, entry.cokernel):
                cokernel[pos] = e
            terms = {}
            for exps, coeff in entry.kernel.terms.items():
                full = [0] * nvars
                for pos, e in zip(positions, exps):
                    full[pos] = e
                terms[tuple(full)] = coeff
            out.append(
                KernelEntry(tuple(cokernel), Polynomial._raw(poly.vars, terms))
            )
    if len(_ALIGNED_CACHE) >= _KERNEL_CACHE_MAX:
        _ALIGNED_CACHE.clear()
    _ALIGNED_CACHE[aligned_key] = out
    return out


def is_cube_free(poly: Polynomial) -> bool:
    """True when no non-unit cube divides every term."""
    if poly.is_zero:
        return False
    return mono_is_one(_common_cube(poly))
