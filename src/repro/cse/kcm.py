"""The Kernel-Cube Matrix (KCM) and prime-rectangle extraction.

The matrix formulation of multi-polynomial CSE from Hosangadi et al. [13]
(inherited from Rajski/Vasudevamurthy's Boolean rectangle covering):

* one **row** per (polynomial, co-kernel) pair,
* one **column** per distinct cube appearing in any kernel (a cube here is
  a signed coefficient with a monomial),
* entry ``(r, c) = 1`` iff column ``c``'s cube is a term of row ``r``'s
  kernel.

A **rectangle** (set of rows x set of columns, all ones) is a common
sub-expression: the column cubes sum to an expression contained in every
row's kernel.  A **prime** rectangle cannot be extended in either
direction without losing the all-ones property.  The classical greedy
"ping-pong" heuristic grows a seed column into a locally best prime
rectangle by alternating row- and column-side extensions.

:mod:`repro.cse.extract` consumes the best rectangles as extraction
candidates (they capture k-way kernel intersections that pairwise
intersection misses).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.poly import Polynomial
from repro.poly.monomial import Exponents, mono_literal_count
from repro.poly.packed import PackedContext, packed_enabled, packed_form

from .kernels import all_kernels

Cube = tuple[Exponents, int]  # (monomial, coefficient)


@dataclass(frozen=True)
class KcmRow:
    """One (polynomial index, co-kernel) pair."""

    poly_index: int
    cokernel: Exponents


@dataclass
class KernelCubeMatrix:
    """The incidence structure between kernel rows and cube columns."""

    variables: tuple[str, ...]
    rows: list[KcmRow]
    columns: list[Cube]
    # For each row, the set of column indices present in its kernel.
    incidence: list[set[int]]
    # Lazily-built transpose (column -> rows containing it); rectangle
    # growth probes row coverage hundreds of times per matrix.
    _postings: list[set[int]] | None = field(default=None, repr=False)

    @property
    def shape(self) -> tuple[int, int]:
        return len(self.rows), len(self.columns)

    def _column_postings(self) -> list[set[int]]:
        postings = self._postings
        if postings is None:
            postings = [set() for _ in self.columns]
            for r, present in enumerate(self.incidence):
                for c in present:
                    postings[c].add(r)
            self._postings = postings
        return postings

    def column_sum(self, column_indices: Sequence[int]) -> Polynomial:
        """The polynomial formed by a set of columns (the sub-expression)."""
        terms: dict[Exponents, int] = {}
        for index in column_indices:
            exps, coeff = self.columns[index]
            terms[exps] = terms.get(exps, 0) + coeff
        return Polynomial(self.variables, terms)

    def rows_covering(self, column_indices: set[int]) -> list[int]:
        """Rows whose kernels contain every given column (ascending)."""
        if not column_indices:
            return list(range(len(self.rows)))
        postings = self._column_postings()
        it = iter(column_indices)
        acc = set(postings[next(it)])
        for c in it:
            acc &= postings[c]
            if not acc:
                break
        return sorted(acc)

    def columns_common(self, row_indices: Sequence[int]) -> set[int]:
        """Columns present in every given row."""
        row_iter = iter(row_indices)
        try:
            first = next(row_iter)
        except StopIteration:
            return set()
        common = set(self.incidence[first])
        for r in row_iter:
            common &= self.incidence[r]
            if not common:
                break
        return common


def build_kcm(polys: Sequence[Polynomial]) -> KernelCubeMatrix:
    """Construct the KCM of a polynomial system."""
    unified = Polynomial.unify_all(list(polys))
    variables = unified[0].vars if unified else ()
    rows: list[KcmRow] = []
    kernels: list[Polynomial] = []
    # Column interning probes once per kernel term; with a packed context
    # the dict is keyed by (packed monomial, coeff) integers instead of
    # nested tuples.  Column identity and first-appearance order (hence
    # indices) are representation-independent, so the matrix is identical.
    ctx: PackedContext | None = None
    if unified and packed_enabled():
        degree = max(
            (p.total_degree() for p in unified if not p.is_zero), default=0
        )
        ctx = PackedContext.for_degrees(len(variables), degree)
    column_index: dict[tuple, int] = {}
    columns: list[Cube] = []
    incidence: list[set[int]] = []

    for poly_index, poly in enumerate(unified):
        for entry in all_kernels(poly):
            rows.append(KcmRow(poly_index, entry.cokernel))
            kernels.append(entry.kernel)

    for kernel in kernels:
        present: set[int] = set()
        if ctx is not None:
            packed = packed_form(kernel, ctx)
            for pkey, item in zip(packed.keys, kernel.terms.items()):
                cube_key = (pkey, item[1])
                index = column_index.get(cube_key)
                if index is None:
                    index = len(columns)
                    column_index[cube_key] = index
                    columns.append(item)
                present.add(index)
        else:
            for cube in kernel.terms.items():
                index = column_index.get(cube)
                if index is None:
                    index = len(columns)
                    column_index[cube] = index
                    columns.append(cube)
                present.add(index)
        incidence.append(present)
    return KernelCubeMatrix(variables, rows, columns, incidence)


@dataclass(frozen=True)
class Rectangle:
    """An all-ones submatrix: rows sharing the column sub-expression."""

    row_indices: tuple[int, ...]
    column_indices: tuple[int, ...]
    value: int

    @property
    def num_rows(self) -> int:
        return len(self.row_indices)

    @property
    def num_columns(self) -> int:
        return len(self.column_indices)


def _column_weight(cube: Cube) -> int:
    """Weighted operator content of one cube (variable muls dear)."""
    exps, coeff = cube
    weight = max(mono_literal_count(exps) - 1, 0) * 20
    if abs(coeff) != 1 and mono_literal_count(exps):
        weight += 2
    return weight


def rectangle_value(kcm: KernelCubeMatrix, rows: Sequence[int], cols: set[int]) -> int:
    """Savings estimate: (occurrences - 1) x cost of the shared body."""
    if len(rows) < 2 or len(cols) < 2:
        return 0
    body_cost = sum(_column_weight(kcm.columns[c]) for c in cols) + (len(cols) - 1)
    return (len(rows) - 1) * body_cost


def grow_rectangle(kcm: KernelCubeMatrix, seed_column: int) -> Rectangle | None:
    """Ping-pong growth from a seed column to a locally-best prime rectangle."""
    cols = {seed_column}
    rows = kcm.rows_covering(cols)
    if len(rows) < 2:
        return None
    best_value = 0
    best: tuple[list[int], set[int]] | None = None
    for _ in range(8):  # alternation converges fast; bound for safety
        # Column side: take every column all current rows share.
        cols = kcm.columns_common(rows)
        rows = kcm.rows_covering(cols)
        value = rectangle_value(kcm, rows, cols)
        if value > best_value:
            best_value = value
            best = (list(rows), set(cols))
        # Row side: try dropping the row that constrains columns most.
        if len(rows) <= 2:
            break
        scored = []
        for drop in rows:
            kept = [r for r in rows if r != drop]
            candidate_cols = kcm.columns_common(kept)
            scored.append(
                (rectangle_value(kcm, kept, candidate_cols), kept, candidate_cols)
            )
        scored.sort(key=lambda item: item[0], reverse=True)
        if not scored or scored[0][0] <= value:
            break
        _, rows, cols = scored[0]
        rows = kcm.rows_covering(cols)
    if best is None:
        return None
    rows_out, cols_out = best
    return Rectangle(tuple(sorted(rows_out)), tuple(sorted(cols_out)), best_value)


def best_rectangles(
    kcm: KernelCubeMatrix, limit: int = 8
) -> list[Rectangle]:
    """The top prime rectangles by estimated value (deduplicated)."""
    found: dict[tuple[tuple[int, ...], tuple[int, ...]], Rectangle] = {}
    for seed in range(len(kcm.columns)):
        rectangle = grow_rectangle(kcm, seed)
        if rectangle is None or rectangle.value <= 0:
            continue
        key = (rectangle.row_indices, rectangle.column_indices)
        if key not in found:
            found[key] = rectangle
    ranked = sorted(found.values(), key=lambda r: r.value, reverse=True)
    return ranked[:limit]
