"""Greedy multi-polynomial common sub-expression extraction.

The repo's substitute for the JuanCSE tool [14]: an implementation of the
kernel-intersection CSE of Hosangadi, Fallah & Kastner [13].  Each round:

1. enumerate every kernel of every polynomial (:mod:`repro.cse.kernels`),
2. build the candidate pool — whole kernels, pairwise kernel
   intersections (multi-term sub-expressions), and common cubes with and
   without an attached coefficient (single-term sub-expressions),
3. score each candidate by the exact MULT/ADD operators its extraction
   saves (weighted: a multiplier is worth several adders),
4. extract the best candidate into a fresh building-block variable and
   rewrite every occurrence, then iterate until nothing saves anything.

Matching is *syntactic* with exact integer coefficients (and global sign),
exactly like [13]: ``4 - 3ab`` in two kernels matches, ``8 - 6ab`` does
not — closing that gap is the job of the paper's CCE and algebraic
division, not of CSE.

Coefficients are never split here; blocks become ordinary variables of the
rewritten polynomials, so extraction composes transparently with every
other transformation in the repository.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Iterable, Sequence

from repro.poly import Polynomial
from repro.poly.monomial import Exponents, mono_literal_count, mono_mul
from repro.poly.packed import PackedContext, packed_enabled, packed_form

from .kernels import all_kernels

_MUL_WEIGHT = 20   # variable x variable multiply (array multiplier)
_CMUL_WEIGHT = 2   # multiply by a compile-time constant (CSD shift-add)
_ADD_WEIGHT = 1


def _current_deadline():
    # Lazy import: cse is a dependency of core, so the budget module is
    # reached at call time to keep the import graph acyclic.
    from repro.core.budget import current_deadline

    return current_deadline()


def _deadline_stride():
    """(ambient deadline, CHECK_STRIDE) — lazy for the same cycle reason."""
    from repro.core.budget import CHECK_STRIDE, current_deadline

    return current_deadline(), CHECK_STRIDE


@dataclass
class CseResult:
    """Rewritten system plus the building blocks CSE introduced."""

    polys: list[Polynomial]
    blocks: dict[str, Polynomial] = field(default_factory=dict)
    rounds: int = 0

    @property
    def block_names(self) -> list[str]:
        return list(self.blocks)


def _term_weight(coeff: int, exps: Exponents) -> int:
    """Weighted operator cost of implementing one term's product.

    Variable-by-variable multiplies dominate; the coefficient multiply is
    a cheap shift-add network.
    """
    literals = mono_literal_count(exps)
    weight = max(literals - 1, 0) * _MUL_WEIGHT
    if abs(coeff) != 1 and literals:
        weight += _CMUL_WEIGHT
    return weight


def _poly_weight(poly: Polynomial) -> int:
    """Weighted operator cost of a polynomial implemented as a direct SOP."""
    total = sum(_term_weight(c, e) for e, c in poly.terms.items())
    if len(poly) > 1:
        total += (len(poly) - 1) * _ADD_WEIGHT
    return total


def _normalize_sign(poly: Polynomial) -> tuple[Polynomial, int]:
    """Return (positively-oriented polynomial, sign)."""
    if poly.leading_coeff("grlex") < 0:
        return -poly, -1
    return poly, 1


@dataclass(frozen=True)
class _KernelCandidate:
    body: Polynomial  # sign-normalized, >= 2 terms, cube-free


@dataclass(frozen=True)
class _CubeCandidate:
    coeff: int  # 1 for a plain variable cube, else the exact shared coefficient
    exps: Exponents


class _Extractor:
    """One CSE run over a system of polynomials."""

    #: How many block-variable columns are reserved at a time.  Extending
    #: the variable tuple re-pads every polynomial's exponent tuples, and
    #: a changed tuple also misses the kernel memo's aligned cache — so
    #: slots are claimed from a pre-reserved chunk and the expensive
    #: re-pad happens once per chunk instead of once per extraction.
    _SLOT_CHUNK = 16

    def __init__(
        self,
        polys: Sequence[Polynomial],
        prefix: str,
        start_index: int,
        max_rounds: int,
        enable_kernels: bool = True,
        enable_cubes: bool = True,
        enable_rectangles: bool = True,
    ):
        unified = Polynomial.unify_all(list(polys))
        self.vars: tuple[str, ...] = unified[0].vars if unified else ()
        self.polys: list[Polynomial] = unified
        self.blocks: dict[str, Polynomial] = {}
        self.prefix = prefix
        self.counter = start_index
        self.max_rounds = max_rounds
        self.rounds = 0
        self.enable_kernels = enable_kernels
        self.enable_cubes = enable_cubes
        self.enable_rectangles = enable_rectangles
        self._next_slot = len(self.vars)

    # -- candidate generation ------------------------------------------

    def _packed_context(self) -> PackedContext | None:
        """Per-round packed context, sized for co-kernel x term products.

        CSE probes ``mono_mul(cokernel, body_term)`` against the current
        polynomials; both factors are bounded by the system's maximum
        total degree, so the context is sized for the *sum* of two such
        bounds (the product-degree rule — see ``repro.poly.packed``).
        ``None`` selects the reference tuple path everywhere.
        """
        if not packed_enabled():
            return None
        degree = 0
        for poly in self.polys:
            if not poly.is_zero:
                d = poly.total_degree()
                if d > degree:
                    degree = d
        return PackedContext.for_degrees(len(self.vars), degree, degree)

    def _kernel_rows(
        self, ctx: PackedContext | None
    ) -> list[tuple]:
        """(poly index, co-kernel, kernel, term-set, + packed trio) rows.

        The frozenset of ``(exponents, coeff)`` items rides along so the
        candidate-intersection step runs as C-speed set operations; when
        a packed context is available each row additionally carries its
        packed co-kernel, ordered packed term items, and their frozenset
        (``None`` placeholders otherwise) for the occurrence-matching and
        gain loops, which probe by integer keys instead of tuples.
        """
        rows = []
        if ctx is None:
            for index, poly in enumerate(self.polys):
                for entry in all_kernels(poly):
                    rows.append((
                        index,
                        entry.cokernel,
                        entry.kernel,
                        frozenset(entry.kernel.terms.items()),
                        None,
                        None,
                        None,
                    ))
            return rows
        pack = ctx.pack
        for index, poly in enumerate(self.polys):
            for entry in all_kernels(poly):
                packed = packed_form(entry.kernel, ctx)
                pitems = list(zip(packed.keys, packed.coeffs))
                rows.append((
                    index,
                    entry.cokernel,
                    entry.kernel,
                    frozenset(entry.kernel.terms.items()),
                    pack(entry.cokernel),
                    pitems,
                    frozenset(pitems),
                ))
        return rows

    def _kernel_candidates(self, rows: list[tuple]) -> list[_KernelCandidate]:
        pool: dict[frozenset, Polynomial] = {}

        def add(poly: Polynomial) -> None:
            if len(poly) < 2:
                return
            normalized, _ = _normalize_sign(poly)
            key = frozenset(normalized.terms.items())
            pool.setdefault(key, normalized)

        # Deduplicate kernels (shifted-copy systems repeat them massively)
        # before the quadratic pairwise-intersection step.
        unique: dict[frozenset, Polynomial] = {}
        for row in rows:
            unique.setdefault(row[3], row[2])
        for kernel in unique.values():
            add(kernel)
        term_sets = list(unique)
        negated = [frozenset((e, -c) for e, c in fs) for fs in term_sets]
        deadline, stride = _deadline_stride()
        ticking = deadline.enabled
        pending = 0
        variables = self.vars
        # Inverted index over term items: a useful overlap needs >= 2
        # shared terms, and under 1% of all kernel pairs have even one —
        # counting co-occurrences through posting lists visits only the
        # pairs that share something, instead of the full quadratic sweep.
        posting: dict = {}
        for i, fs in enumerate(term_sets):
            for item in fs:
                posting.setdefault(item, []).append(i)
        for i, fs_a in enumerate(term_sets):
            counts: dict[int, int] = {}
            flip_counts: dict[int, int] = {}
            work = 0
            for item in fs_a:
                for j in posting.get(item, ()):
                    if j > i:
                        counts[j] = counts.get(j, 0) + 1
                        work += 1
                exps, coeff = item
                for j in posting.get((exps, -coeff), ()):
                    if j > i:
                        flip_counts[j] = flip_counts.get(j, 0) + 1
                        work += 1
            if ticking:
                pending += work + 1
                if pending >= stride:
                    deadline.tick(pending, site="cse/kernel_pairs")
                    pending = 0
            # Ascending partner order keeps candidate-pool insertion (and
            # thus greedy tie-breaking) identical to the full pairwise
            # sweep this replaces, independent of frozenset hash order.
            for j in sorted(counts):
                if counts[j] >= 2:
                    add(Polynomial._raw(variables, dict(fs_a & term_sets[j])))
                if flip_counts.get(j, 0) >= 2:
                    add(Polynomial._raw(variables, dict(fs_a & negated[j])))
            for j in sorted(flip_counts):
                if j not in counts and flip_counts[j] >= 2:
                    add(Polynomial._raw(variables, dict(fs_a & negated[j])))
        if ticking and pending:
            deadline.tick(pending, site="cse/kernel_pairs")
        # k-way intersections via prime rectangles of the kernel-cube
        # matrix (pairwise overlap misses bodies shared by 3+ rows only
        # partially; the KCM's rectangles capture them exactly).
        if self.enable_rectangles:
            for body in self._rectangle_bodies(rows):
                add(body)
        return [_KernelCandidate(body) for body in pool.values()]

    def _rectangle_bodies(self, rows: list[tuple]) -> list[Polynomial]:
        from .kcm import KcmRow, KernelCubeMatrix, best_rectangles

        kcm_rows: list[KcmRow] = []
        columns: list[tuple[Exponents, int]] = []
        # Keyed by packed (monomial, coeff) when available — column
        # interning is one dict probe per kernel term, and integer keys
        # hash far cheaper than nested tuples.  First-appearance order
        # (which seeds rectangle growth) is representation-independent.
        column_index: dict[tuple, int] = {}
        incidence: list[set[int]] = []
        for row in rows:
            index, cokernel, kernel = row[0], row[1], row[2]
            pitems = row[5]
            kcm_rows.append(KcmRow(index, cokernel))
            present: set[int] = set()
            if pitems is not None:
                for (pkey, coeff), item in zip(pitems, kernel.terms.items()):
                    cube_key = (pkey, coeff)
                    where = column_index.get(cube_key)
                    if where is None:
                        where = len(columns)
                        column_index[cube_key] = where
                        columns.append(item)
                    present.add(where)
            else:
                for cube in kernel.terms.items():
                    where = column_index.get(cube)
                    if where is None:
                        where = len(columns)
                        column_index[cube] = where
                        columns.append(cube)
                    present.add(where)
            incidence.append(present)
        kcm = KernelCubeMatrix(self.vars, kcm_rows, columns, incidence)
        bodies = []
        for rectangle in best_rectangles(kcm, limit=6):
            if rectangle.num_columns >= 2:
                bodies.append(kcm.column_sum(rectangle.column_indices))
        return bodies

    @staticmethod
    def _sparse(exps: Exponents) -> tuple[tuple[int, int], ...]:
        return tuple((i, e) for i, e in enumerate(exps) if e)

    def _shared_cube(
        self,
        sparse_a: tuple[tuple[int, int], ...],
        sparse_b: tuple[tuple[int, int], ...],
        min_literals: int,
    ) -> Exponents | None:
        """Exponent-wise minimum of two sparse monomials, or None if small."""
        if len(sparse_b) < len(sparse_a):
            sparse_a, sparse_b = sparse_b, sparse_a
        lookup = dict(sparse_b)
        shared_pairs = []
        literals = 0
        for index, exp in sparse_a:
            other = lookup.get(index)
            if other:
                smaller = exp if exp < other else other
                shared_pairs.append((index, smaller))
                literals += smaller
        if literals < min_literals:
            return None
        nvars = len(self.vars)
        out = [0] * nvars
        for index, exp in shared_pairs:
            out[index] = exp
        return tuple(out)

    def _cube_candidates(self) -> list[_CubeCandidate]:
        # Deduplicate before the quadratic pairing: distinct monomials for
        # plain cubes, distinct (|coeff|, monomial) pairs for coefficient
        # cubes.  Sparse exponent pairs keep the inner loop proportional to
        # monomial support, not to the (block-inflated) variable count.
        pool: set[_CubeCandidate] = set()
        monomials: set[Exponents] = set()
        coeff_terms: set[tuple[int, Exponents]] = set()
        for poly in self.polys:
            for exps, coeff in poly.terms.items():
                if mono_literal_count(exps) >= 2:
                    monomials.add(exps)
                if abs(coeff) != 1 and mono_literal_count(exps) >= 1:
                    coeff_terms.add((abs(coeff), exps))
        deadline, stride = _deadline_stride()
        ticking = deadline.enabled
        pending = 0
        sparse_monos = [self._sparse(e) for e in sorted(monomials)]
        for a, b in combinations(sparse_monos, 2):
            if ticking:
                pending += 1
                if pending >= stride:
                    deadline.tick(pending, site="cse/cube_pairs")
                    pending = 0
            shared = self._shared_cube(a, b, 2)
            if shared is not None:
                pool.add(_CubeCandidate(1, shared))
        by_coeff: dict[int, list[Exponents]] = {}
        for coeff, exps in coeff_terms:
            by_coeff.setdefault(coeff, []).append(exps)
        for coeff, group in by_coeff.items():
            if len(group) < 2:
                continue
            sparse_group = [self._sparse(e) for e in sorted(group)]
            for a, b in combinations(sparse_group, 2):
                if ticking:
                    pending += 1
                    if pending >= stride:
                        deadline.tick(pending, site="cse/coeff_cube_pairs")
                        pending = 0
                shared = self._shared_cube(a, b, 1)
                if shared is not None:
                    pool.add(_CubeCandidate(coeff, shared))
        if ticking and pending:
            deadline.tick(pending, site="cse/cube_pairs")
        # Deterministic, padding-invariant order: set iteration would vary
        # with the (reserve-chunk dependent) arity of the exponent tuples,
        # making greedy tie-breaks depend on memory layout.
        return sorted(pool, key=lambda c: (c.coeff, self._sparse(c.exps)))

    # -- kernel candidate matching / application ------------------------

    def _kernel_matches(
        self,
        candidate: _KernelCandidate,
        rows: list[tuple],
        ctx: PackedContext | None = None,
    ) -> list[tuple]:
        """All (poly index, co-kernel, sign, packed co-kernel) occurrences.

        The subset tests against every row dominate the greedy loop; with
        a packed context both sides are frozensets of ``(int, coeff)``
        pairs, so the C-level containment probes hash machine integers
        instead of exponent tuples.  The decisions are identical (packing
        is injective over the sized domain).
        """
        matches: list[tuple] = []
        seen: set[tuple[int, Exponents, int]] = set()
        body_items = candidate.body.terms.items()
        if ctx is not None:
            pack = ctx.pack
            body_set = frozenset((pack(e), c) for e, c in body_items)
            negated = frozenset((p, -c) for p, c in body_set)
            row_set_at = 6
        else:
            body_set = frozenset(body_items)
            negated = frozenset((e, -c) for e, c in body_items)
            row_set_at = 3
        for row in rows:
            term_set = row[row_set_at]
            if body_set <= term_set:
                key = (row[0], row[1], 1)
            elif negated <= term_set:
                key = (row[0], row[1], -1)
            else:
                continue
            if key not in seen:
                seen.add(key)
                matches.append(key + (row[4],))
        return matches

    def _apply_kernel(
        self,
        candidate: _KernelCandidate,
        matches: list[tuple],
    ) -> int:
        """Rewrite occurrences; returns how many were actually applied."""
        used: dict[int, set[Exponents]] = {}
        planned: list[tuple[int, Exponents, int, list[Exponents]]] = []
        for index, cokernel, sign, _ in matches:
            poly = self.polys[index]
            covered = []
            ok = True
            taken = used.setdefault(index, set())
            for exps, coeff in candidate.body.terms.items():
                target = mono_mul(cokernel, exps)
                if target in taken or poly.terms.get(target) != sign * coeff:
                    ok = False
                    break
                covered.append(target)
            if ok:
                taken.update(covered)
                planned.append((index, cokernel, sign, covered))
        if len(planned) < 2:
            return 0
        name, slot, pad = self._claim_slot()
        new_polys = list(self.polys)
        for index, cokernel, sign, covered in planned:
            terms = dict(new_polys[index].terms)
            for target in covered:
                del terms[target + pad]
            full = cokernel + pad
            block_exps = full[:slot] + (1,) + full[slot + 1:]
            total = terms.get(block_exps, 0) + sign
            if total:
                terms[block_exps] = total
            else:
                terms.pop(block_exps, None)
            new_polys[index] = Polynomial._raw(self.vars, terms)
        self.blocks[name] = candidate.body
        self.polys = new_polys
        return len(planned)

    def _kernel_gain(
        self,
        candidate: _KernelCandidate,
        matches: list[tuple],
        ctx: PackedContext | None = None,
        pmaps: list[dict[int, int]] | None = None,
    ) -> int:
        """Exact weighted operators saved by extracting the candidate.

        Per occurrence: the covered terms' products and joining adds
        disappear, replaced by a single ``cokernel * block`` term; the
        block body itself is paid once.  Overlapping occurrences make this
        an optimistic bound — the application step re-checks every term.

        With a packed context the per-term probe is one int add plus a
        packed-dict lookup, and the literal count is read off the packed
        degree field (``mono_literal_count == total degree``).
        """
        body = candidate.body.terms
        saved = 0
        if ctx is not None:
            pack = ctx.pack
            capshift = ctx.capshift
            degree_of = ctx.degree_of
            pbody = [pack(e) for e in body]
            for index, _, sign, cok_p in matches:
                pmap = pmaps[index]
                occurrence = 0
                complete = True
                for pe in pbody:
                    target = cok_p + pe - capshift
                    coeff = pmap.get(target)
                    if coeff is None:
                        complete = False
                        break
                    literals = degree_of(target)
                    if literals > 1:
                        occurrence += (literals - 1) * _MUL_WEIGHT
                    if literals and coeff != 1 and coeff != -1:
                        occurrence += _CMUL_WEIGHT
                if not complete:
                    continue
                occurrence += (len(body) - 1) * _ADD_WEIGHT
                # _term_weight(sign, cokernel * block): |sign| == 1, and the
                # block variable adds one literal — deg(cokernel) muls.
                occurrence -= degree_of(cok_p) * _MUL_WEIGHT
                saved += occurrence
            return saved - _poly_weight(candidate.body)
        for index, cokernel, sign, _ in matches:
            poly = self.polys[index]
            occurrence = 0
            complete = True
            for exps in body:
                target = mono_mul(cokernel, exps)
                coeff = poly.terms.get(target)
                if coeff is None:
                    complete = False
                    break
                occurrence += _term_weight(coeff, target)
            if not complete:
                continue
            occurrence += (len(body) - 1) * _ADD_WEIGHT
            occurrence -= _term_weight(sign, cokernel + (1,))
            saved += occurrence
        return saved - _poly_weight(candidate.body)

    # -- cube candidate matching / application --------------------------

    def _cube_occurrences(self, candidate: _CubeCandidate) -> list[tuple[int, Exponents, int]]:
        """(poly index, term exps, power) for every term the cube divides."""
        out = []
        sparse = self._sparse(candidate.exps)
        for index, poly in enumerate(self.polys):
            for exps, coeff in poly.terms.items():
                power = None
                for i, c in sparse:
                    k = exps[i] // c
                    if k == 0:
                        power = 0
                        break
                    power = k if power is None else min(power, k)
                if not power:
                    continue
                if candidate.coeff != 1:
                    if coeff % candidate.coeff:
                        continue
                    power = min(power, 1)  # the coefficient divides once
                out.append((index, exps, power))
        return out

    def _cube_savings(
        self, candidate: _CubeCandidate, occurrences: list[tuple[int, Exponents, int]]
    ) -> int:
        block_cost = max(
            mono_literal_count(candidate.exps) - 1, 0
        ) * _MUL_WEIGHT + (_CMUL_WEIGHT if candidate.coeff != 1 else 0)
        saved = 0
        for index, exps, power in occurrences:
            coeff = self.polys[index].terms[exps]
            before = _term_weight(coeff, exps)
            new_exps = tuple(
                e - power * c for e, c in zip(exps, candidate.exps)
            ) + (power,)
            new_coeff = coeff // candidate.coeff if candidate.coeff != 1 else coeff
            after = _term_weight(new_coeff, new_exps)
            saved += before - after
        return saved - block_cost

    def _apply_cube(
        self, candidate: _CubeCandidate, occurrences: list[tuple[int, Exponents, int]]
    ) -> int:
        if len(occurrences) < 2:
            return 0
        block_poly = Polynomial(self.vars, {candidate.exps: candidate.coeff})
        name, slot, pad = self._claim_slot()
        by_poly: dict[int, list[tuple[Exponents, int]]] = {}
        for index, exps, power in occurrences:
            by_poly.setdefault(index, []).append((exps, power))
        new_polys = list(self.polys)
        for index, pairs in by_poly.items():
            terms = dict(new_polys[index].terms)
            for exps, power in pairs:
                coeff = terms.pop(exps + pad)
                base = tuple(
                    e - power * c for e, c in zip(exps, candidate.exps)
                ) + pad
                new_exps = base[:slot] + (power,) + base[slot + 1:]
                new_coeff = coeff // candidate.coeff if candidate.coeff != 1 else coeff
                total = terms.get(new_exps, 0) + new_coeff
                if total:
                    terms[new_exps] = total
                else:
                    terms.pop(new_exps, None)
            new_polys[index] = Polynomial._raw(self.vars, terms)
        self.blocks[name] = block_poly
        self.polys = new_polys
        return len(occurrences)

    # -- bookkeeping -----------------------------------------------------

    def _claim_slot(self) -> tuple[str, int, Exponents]:
        """Claim one block-variable column; returns (name, index, key pad).

        When the reserve is exhausted, ``_SLOT_CHUNK`` spare columns are
        appended at once (with their future names pre-assigned, since
        claims are sequential) and every polynomial is re-padded — that is
        the only point where variable tuples change, so polynomials keep
        content-stable identities across most rounds and the kernel
        memo's aligned cache stays hot.  The returned ``pad`` is what a
        caller must append to exponent keys computed *before* the claim
        (empty unless this claim grew the tuple).
        """
        grew = 0
        if self._next_slot >= len(self.vars):
            spare = tuple(
                f"{self.prefix}{self.counter + k + 1}"
                for k in range(self._SLOT_CHUNK)
            )
            chunk_pad = (0,) * self._SLOT_CHUNK
            self.vars = self.vars + spare
            self.polys = [
                Polynomial._raw(
                    self.vars, {e + chunk_pad: c for e, c in p.terms.items()}
                )
                for p in self.polys
            ]
            grew = self._SLOT_CHUNK
        slot = self._next_slot
        self._next_slot += 1
        self.counter += 1
        return self.vars[slot], slot, (0,) * grew

    def _compact(self) -> None:
        """Drop reserved-but-unclaimed trailing columns (all zero)."""
        if self._next_slot >= len(self.vars):
            return
        keep = self._next_slot
        vars_t = self.vars[:keep]
        self.polys = [
            Polynomial._raw(vars_t, {e[:keep]: c for e, c in p.terms.items()})
            for p in self.polys
        ]
        self.vars = vars_t

    # -- the greedy loop --------------------------------------------------

    def run(self) -> CseResult:
        from repro.obs import current_events

        deadline = _current_deadline()
        events = current_events()
        emitting = events.enabled  # hoisted: the greedy loop is hot
        while self.rounds < self.max_rounds:
            deadline.tick(site="cse/round")
            ctx = self._packed_context() if self.enable_kernels else None
            rows = self._kernel_rows(ctx) if self.enable_kernels else []
            best_gain = 0
            best_action = None

            if self.enable_kernels:
                pmaps = None
                if ctx is not None:
                    pmaps = [
                        packed_form(poly, ctx).term_map() for poly in self.polys
                    ]
                for candidate in self._kernel_candidates(rows):
                    matches = self._kernel_matches(candidate, rows, ctx)
                    if len(matches) < 2:
                        continue
                    gain = self._kernel_gain(candidate, matches, ctx, pmaps)
                    if gain > best_gain:
                        best_gain = gain
                        best_action = ("kernel", candidate, matches)

            if self.enable_cubes:
                for candidate in self._cube_candidates():
                    occurrences = self._cube_occurrences(candidate)
                    if len(occurrences) < 2:
                        continue
                    gain = self._cube_savings(candidate, occurrences)
                    if gain > best_gain:
                        best_gain = gain
                        best_action = ("cube", candidate, occurrences)

            if best_action is None:
                break
            kind, candidate, where = best_action
            applied = (
                self._apply_kernel(candidate, where)
                if kind == "kernel"
                else self._apply_cube(candidate, where)
            )
            if not applied:
                break
            if emitting:
                events.emit(
                    "kernel_chosen",
                    kind=kind,
                    gain=best_gain,
                    matches=len(where),
                    round=self.rounds,
                )
            self.rounds += 1
        self._compact()
        return CseResult(self.polys, dict(self.blocks), self.rounds)


def eliminate_common_subexpressions(
    polys: Iterable[Polynomial],
    prefix: str = "_cse",
    start_index: int = 0,
    max_rounds: int = 200,
    enable_kernels: bool = True,
    enable_cubes: bool = True,
    enable_rectangles: bool = True,
) -> CseResult:
    """Run kernel-intersection CSE over a system of polynomials.

    Returns the rewritten polynomials (over the original variables plus
    one fresh variable per extracted block) and the block definitions.
    Rewriting is always exact: substituting every block definition back
    reproduces the input system — tests enforce this invariant.

    The ``enable_*`` switches turn off candidate classes (multi-term
    kernels, single cubes, KCM rectangles) for ablation studies; the full
    extractor is strictly stronger than any restriction.
    """
    from repro.obs import current_tracer

    extractor = _Extractor(
        list(polys),
        prefix,
        start_index,
        max_rounds,
        enable_kernels=enable_kernels,
        enable_cubes=enable_cubes,
        enable_rectangles=enable_rectangles,
    )
    with current_tracer().span("cse/extract") as span:
        result = extractor.run()
        span.count(rounds=result.rounds, blocks=len(result.blocks))
    return result


def expand_blocks(poly: Polynomial, blocks: dict[str, Polynomial]) -> Polynomial:
    """Substitute block definitions (repeatedly) back into a polynomial."""
    current = poly
    # Blocks may reference earlier blocks; substitute until none remain.
    for _ in range(len(blocks) + 1):
        used = set(current.used_vars())
        present = [name for name in blocks if name in used]
        if not present:
            return current.trim()
        current = current.subs({name: blocks[name] for name in present})
    raise RuntimeError("cyclic block definitions")
