"""JSON serialization of systems and decompositions.

A synthesis tool's results must outlive the process: this module
round-trips :class:`~repro.poly.polynomial.Polynomial`,
:class:`~repro.system.PolySystem`, and
:class:`~repro.expr.decomposition.Decomposition` through plain JSON-able
dictionaries (and strings via :func:`dumps`/:func:`loads` helpers).

Formats are versioned with a ``"kind"`` tag; loading validates shape and
re-checks decomposition well-formedness (cycle-free blocks).
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.metrics import Timings
from repro.expr import Decomposition, OpCount
from repro.expr.ast import Add, BlockRef, Const, Expr, Mul, Pow, Var
from repro.obs import Span, TraceSnapshot
from repro.poly import Polynomial
from repro.rings import BitVectorSignature
from repro.system import PolySystem


# ----------------------------------------------------------------------
# Polynomials
# ----------------------------------------------------------------------

def polynomial_to_dict(poly: Polynomial) -> dict[str, Any]:
    return {
        "kind": "polynomial",
        "vars": list(poly.vars),
        "terms": [[list(exps), coeff] for exps, coeff in sorted(poly.terms.items())],
    }


def polynomial_from_dict(data: dict[str, Any]) -> Polynomial:
    if data.get("kind") != "polynomial":
        raise ValueError(f"not a polynomial payload: {data.get('kind')!r}")
    terms = {tuple(exps): int(coeff) for exps, coeff in data["terms"]}
    return Polynomial(tuple(data["vars"]), terms)


# ----------------------------------------------------------------------
# Signatures and systems
# ----------------------------------------------------------------------

def signature_to_dict(signature: BitVectorSignature) -> dict[str, Any]:
    return {
        "kind": "signature",
        "inputs": [[name, width] for name, width in signature.input_widths],
        "output_width": signature.output_width,
    }


def signature_from_dict(data: dict[str, Any]) -> BitVectorSignature:
    if data.get("kind") != "signature":
        raise ValueError(f"not a signature payload: {data.get('kind')!r}")
    return BitVectorSignature(
        tuple((str(n), int(w)) for n, w in data["inputs"]),
        int(data["output_width"]),
    )


def system_to_dict(system: PolySystem) -> dict[str, Any]:
    return {
        "kind": "system",
        "name": system.name,
        "description": system.description,
        "signature": signature_to_dict(system.signature),
        "polys": [polynomial_to_dict(p) for p in system.polys],
    }


def system_from_dict(data: dict[str, Any]) -> PolySystem:
    if data.get("kind") != "system":
        raise ValueError(f"not a system payload: {data.get('kind')!r}")
    return PolySystem(
        name=str(data["name"]),
        polys=tuple(polynomial_from_dict(p) for p in data["polys"]),
        signature=signature_from_dict(data["signature"]),
        description=str(data.get("description", "")),
    )


# ----------------------------------------------------------------------
# Expressions and decompositions
# ----------------------------------------------------------------------

def expr_to_dict(expr: Expr) -> dict[str, Any]:
    if isinstance(expr, Const):
        return {"op": "const", "value": expr.value}
    if isinstance(expr, Var):
        return {"op": "var", "name": expr.name}
    if isinstance(expr, BlockRef):
        return {"op": "block", "name": expr.name}
    if isinstance(expr, Add):
        return {"op": "add", "operands": [expr_to_dict(o) for o in expr.operands]}
    if isinstance(expr, Mul):
        return {"op": "mul", "operands": [expr_to_dict(o) for o in expr.operands]}
    if isinstance(expr, Pow):
        return {"op": "pow", "base": expr_to_dict(expr.base), "exponent": expr.exponent}
    raise TypeError(f"unknown expression node {expr!r}")


def expr_from_dict(data: dict[str, Any]) -> Expr:
    op = data.get("op")
    if op == "const":
        return Const(int(data["value"]))
    if op == "var":
        return Var(str(data["name"]))
    if op == "block":
        return BlockRef(str(data["name"]))
    if op == "add":
        return Add(tuple(expr_from_dict(o) for o in data["operands"]))
    if op == "mul":
        return Mul(tuple(expr_from_dict(o) for o in data["operands"]))
    if op == "pow":
        return Pow(expr_from_dict(data["base"]), int(data["exponent"]))
    raise ValueError(f"unknown expression op {op!r}")


def decomposition_to_dict(decomposition: Decomposition) -> dict[str, Any]:
    return {
        "kind": "decomposition",
        "method": decomposition.method,
        "blocks": {
            name: expr_to_dict(expr) for name, expr in decomposition.blocks.items()
        },
        "outputs": [expr_to_dict(expr) for expr in decomposition.outputs],
    }


def decomposition_from_dict(data: dict[str, Any]) -> Decomposition:
    if data.get("kind") != "decomposition":
        raise ValueError(f"not a decomposition payload: {data.get('kind')!r}")
    decomposition = Decomposition(method=str(data.get("method", "")))
    decomposition.blocks = {
        str(name): expr_from_dict(payload)
        for name, payload in data["blocks"].items()
    }
    decomposition.outputs = [expr_from_dict(o) for o in data["outputs"]]
    # Well-formedness: expanding every output detects dangling references
    # and cycles immediately, not at first use.
    decomposition.to_polynomials()
    return decomposition


# ----------------------------------------------------------------------
# Operator counts and per-phase timings (the engine's metrics payloads)
# ----------------------------------------------------------------------

def op_count_to_dict(count: OpCount) -> dict[str, Any]:
    return {
        "kind": "op-count",
        "mul": count.mul,
        "add": count.add,
        "const_mul": count.const_mul,
    }


def op_count_from_dict(data: dict[str, Any]) -> OpCount:
    if data.get("kind") != "op-count":
        raise ValueError(f"not an op-count payload: {data.get('kind')!r}")
    return OpCount(int(data["mul"]), int(data["add"]), int(data["const_mul"]))


def timings_to_dict(timings: Timings) -> dict[str, Any]:
    return timings.as_dict()


def timings_from_dict(data: dict[str, Any]) -> Timings:
    return Timings.from_dict(data)


# ----------------------------------------------------------------------
# Trace spans (the observability payloads — see :mod:`repro.obs`)
# ----------------------------------------------------------------------

def span_to_dict(span: Span) -> dict[str, Any]:
    return span.to_dict()


def span_from_dict(data: dict[str, Any]) -> Span:
    return Span.from_dict(data)


def trace_to_dict(snapshot: TraceSnapshot) -> dict[str, Any]:
    return snapshot.to_dict()


def trace_from_dict(data: dict[str, Any]) -> TraceSnapshot:
    return TraceSnapshot.from_dict(data)


# ----------------------------------------------------------------------
# String convenience
# ----------------------------------------------------------------------

_SERIALIZERS = {
    Polynomial: polynomial_to_dict,
    PolySystem: system_to_dict,
    BitVectorSignature: signature_to_dict,
    Decomposition: decomposition_to_dict,
    OpCount: op_count_to_dict,
    Timings: timings_to_dict,
    Span: span_to_dict,
    TraceSnapshot: trace_to_dict,
}

_DESERIALIZERS = {
    "polynomial": polynomial_from_dict,
    "system": system_from_dict,
    "signature": signature_from_dict,
    "decomposition": decomposition_from_dict,
    "op-count": op_count_from_dict,
    "timings": timings_from_dict,
    "span": span_from_dict,
    "trace": trace_from_dict,
}


def dumps(obj) -> str:
    """Serialize any supported object to a JSON string."""
    for klass, serializer in _SERIALIZERS.items():
        if isinstance(obj, klass):
            return json.dumps(serializer(obj), sort_keys=True)
    raise TypeError(f"cannot serialize {type(obj).__name__}")


def loads(text: str):
    """Deserialize a JSON string produced by :func:`dumps`."""
    data = json.loads(text)
    kind = data.get("kind")
    if kind not in _DESERIALIZERS:
        raise ValueError(f"unknown payload kind {kind!r}")
    return _DESERIALIZERS[kind](data)
