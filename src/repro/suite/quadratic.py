"""Quadratic (Volterra) filter system (Table 14.3, row "Quad").

Polynomial signal processing (Mathews & Sicuranza [16]) models a
second-order Volterra filter as ``y = sum a_i x_i + sum b_ij x_i x_j``; a
two-tap filter over inputs ``x`` (current sample) and ``y`` (previous
sample) is exactly a bivariate quadratic.  The paper's row lists two
polynomials over 2 variables of degree 2 at m=16.

**Substitution note**: the exact filter taps are not printed in the paper;
we use a two-channel quadratic filter whose channels apply different
integer gains to one *factorable* Volterra kernel
``Q = x^2 + 3xy + 2y^2 = (x + y)(x + 2y)`` plus channel-specific linear
terms.  This is the realistic two-output filter-bank situation and the
exact structure the paper's method targets: the shared kernel hides
behind coefficients (``2Q`` vs ``3Q`` — invisible to coefficient-literal
CSE) and factors into linear blocks (invisible to kernel/co-kernel
factoring).
"""

from __future__ import annotations

from repro.poly import parse_polynomial
from repro.rings import BitVectorSignature
from repro.system import PolySystem


def quadratic_filter_system(width: int = 16) -> PolySystem:
    """Two-channel second-order Volterra filter with a shared kernel."""
    # channel 1: 2*Q + 7(x - y) + 11, channel 2: 3*Q + 5(x + y) + 3
    channel_1 = parse_polynomial(
        "2*x^2 + 6*x*y + 4*y^2 + 7*x - 7*y + 11", variables=("x", "y")
    )
    channel_2 = parse_polynomial(
        "3*x^2 + 9*x*y + 6*y^2 + 5*x + 5*y + 3", variables=("x", "y")
    )
    signature = BitVectorSignature.uniform(("x", "y"), width)
    return PolySystem(
        name="Quad",
        polys=(channel_1, channel_2),
        signature=signature,
        description="two-channel quadratic Volterra filter (Mathews & Sicuranza)",
    )
