"""A heterogeneous-width datapath (exercises non-uniform signatures).

Every Table 14.3 row uses one width for all operands, but the paper's
formulation (Section 14.3.1) is explicitly heterogeneous:
``f: Z_2^n1 x Z_2^n2 x ... -> Z_2^m``.  This extra system keeps that
generality covered end-to-end: an audio-style mixer with an 8-bit gain
``g``, a 4-bit pan position ``p``, and a 16-bit sample ``s``, computing a
pair of quadratic-in-gain channel outputs at 16 bits.  The two channels
share the gain-square and the panned-sample products behind different
coefficients — CCE territory.
"""

from __future__ import annotations

from repro.poly import parse_polynomial
from repro.rings import BitVectorSignature
from repro.system import PolySystem


def mixer_system() -> PolySystem:
    """Two-channel mixer: 8-bit gain x 4-bit pan x 16-bit sample -> 16 bit."""
    left = parse_polynomial(
        "3*g^2*s + 6*g*p*s + 3*p^2*s + 5*s + 9", variables=("g", "p", "s")
    )
    right = parse_polynomial(
        "5*g^2*s + 10*g*p*s + 5*p^2*s + 7*s + 2", variables=("g", "p", "s")
    )
    signature = BitVectorSignature((("g", 8), ("p", 4), ("s", 16)), 16)
    return PolySystem(
        name="Mixer",
        polys=(left, right),
        signature=signature,
        description="heterogeneous-width two-channel mixer (8/4/16 -> 16 bit)",
    )
