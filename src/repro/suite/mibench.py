"""MiBench automotive polynomial kernel (Table 14.3, row "Mibench").

The MiBench automotive suite [12] (basicmath) exercises quadratic
arithmetic over small operands; the paper's row lists 2 polynomials over
3 variables of degree 2 at m=8.

**Substitution note**: MiBench ships C source, not polynomial systems; we
use a weighted-energy kernel of the kind its vehicle-dynamics arithmetic
computes: a squared weighted sum ``E = (a + 2b + 3c)^2`` and a companion
output reusing the scaled energy term, ``4E + 5(a + 2b + 3c) + 7``.  The
linear form behind the squares is exactly what CCE + square-free
factorization + algebraic division recover and what coefficient-literal
kernel CSE cannot (every cube ``a^2, ab, ...`` appears with different
coefficients).
"""

from __future__ import annotations

from repro.poly import parse_polynomial
from repro.rings import BitVectorSignature
from repro.system import PolySystem


def mibench_system(width: int = 8) -> PolySystem:
    """Weighted-energy automotive kernel over 8-bit operands."""
    # (a + 2b + 3c)^2 expanded
    energy = parse_polynomial(
        "a^2 + 4*b^2 + 9*c^2 + 4*a*b + 6*a*c + 12*b*c",
        variables=("a", "b", "c"),
    )
    # 4*(a + 2b + 3c)^2 + 5*(a + 2b + 3c) + 7 expanded
    companion = parse_polynomial(
        "4*a^2 + 16*b^2 + 36*c^2 + 16*a*b + 24*a*c + 48*b*c"
        " + 5*a + 10*b + 15*c + 7",
        variables=("a", "b", "c"),
    )
    signature = BitVectorSignature.uniform(("a", "b", "c"), width)
    return PolySystem(
        name="Mibench",
        polys=(energy, companion),
        signature=signature,
        description="MiBench automotive (basicmath) weighted-energy kernel",
    )
