"""Savitzky-Golay filter polynomial systems (Table 14.3, rows SG *).

Two-dimensional Savitzky-Golay smoothing fits a bivariate polynomial of
degree ``d`` over a ``k x k`` window; evaluating the fitted surface across
the window produces one polynomial per grid position — ``k^2``
polynomials in the two coordinate variables, all of them *shifted copies
of one base form*.  That shifted-copy structure is what gives the
integrated method its leverage on these rows: the shifts expand into
expressions with massive cross-polynomial coefficient and kernel sharing.

**Substitution note** (see DESIGN.md): the paper does not print its exact
SG polynomials, only their characteristics (2 variables, degree, m=16,
9/16/25 polynomials).  We reconstruct the systems from those
characteristics using the classical 1-D Savitzky-Golay quadratic/cubic
smoothing weights ``(-3, 12, 17, 12, -3) / 35`` combined into an integer
bivariate base polynomial; the structure (shifted copies, dense integer
coefficients, matching var/deg/m and polynomial counts) is what drives
the optimization headroom, not the exact weight values.
"""

from __future__ import annotations

from repro.poly import Polynomial
from repro.rings import BitVectorSignature
from repro.system import PolySystem

_X = Polynomial.variable("x", ("x", "y"))
_Y = Polynomial.variable("y", ("x", "y"))


def _base_polynomial(degree: int) -> Polynomial:
    """Integer base surface built in the style of SG smoothing kernels.

    Linear-phase (symmetric) filters place their transfer-function zeros
    in reciprocal pairs, which makes the top-degree form of the fitted
    surface factorable over Z — the degree-2 base uses the quadratic form
    ``(x - y)(x - 3y)`` and the degree-3 base stacks the cubic form
    ``(x - y)(x - 3y)(x + 2y)`` on top.  Shifting a window never changes
    the top-degree homogeneous part, so all ``k^2`` shifted copies share
    it; whether a flow can implement that shared form as a *product of
    linear blocks* (rather than a sum of monomial cubes) is precisely the
    gap between kernel-CSE and the paper's algebraic integration.
    """
    if degree == 2:
        # (x - y)(x - 3y) + 12x + 12y + 17
        quadratic_form = (_X - _Y) * (_X - _Y.scale(3))
        return (
            quadratic_form
            + _X.scale(12)
            + _Y.scale(12)
            + Polynomial.constant(17, ("x", "y"))
        )
    if degree == 3:
        # (x - y)(x - 3y)(x + 2y) stacked on the quadratic base.
        cubic_form = (_X - _Y) * (_X - _Y.scale(3)) * (_X + _Y.scale(2))
        return cubic_form + _base_polynomial(2)
    raise ValueError(f"unsupported Savitzky-Golay degree {degree}")


def savitzky_golay_system(
    window: int, degree: int, width: int = 16
) -> PolySystem:
    """The ``SG <window>X<degree>`` system: ``window^2`` shifted fits."""
    if window < 2:
        raise ValueError(f"window must be at least 2, got {window}")
    base = _base_polynomial(degree)
    polys = []
    for row in range(window):
        for col in range(window):
            shifted = base.subs({"x": _X + row, "y": _Y + col})
            polys.append(shifted.with_vars(("x", "y")))
    signature = BitVectorSignature.uniform(("x", "y"), width)
    return PolySystem(
        name=f"SG {window}X{degree}",
        polys=tuple(polys),
        signature=signature,
        description=(
            f"2-D Savitzky-Golay degree-{degree} fit over a {window}x{window} "
            f"window: {window * window} shifted copies of one bivariate form"
        ),
    )
