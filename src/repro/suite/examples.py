"""The paper's in-text example systems (Tables 14.1, 14.2; Section 14.3.1).

These are printed verbatim in the paper, so the reproduction targets are
*exact operator counts*, not just shapes:

* Table 14.1 — direct 17 MULT / 4 ADD, Horner 15/4, kernel-CSE 12/4,
  proposed 8 MULT / 1 ADD via the block ``x + 3y``;
* Table 14.2 — initial 51 MULT / 21 ADD, final 14 MULT / 12 ADD via
  ``d1 = x + y``, ``d2 = x - y``, ``d3 = x(x-1)y(y-1)``.
"""

from __future__ import annotations

from repro.poly import parse_system
from repro.rings import BitVectorSignature
from repro.system import PolySystem


def table_14_1_system(width: int = 16) -> PolySystem:
    """The motivating system of Table 14.1 / Section 14.4.3."""
    polys = parse_system(
        [
            "x^2 + 6*x*y + 9*y^2",      # (x + 3y)^2
            "4*x*y^2 + 12*y^3",         # 4y^2 (x + 3y)
            "2*x^2*z + 6*x*y*z",        # 2xz (x + 3y)
        ]
    )
    return PolySystem(
        name="Table 14.1",
        polys=tuple(polys),
        signature=BitVectorSignature.uniform(("x", "y", "z"), width),
        description="motivating example: common block x + 3y across P1..P3",
    )


def table_14_2_system(width: int = 16) -> PolySystem:
    """The worked example of Algorithm 7 (Table 14.2), in expanded form.

    ``P3`` and ``P4`` are the expansions of the falling-factorial forms
    the paper prints (``5x(x-1)(x-2)y(y-1) + 3z^2`` etc.).
    """
    polys = parse_system(
        [
            "13*x^2 + 26*x*y + 13*y^2 + 7*x - 7*y + 11",
            "15*x^2 - 30*x*y + 15*y^2 + 11*x + 11*y + 9",
            "5*x^3*y^2 - 5*x^3*y - 15*x^2*y^2 + 15*x^2*y"
            " + 10*x*y^2 - 10*x*y + 3*z^2",
            "3*x^2*y^2 - 3*x^2*y - 3*x*y^2 + 3*x*y + z + 1",
        ]
    )
    return PolySystem(
        name="Table 14.2",
        polys=tuple(polys),
        signature=BitVectorSignature.uniform(("x", "y", "z"), width),
        description="Algorithm 7 worked example: d1=x+y, d2=x-y, d3=x(x-1)y(y-1)",
    )


def section_14_3_1_system(width: int = 16) -> PolySystem:
    """The F, G pair whose canonical forms share Y_k factors (Sec. 14.3.1)."""
    polys = parse_system(
        [
            "4*x^2*y^2 - 4*x^2*y - 4*x*y^2 + 4*x*y + 5*z^2*x - 5*z*x",
            "7*x^2*z^2 - 7*x^2*z - 7*x*z^2 + 7*z*x + 3*y^2*x - 3*y*x",
        ]
    )
    return PolySystem(
        name="Section 14.3.1",
        polys=tuple(polys),
        signature=BitVectorSignature.uniform(("x", "y", "z"), width),
        description="canonical forms expose common Y_k(x_i) building blocks",
    )
