"""Random polynomial-system generation for stress testing.

Parameterized generators used by the property tests and the scaling
studies: unstructured random systems (worst case for every method) and
*structured* random systems that plant the kinds of sharing the paper's
flow is built to find — scaled copies of a hidden kernel, powers of a
hidden linear block, shifted copies — so tests can assert the flow
actually recovers planted structure.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.poly import Polynomial
from repro.rings import BitVectorSignature
from repro.system import PolySystem


def random_polynomial(
    rng: random.Random,
    variables: Sequence[str],
    max_terms: int = 6,
    max_degree: int = 3,
    max_coeff: int = 20,
) -> Polynomial:
    """An unstructured random sparse polynomial (never zero)."""
    variables = tuple(variables)
    terms: dict[tuple[int, ...], int] = {}
    for _ in range(rng.randint(1, max_terms)):
        exps = [0] * len(variables)
        budget = rng.randint(0, max_degree)
        for _ in range(budget):
            exps[rng.randrange(len(variables))] += 1
        coeff = rng.randint(1, max_coeff) * rng.choice((1, -1))
        key = tuple(exps)
        terms[key] = terms.get(key, 0) + coeff
    poly = Polynomial(variables, {e: c for e, c in terms.items() if c})
    if poly.is_zero:
        poly = poly + 1
    return poly


def random_system(
    seed: int,
    num_polys: int = 4,
    variables: Sequence[str] = ("x", "y", "z"),
    width: int = 16,
    **poly_kwargs,
) -> PolySystem:
    """A fully unstructured random system."""
    rng = random.Random(seed)
    polys = tuple(
        random_polynomial(rng, variables, **poly_kwargs) for _ in range(num_polys)
    )
    return PolySystem(
        name=f"random-{seed}",
        polys=polys,
        signature=BitVectorSignature.uniform(tuple(variables), width),
        description="unstructured random system",
    )


def planted_kernel_system(
    seed: int,
    num_polys: int = 4,
    variables: Sequence[str] = ("x", "y"),
    width: int = 16,
) -> tuple[PolySystem, Polynomial]:
    """A system hiding one shared linear block behind coefficients.

    Every polynomial is ``a_i * L^2 + b_i * L + c_i`` for a common random
    linear block ``L`` and per-polynomial integer coefficients — the
    planted structure CCE + factoring + division should recover.  Returns
    the system and the planted block.
    """
    rng = random.Random(seed)
    variables = tuple(variables)
    coeffs = [rng.randint(1, 5) for _ in variables]
    block = Polynomial.zero(variables)
    for var, coeff in zip(variables, coeffs):
        block = block + Polynomial.variable(var, variables).scale(coeff)
    if block.is_zero or block.is_constant:
        block = Polynomial.variable(variables[0], variables)
    polys = []
    for _ in range(num_polys):
        a = rng.randint(2, 9)
        b = rng.randint(2, 9)
        c = rng.randint(0, 30)
        polys.append(block * block * a + block.scale(b) + c)
    system = PolySystem(
        name=f"planted-{seed}",
        polys=tuple(polys),
        signature=BitVectorSignature.uniform(variables, width),
        description="random system with a planted shared linear block",
    )
    return system, block


def shifted_copy_system(
    seed: int,
    num_polys: int = 4,
    width: int = 16,
) -> PolySystem:
    """Shifted copies of one random bivariate quadratic (SG-like)."""
    rng = random.Random(seed)
    base = random_polynomial(rng, ("x", "y"), max_terms=5, max_degree=2)
    while base.total_degree() < 1:
        base = random_polynomial(rng, ("x", "y"), max_terms=5, max_degree=2)
    x = Polynomial.variable("x", ("x", "y"))
    y = Polynomial.variable("y", ("x", "y"))
    polys = []
    for index in range(num_polys):
        polys.append(
            base.subs({"x": x + index, "y": y + (index % 2)}).with_vars(("x", "y"))
        )
    return PolySystem(
        name=f"shifted-{seed}",
        polys=tuple(polys),
        signature=BitVectorSignature.uniform(("x", "y"), width),
        description="shifted copies of one random base form",
    )
