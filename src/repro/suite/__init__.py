"""Benchmark systems: the paper's Table 14.3 rows and in-text examples."""

from .examples import (
    section_14_3_1_system,
    table_14_1_system,
    table_14_2_system,
)
from .mibench import mibench_system
from .mixer import mixer_system
from .quadratic import quadratic_filter_system
from .random_systems import (
    planted_kernel_system,
    random_polynomial,
    random_system,
    shifted_copy_system,
)
from .registry import TABLE_14_3_SYSTEMS, available_systems, get_system
from .savitzky_golay import savitzky_golay_system
from .wavelet import wavelet_system

__all__ = [
    "TABLE_14_3_SYSTEMS",
    "available_systems",
    "get_system",
    "mibench_system",
    "mixer_system",
    "planted_kernel_system",
    "quadratic_filter_system",
    "random_polynomial",
    "random_system",
    "shifted_copy_system",
    "savitzky_golay_system",
    "section_14_3_1_system",
    "table_14_1_system",
    "table_14_2_system",
    "wavelet_system",
]
