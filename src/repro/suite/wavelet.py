"""Multi-variate cosine wavelet (Table 14.3, row "MVCS").

A graphics-pipeline kernel from [13]: a bivariate cosine wavelet
approximated by a degree-3 polynomial in the two texture coordinates at
m=16 (one polynomial).

**Substitution note**: the exact Taylor scaling in [13] is not reproduced
in the paper; we use an integer-scaled degree-3 approximation whose
antisymmetric structure (``(x-y)``-dominated, as a cosine difference
wavelet has) is reachable by the paper's algebraic division but opaque to
kernel-only factoring — matching the reported 28.4% area gap for this
row.
"""

from __future__ import annotations

from repro.poly import parse_polynomial
from repro.rings import BitVectorSignature
from repro.system import PolySystem


def wavelet_system(width: int = 16) -> PolySystem:
    """Degree-3 bivariate cosine-wavelet approximation."""
    # 2(x-y)^3 + 9(x-y)^2 + 12(x-y) + 4, expanded: the truncated series of
    # the difference-coordinate wavelet with integer-scaled coefficients.
    poly = parse_polynomial(
        "2*x^3 - 6*x^2*y + 6*x*y^2 - 2*y^3"
        " + 9*x^2 - 18*x*y + 9*y^2 + 12*x - 12*y + 4",
        variables=("x", "y"),
    )
    signature = BitVectorSignature.uniform(("x", "y"), width)
    return PolySystem(
        name="MVCS",
        polys=(poly,),
        signature=signature,
        description="multivariate cosine wavelet (graphics), degree-3 bivariate",
    )
