"""Name -> PolySystem registry used by benchmarks, examples, and tests."""

from __future__ import annotations

from typing import Callable

from repro.system import PolySystem

from .examples import section_14_3_1_system, table_14_1_system, table_14_2_system
from .mibench import mibench_system
from .mixer import mixer_system
from .quadratic import quadratic_filter_system
from .savitzky_golay import savitzky_golay_system
from .wavelet import wavelet_system

_BUILDERS: dict[str, Callable[[], PolySystem]] = {
    "SG 3X2": lambda: savitzky_golay_system(3, 2),
    "SG 4X2": lambda: savitzky_golay_system(4, 2),
    "SG 4X3": lambda: savitzky_golay_system(4, 3),
    "SG 5X2": lambda: savitzky_golay_system(5, 2),
    "SG 5X3": lambda: savitzky_golay_system(5, 3),
    "Quad": quadratic_filter_system,
    "Mibench": mibench_system,
    "MVCS": wavelet_system,
    "Mixer": mixer_system,
    "Table 14.1": table_14_1_system,
    "Table 14.2": table_14_2_system,
    "Section 14.3.1": section_14_3_1_system,
}

#: The eight rows of the paper's Table 14.3, in order.
TABLE_14_3_SYSTEMS: tuple[str, ...] = (
    "SG 3X2",
    "SG 4X2",
    "SG 4X3",
    "SG 5X2",
    "SG 5X3",
    "Quad",
    "Mibench",
    "MVCS",
)


def get_system(name: str) -> PolySystem:
    """Build a benchmark system by its Table 14.3 name."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        known = ", ".join(sorted(_BUILDERS))
        raise KeyError(f"unknown system {name!r}; known: {known}") from None
    return builder()


def available_systems() -> tuple[str, ...]:
    """All registered system names."""
    return tuple(_BUILDERS)
