"""Deterministic text formatting for polynomials.

Terms are printed in descending graded-lexicographic order, so equal
polynomials always print identically — useful both for human inspection
and for golden-output tests.  The syntax round-trips through
:mod:`repro.poly.parser`.
"""

from __future__ import annotations

from .monomial import Exponents
from .orderings import grlex_key


def format_monomial(exponents: Exponents, variables: tuple[str, ...]) -> str:
    """Render an exponent tuple as ``x^2*y`` (empty string for the unit)."""
    parts = []
    for var, e in zip(variables, exponents):
        if e == 0:
            continue
        if e == 1:
            parts.append(var)
        else:
            parts.append(f"{var}^{e}")
    return "*".join(parts)


def format_term(coeff: int, exponents: Exponents, variables: tuple[str, ...]) -> str:
    """Render one signed term, e.g. ``-3*x*y^2`` or ``7``."""
    mono = format_monomial(exponents, variables)
    if not mono:
        return str(coeff)
    if coeff == 1:
        return mono
    if coeff == -1:
        return f"-{mono}"
    return f"{coeff}*{mono}"


def format_polynomial(poly) -> str:
    """Render a :class:`~repro.poly.polynomial.Polynomial` as text."""
    if poly.is_zero:
        return "0"
    pieces: list[str] = []
    for exps, coeff in poly.sorted_terms(grlex_key):
        text = format_term(coeff, exps, poly.vars)
        if not pieces:
            pieces.append(text)
        elif text.startswith("-"):
            pieces.append(f"- {text[1:]}")
        else:
            pieces.append(f"+ {text}")
    return " ".join(pieces)
