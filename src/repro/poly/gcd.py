"""Greatest common divisors of multivariate integer polynomials.

Two cooperating algorithms:

* :func:`poly_gcd` — the public entry point.  It first tries the heuristic
  integer-evaluation GCD (GCDHEU of Char, Geddes & Gonnet — the same fast
  path Maple uses), whose candidate answers are *verified* by exact
  division, then falls back to the always-correct primitive PRS recursion.
* :func:`_gcd_prs` — primitive polynomial remainder sequence on a chosen
  main variable with pseudo-division, recursing on the coefficients.

GCDs are normalized to a positive leading coefficient (grevlex), so
``poly_gcd(p, q)`` is deterministic and ``poly_gcd(p, p) == +-p``'s
positive associate.
"""

from __future__ import annotations

from math import gcd as int_gcd
from typing import Iterable

from .division import exact_divide, pseudo_divmod
from .polynomial import Polynomial

_HEURISTIC_ATTEMPTS = 6
_HEURISTIC_XI_CAP = 1 << 2000  # bail out long before bignums get absurd


def _normalize_sign(p: Polynomial) -> Polynomial:
    """Flip the sign so the leading grevlex coefficient is positive."""
    if not p.is_zero and p.leading_coeff("grevlex") < 0:
        return -p
    return p


def content_wrt(p: Polynomial, var: str) -> Polynomial:
    """Polynomial content of ``p`` viewed as univariate in ``var``.

    The GCD of the polynomial coefficients of the powers of ``var``.
    """
    coeffs = list(p.as_univariate(var).values())
    return poly_gcd_many(coeffs)


def primitive_wrt(p: Polynomial, var: str) -> Polynomial:
    """Primitive part of ``p`` with respect to ``var`` (``p / content_wrt``)."""
    cont = content_wrt(p, var)
    if cont.is_one:
        return p
    quotient = exact_divide(p, cont.with_vars(p.vars) if cont.vars != p.vars else cont)
    if quotient is None:
        raise RuntimeError("content does not divide its polynomial (internal error)")
    return quotient


def _gcd_prs(a: Polynomial, b: Polynomial, var: str) -> Polynomial:
    """Primitive PRS GCD of two polynomials, both actually involving ``var``."""
    cont_a = content_wrt(a, var)
    cont_b = content_wrt(b, var)
    cont_gcd = poly_gcd(cont_a, cont_b)
    f = primitive_wrt(a, var)
    g = primitive_wrt(b, var)
    if f.degree(var) < g.degree(var):
        f, g = g, f
    while not g.is_zero and g.degree(var) >= 1:
        _, remainder, _ = pseudo_divmod(f, g, var)
        f, g = g, remainder if remainder.is_zero else primitive_wrt(remainder, var)
    if g.is_zero:
        prim = f
    else:
        # Remainder dropped below degree 1 in var but is non-zero: the
        # primitive GCD in var is trivial.
        prim = Polynomial.constant(1, f.vars)
    return _normalize_sign(cont_gcd * prim)


def _eval_var(p: Polynomial, var: str, value: int) -> Polynomial:
    """Substitute an integer for one variable."""
    return p.subs({var: value})


def _reconstruct(gamma: Polynomial, xi: int, var: str) -> Polynomial:
    """Rebuild a polynomial in ``var`` from its balanced ``xi``-adic image."""
    digits: list[Polynomial] = []
    current = gamma
    while not current.is_zero:
        digit = current.map_coeffs(lambda c: _smod(c, xi))
        digits.append(digit)
        current = (current - digit).map_coeffs(lambda c: c // xi)
    x = Polynomial.variable(var)
    result = Polynomial.zero((var,))
    for power, digit in enumerate(digits):
        result = result + digit * x ** power
    return result


def _smod(value: int, modulus: int) -> int:
    """Symmetric (balanced) remainder in ``(-modulus/2, modulus/2]``."""
    r = value % modulus
    if r > modulus // 2:
        r -= modulus
    return r


def _gcd_heuristic(a: Polynomial, b: Polynomial) -> Polynomial | None:
    """GCDHEU: evaluate, take GCD of images, lift, verify.  None on failure."""
    used = tuple(v for v in a.vars if v in set(a.used_vars()) | set(b.used_vars()))
    if not used:
        return Polynomial.constant(int_gcd(a.constant_term, b.constant_term))
    var = used[0]
    bound = max(a.max_coeff_magnitude(), b.max_coeff_magnitude())
    xi = 2 * bound + 29
    for _ in range(_HEURISTIC_ATTEMPTS):
        if xi > _HEURISTIC_XI_CAP:
            return None
        image_a = _eval_var(a, var, xi)
        image_b = _eval_var(b, var, xi)
        if image_a.is_zero or image_b.is_zero:
            xi = xi * 73 // 32 + 1
            continue
        gamma = _gcd_heuristic(image_a, image_b)
        if gamma is not None:
            # Do NOT strip integer content here: in recursive calls the
            # content of the inner GCD carries the xi-adic digits of the
            # outer variable's coefficients.
            candidate = _reconstruct(gamma, xi, var)
            if not candidate.is_zero:
                if exact_divide(a, candidate) is not None and exact_divide(b, candidate) is not None:
                    return candidate
        xi = xi * 73 // 32 + 1
    return None


def poly_gcd(a: Polynomial, b: Polynomial) -> Polynomial:
    """GCD of two integer polynomials (positive leading coefficient)."""
    a, b = Polynomial.unify(a, b)
    if a.is_zero:
        return _normalize_sign(b)
    if b.is_zero:
        return _normalize_sign(a)

    content_a = abs(a.content())
    content_b = abs(b.content())
    common_content = int_gcd(content_a, content_b)
    pa = a.primitive_part()
    pb = b.primitive_part()

    if pa.is_constant or pb.is_constant:
        return Polynomial.constant(common_content, a.vars)

    used_a = set(pa.used_vars())
    used_b = set(pb.used_vars())
    shared = [v for v in a.vars if v in (used_a & used_b)]
    if not shared:
        return Polynomial.constant(common_content, a.vars)

    scaled_gcd: Polynomial | None = None
    # Fast path: heuristic GCD with verified answers.
    heuristic = _gcd_heuristic(pa, pb)
    if heuristic is not None:
        scaled_gcd = _normalize_sign(heuristic.with_vars(a.vars))
    if scaled_gcd is None:
        scaled_gcd = _gcd_prs(pa, pb, shared[0]).with_vars(a.vars)
    return _normalize_sign(scaled_gcd.scale(common_content))


def poly_gcd_many(polys: Iterable[Polynomial]) -> Polynomial:
    """GCD of a collection of polynomials (zero for an empty collection)."""
    acc: Polynomial | None = None
    for p in polys:
        acc = p if acc is None else poly_gcd(acc, p)
        if acc.is_one:
            return acc
    if acc is None:
        return Polynomial.zero()
    return _normalize_sign(acc)


def poly_lcm(a: Polynomial, b: Polynomial) -> Polynomial:
    """Least common multiple: ``a*b / gcd(a, b)`` (zero when either is zero)."""
    if a.is_zero or b.is_zero:
        return Polynomial.zero(a.vars)
    g = poly_gcd(a, b)
    quotient = exact_divide(a * b, g)
    if quotient is None:
        raise RuntimeError("gcd does not divide product (internal error)")
    return _normalize_sign(quotient)


def coprime(a: Polynomial, b: Polynomial) -> bool:
    """True when ``gcd(a, b)`` is a non-zero constant."""
    g = poly_gcd(a, b)
    return g.is_constant and not g.is_zero
