"""Packed-monomial fast path: one machine integer per monomial.

The division algorithm's inner loop is dominated by tuple traffic —
``mono_mul`` allocates a fresh exponent tuple per divisor term per
reduction step, and picking the next leading term re-derives a grevlex
key over the whole work set.  Packing a monomial into a single integer
turns all three hot operations into plain int arithmetic:

* **multiply** — integer addition (exponent fields add independently),
* **divisibility** — the classic guard-bit trick: with a spare high bit
  per field, ``((a | G) - b) & G == G`` iff every field of ``b`` is at
  most the corresponding field of ``a`` (a too-large field borrows its
  guard bit away, and the guard bits stop borrows from rippling across
  fields),
* **grevlex comparison** — the fields are laid out so that the packed
  integers themselves order *inversely* to grevlex, which is exactly
  what a ``heapq`` min-heap wants for popping the leading term.

Layout (most significant first)::

    [ cap - total_degree | e_{n-1} | e_{n-2} | ... | e_0 ]

each field ``width`` bits wide.  Comparing two packed values compares
``(cap - deg, e_{n-1}, ..., e_0)`` lexicographically; the *smaller*
packed value is the grevlex-*larger* monomial (higher degree first,
then smaller trailing exponents — the grevlex tie-break).  Because the
degree field participates, packing is injective and packed values are
valid dict keys.

The encoding is only valid while every exponent (and the total degree)
stays below ``2**(width - 1)``; :class:`PackedContext` is sized from the
operands' total degrees, which bounds every intermediate monomial of a
graded-order division.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from .monomial import Exponents


class PackedContext:
    """Packing parameters for a fixed variable count and degree bound."""

    __slots__ = ("nvars", "width", "cap", "guards", "lowmask", "capshift")

    _cache: dict[tuple[int, int], "PackedContext"] = {}

    @classmethod
    def get(cls, nvars: int, max_degree: int) -> "PackedContext":
        """Shared context for ``(nvars, max_degree)``.

        Division calls cluster heavily on a few shapes (same system, same
        divisor pool), and building the guard mask is linear in the
        variable count — worth a dict probe.  Contexts are immutable in
        practice, so sharing is safe.
        """
        key = (nvars, max_degree)
        ctx = cls._cache.get(key)
        if ctx is None:
            if len(cls._cache) > 1024:
                cls._cache.clear()
            ctx = cls._cache[key] = cls(nvars, max_degree)
        return ctx

    def __init__(self, nvars: int, max_degree: int) -> None:
        if max_degree < 1:
            max_degree = 1
        self.nvars = nvars
        # One spare (guard) bit of headroom per field: values < 2**(width-1).
        self.width = max_degree.bit_length() + 1
        self.cap = max_degree
        width = self.width
        guard_bit = 1 << (width - 1)
        guards = 0
        for i in range(nvars):
            guards |= guard_bit << (i * width)
        self.guards = guards
        self.lowmask = (1 << (nvars * width)) - 1
        # Degree field sits above the exponent fields; multiplying two
        # packed monomials adds their ``cap - deg`` fields, so one extra
        # ``cap`` must be subtracted back out (see :meth:`mul`).
        self.capshift = self.cap << (nvars * width)

    # -- conversions -----------------------------------------------------

    def pack(self, exps: Exponents) -> int:
        """Pack an exponent tuple (grevlex-inverse ordered integer)."""
        width = self.width
        total = 0
        acc = self.cap
        for e in reversed(exps):
            total += e
            acc = (acc << width) | e
        # Wait until all exponents are shifted in, then fix the top field.
        return acc - (total << (self.nvars * width))

    def unpack(self, packed: int) -> Exponents:
        """Inverse of :meth:`pack`."""
        width = self.width
        mask = (1 << width) - 1
        return tuple(
            (packed >> (i * width)) & mask for i in range(self.nvars)
        )

    def pack_terms(self, terms: Iterable[Tuple[Exponents, int]]) -> dict[int, int]:
        """Pack a term mapping's keys (coefficients pass through)."""
        return {self.pack(exps): coeff for exps, coeff in terms}

    # -- arithmetic ------------------------------------------------------

    def mul(self, a: int, b: int) -> int:
        """Packed product ``a * b`` (fields add; degree field re-based)."""
        return a + b - self.capshift

    def div(self, a: int, b: int) -> int:
        """Packed quotient ``a / b``; only valid when ``b`` divides ``a``."""
        return a - b + self.capshift

    def divides(self, b: int, a: int) -> bool:
        """True when monomial ``b`` divides monomial ``a`` field-wise."""
        guards = self.guards
        return (
            ((a & self.lowmask) | guards) - (b & self.lowmask)
        ) & guards == guards

    def fits(self, *degrees: int) -> bool:
        """Can monomials of these total degrees be packed losslessly?"""
        return all(d <= self.cap for d in degrees)
