"""Packed-monomial fast path: one machine integer per monomial.

The division algorithm's inner loop is dominated by tuple traffic —
``mono_mul`` allocates a fresh exponent tuple per divisor term per
reduction step, and picking the next leading term re-derives a grevlex
key over the whole work set.  Packing a monomial into a single integer
turns all three hot operations into plain int arithmetic:

* **multiply** — integer addition (exponent fields add independently),
* **divisibility** — the classic guard-bit trick: with a spare high bit
  per field, ``((a | G) - b) & G == G`` iff every field of ``b`` is at
  most the corresponding field of ``a`` (a too-large field borrows its
  guard bit away, and the guard bits stop borrows from rippling across
  fields),
* **grevlex comparison** — the fields are laid out so that the packed
  integers themselves order *inversely* to grevlex, which is exactly
  what a ``heapq`` min-heap wants for popping the leading term.

Layout (most significant first)::

    [ cap - total_degree | e_{n-1} | e_{n-2} | ... | e_0 ]

each field ``width`` bits wide.  Comparing two packed values compares
``(cap - deg, e_{n-1}, ..., e_0)`` lexicographically; the *smaller*
packed value is the grevlex-*larger* monomial (higher degree first,
then smaller trailing exponents — the grevlex tie-break).  Because the
degree field participates, packing is injective and packed values are
valid dict keys.

The encoding is only valid while every exponent (and the total degree)
stays below ``2**(width - 1)``.  Division only ever shrinks monomials,
so sizing a context from the operands' total degrees suffices there;
CSE *multiplies* monomials (co-kernel times body term), so its contexts
must be sized from the **product** degree bound — see
:meth:`PackedContext.for_degrees`, which also applies the overflow
guard.  Whenever a context cannot be built (or ``REPRO_PACKED=0`` turns
the fast path off), every consumer falls back to the reference
exponent-tuple implementation; the two paths produce byte-identical
results and the differential tests in ``tests/poly`` pin that.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import Iterable, Tuple

from .monomial import Exponents

#: Hard ceiling on the packed-integer width.  Beyond this the "one
#: machine integer" premise is gone (CPython big-int limbs dominate) and
#: the tuple path is no slower — ``for_degrees`` refuses and callers
#: fall back.
_MAX_PACKED_BITS = 1024

#: ``REPRO_PACKED`` values that disable the fast path (same falsy
#: grammar as the observability toggles); unset or anything else keeps
#: it on.
_FALSY = {"0", "false", "off", "no", "none", "disabled"}

#: Programmatic override (tests / harnesses): ``True``/``False`` force
#: the decision, ``None`` defers to the environment.
_FORCED: bool | None = None


def packed_enabled() -> bool:
    """Is the packed-monomial fast path enabled?

    ``REPRO_PACKED=0`` (or any falsy spelling) forces every consumer
    onto the reference tuple implementation — the escape hatch CI's
    fault-smoke job exercises.  Checked once per outer operation, never
    per term, so the environment read stays off the hot path.
    """
    if _FORCED is not None:
        return _FORCED
    return os.environ.get("REPRO_PACKED", "").strip().lower() not in _FALSY


def set_packed_enabled(value: bool | None) -> None:
    """Force the fast path on/off (``None`` restores the env decision)."""
    global _FORCED
    _FORCED = value


class PackedContext:
    """Packing parameters for a fixed variable count and degree bound."""

    __slots__ = (
        "nvars", "width", "cap", "guards", "lowmask", "capshift", "degshift"
    )

    #: Interned contexts, most-recently-used last.  Guarded by
    #: ``_cache_lock``: the synthesis service probes this from worker
    #: and heartbeat threads concurrently, and eviction is bounded-LRU
    #: (hot shapes about to be reused survive; only the coldest entry
    #: is dropped).
    _cache: "OrderedDict[tuple[int, int], PackedContext]" = OrderedDict()
    _cache_lock = threading.Lock()
    _CACHE_MAX = 512

    #: ``for_degrees`` result memo, keyed ``(nvars, summed degree bound)``.
    #: The candidate-division loops size a context per (dividend, divisor)
    #: pair — hundreds of thousands of calls that hit a handful of
    #: shapes, so the sizing arithmetic and the LRU probe are skipped on
    #: repeats.  Values may be ``None`` (doesn't fit).  Reads are lock-free
    #: (CPython dict reads are atomic); writes share ``_cache_lock``.
    #: Derived data only — wholesale clearing just re-derives a few keys.
    _sized: "dict[tuple[int, int], PackedContext | None]" = {}
    _SIZED_MAX = 4096

    @classmethod
    def get(cls, nvars: int, max_degree: int) -> "PackedContext":
        """Shared context for ``(nvars, max_degree)``.

        Division calls cluster heavily on a few shapes (same system, same
        divisor pool), and building the guard mask is linear in the
        variable count — worth a dict probe.  Contexts are immutable in
        practice, so sharing is safe.
        """
        key = (nvars, max_degree)
        cache = cls._cache
        with cls._cache_lock:
            ctx = cache.get(key)
            if ctx is not None:
                cache.move_to_end(key)
                return ctx
        ctx = cls(nvars, max_degree)
        with cls._cache_lock:
            existing = cache.get(key)
            if existing is not None:
                cache.move_to_end(key)
                return existing
            cache[key] = ctx
            while len(cache) > cls._CACHE_MAX:
                cache.popitem(last=False)
        return ctx

    @classmethod
    def for_degrees(cls, nvars: int, *degrees: int) -> "PackedContext | None":
        """Context sized for *products* of monomials with these degree bounds.

        Division only ever shrinks monomials, so one operand bound is
        enough there; CSE multiplies a co-kernel by a body term, and an
        undersized context would silently alias distinct monomials (the
        degree field underflows into a valid key).  Summing the bounds
        makes every reachable product packable.  The cap is rounded up
        to a power of two so nearby shapes share one interned context
        (and the per-polynomial pack memos stay hot); returns ``None``
        when the packed integer would exceed the overflow guard, which
        tells the caller to use the tuple fallback.
        """
        total = 0
        for d in degrees:
            if d > 0:
                total += d
        key = (nvars, total)
        hit = cls._sized.get(key, False)
        if hit is not False:
            return hit
        cap = 1 << max(total.bit_length(), 1)
        width = cap.bit_length() + 1
        if (nvars + 1) * width > _MAX_PACKED_BITS:
            ctx = None
        else:
            ctx = cls.get(nvars, cap)
        with cls._cache_lock:
            if len(cls._sized) >= cls._SIZED_MAX:
                cls._sized.clear()
            cls._sized[key] = ctx
        return ctx

    def __init__(self, nvars: int, max_degree: int) -> None:
        if max_degree < 1:
            max_degree = 1
        self.nvars = nvars
        # One spare (guard) bit of headroom per field: values < 2**(width-1).
        self.width = max_degree.bit_length() + 1
        self.cap = max_degree
        width = self.width
        guard_bit = 1 << (width - 1)
        guards = 0
        for i in range(nvars):
            guards |= guard_bit << (i * width)
        self.guards = guards
        self.lowmask = (1 << (nvars * width)) - 1
        # Degree field sits above the exponent fields; multiplying two
        # packed monomials adds their ``cap - deg`` fields, so one extra
        # ``cap`` must be subtracted back out (see :meth:`mul`).
        self.degshift = nvars * width
        self.capshift = self.cap << self.degshift

    # -- conversions -----------------------------------------------------

    def pack(self, exps: Exponents) -> int:
        """Pack an exponent tuple (grevlex-inverse ordered integer)."""
        width = self.width
        total = 0
        acc = self.cap
        for e in reversed(exps):
            total += e
            acc = (acc << width) | e
        # Wait until all exponents are shifted in, then fix the top field.
        return acc - (total << (self.nvars * width))

    def unpack(self, packed: int) -> Exponents:
        """Inverse of :meth:`pack`."""
        width = self.width
        mask = (1 << width) - 1
        return tuple(
            (packed >> (i * width)) & mask for i in range(self.nvars)
        )

    def pack_terms(self, terms: Iterable[Tuple[Exponents, int]]) -> dict[int, int]:
        """Pack a term mapping's keys (coefficients pass through)."""
        return {self.pack(exps): coeff for exps, coeff in terms}

    # -- arithmetic ------------------------------------------------------

    def mul(self, a: int, b: int) -> int:
        """Packed product ``a * b`` (fields add; degree field re-based)."""
        return a + b - self.capshift

    def div(self, a: int, b: int) -> int:
        """Packed quotient ``a / b``; only valid when ``b`` divides ``a``."""
        return a - b + self.capshift

    def divides(self, b: int, a: int) -> bool:
        """True when monomial ``b`` divides monomial ``a`` field-wise."""
        guards = self.guards
        return (
            ((a & self.lowmask) | guards) - (b & self.lowmask)
        ) & guards == guards

    def degree_of(self, packed: int) -> int:
        """Total degree of a packed monomial (read off the top field)."""
        return self.cap - (packed >> self.degshift)

    def exponent_of(self, packed: int, index: int) -> int:
        """One variable's exponent (field extraction)."""
        return (packed >> (index * self.width)) & ((1 << self.width) - 1)

    def unit(self, index: int) -> int:
        """The packed monomial ``x_index`` (degree one, one field set)."""
        return ((self.cap - 1) << self.degshift) | (1 << (index * self.width))

    def exps_gcd(self, a: int, b: int) -> int:
        """Field-wise minimum of two *exponent-only* values (no degree field).

        The guard-bit comparison marks every field where ``a >= b``;
        expanding each mark to a full value mask selects ``b`` there and
        ``a`` elsewhere.  Inputs and output carry only the low
        ``nvars * width`` bits — re-attach the degree field with
        :meth:`with_degree_field` before mixing with packed monomials.
        """
        guards = self.guards
        d = ((a | guards) - b) & guards
        m = d - (d >> (self.width - 1))
        return (b & m) | (a & ~m & self.lowmask)

    def with_degree_field(self, exps_bits: int) -> int:
        """Promote exponent-only bits to a full packed monomial."""
        width = self.width
        mask = (1 << width) - 1
        total = 0
        for i in range(self.nvars):
            total += (exps_bits >> (i * width)) & mask
        return ((self.cap - total) << self.degshift) | exps_bits

    def fits(self, *degrees: int) -> bool:
        """Can monomials of these total degrees be packed losslessly?"""
        return all(d <= self.cap for d in degrees)


def packed_context_cache_size() -> int:
    """Interned :class:`PackedContext` entries currently cached."""
    with PackedContext._cache_lock:
        return len(PackedContext._cache)


def clear_packed_context_cache() -> None:
    """Drop every interned context (cold-run benchmarks start here)."""
    with PackedContext._cache_lock:
        PackedContext._cache.clear()
        PackedContext._sized.clear()


class PackedPoly:
    """Array-backed packed term store: parallel key/coefficient lists.

    The boundary representation of the packed fast path: ``keys[i]`` is
    the packed monomial of the ``i``-th term (source order preserved —
    insertion order leaks into greedy tie-breaks downstream, so order
    fidelity is part of the contract), ``coeffs[i]`` its integer
    coefficient.  Immutable by convention; the memoized instances
    returned by :func:`packed_form` are shared across callers.
    """

    __slots__ = ("ctx", "keys", "coeffs", "_map", "_lr")

    def __init__(self, ctx: PackedContext, keys: list[int], coeffs: list[int]):
        self.ctx = ctx
        self.keys = keys
        self.coeffs = coeffs
        self._map: dict[int, int] | None = None
        self._lr: tuple[int, int, list[tuple[int, int]]] | None = None

    @classmethod
    def from_terms(
        cls, ctx: PackedContext, terms: Iterable[Tuple[Exponents, int]]
    ) -> "PackedPoly":
        """Pack ``(exponents, coeff)`` pairs, preserving their order."""
        pack = ctx.pack
        keys: list[int] = []
        coeffs: list[int] = []
        for exps, coeff in terms:
            keys.append(pack(exps))
            coeffs.append(coeff)
        return cls(ctx, keys, coeffs)

    @classmethod
    def from_polynomial(cls, poly, ctx: PackedContext) -> "PackedPoly":
        """Pack a :class:`~repro.poly.polynomial.Polynomial`'s terms."""
        return cls.from_terms(ctx, poly.terms.items())

    def to_terms(self) -> list[Tuple[Exponents, int]]:
        """Tuple round-trip: ``(exponents, coeff)`` pairs in stored order."""
        unpack = self.ctx.unpack
        return [(unpack(k), c) for k, c in zip(self.keys, self.coeffs)]

    def to_term_dict(self) -> dict[Exponents, int]:
        """Tuple round-trip as a term mapping (stored order preserved)."""
        unpack = self.ctx.unpack
        return {unpack(k): c for k, c in zip(self.keys, self.coeffs)}

    def term_map(self) -> dict[int, int]:
        """Packed-key -> coefficient dict (built lazily, then shared).

        Callers must treat the result as read-only; consumers that
        reduce in place (the division core) copy it first.
        """
        mapping = self._map
        if mapping is None:
            mapping = self._map = dict(zip(self.keys, self.coeffs))
        return mapping

    def __len__(self) -> int:
        return len(self.keys)

    def leading(self) -> Tuple[int, int]:
        """Grevlex-leading ``(packed key, coeff)`` (min packed value)."""
        if not self.keys:
            raise ValueError("zero polynomial has no leading term")
        lead = min(self.keys)
        return lead, self.term_map()[lead]

    def lead_rest(self) -> tuple[int, int, list[tuple[int, int]]]:
        """(lead key, lead coeff, non-leading items) — the division view.

        Memoized: the candidate loops reduce by the same divisor
        thousands of times, and this instance is itself shared through
        the :func:`packed_form` memo.
        """
        lr = self._lr
        if lr is None:
            dmap = self.term_map()
            lead = min(dmap)
            lr = self._lr = (
                lead,
                dmap[lead],
                [(p, c) for p, c in dmap.items() if p != lead],
            )
        return lr

    def total_degree(self) -> int:
        """Maximum total degree over the stored terms; -1 when empty."""
        if not self.keys:
            return -1
        return self.ctx.degree_of(min(self.keys))


def packed_form(poly, ctx: PackedContext) -> PackedPoly:
    """Memoized :class:`PackedPoly` of a polynomial under a context.

    The division/CSE hot paths pack the same divisor and dividend
    thousands of times (the candidate loops probe one ground polynomial
    against a whole divisor pool); the packing is cached on the
    polynomial instance, keyed by the context's shape.  ``poly.vars``
    must align with ``ctx.nvars`` and every term must fit — callers
    size the context first (:meth:`PackedContext.for_degrees`).
    """
    cache = poly._pk
    key = (ctx.nvars, ctx.cap)
    if cache is None:
        cache = poly._pk = {}
    else:
        hit = cache.get(key)
        if hit is not None:
            return hit
    packed = PackedPoly.from_polynomial(poly, ctx)
    cache[key] = packed
    return packed
