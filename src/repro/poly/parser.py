"""Recursive-descent parser for polynomial expressions.

Accepts the ASCII syntax used throughout the paper and this repository::

    4*x^2*y - 3*x + 7
    (x + 3*y)^2
    5x(x-1)(x-2)y(y-1) + 3z^2        # implicit multiplication is allowed

Grammar (whitespace insignificant)::

    expr    := term (('+' | '-') term)*
    term    := factor (('*')? factor)*          # adjacency multiplies
    factor  := base ('^' | '**') integer | base
    base    := integer | identifier | '(' expr ')' | ('+'|'-') factor

Exponents must be non-negative integer literals; division is deliberately
not part of the input language (algebraic division is an *algorithm* here,
not a syntax).
"""

from __future__ import annotations

import re
from typing import Iterable

from .polynomial import Polynomial

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<int>\d+)|(?P<name>[A-Za-z_][A-Za-z_0-9]*)|(?P<pow>\*\*|\^)"
    r"|(?P<op>[-+*()]))"
)


class PolynomialSyntaxError(ValueError):
    """Raised when polynomial text cannot be parsed."""


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            snippet = text[pos:pos + 12]
            raise PolynomialSyntaxError(f"unexpected character at {pos}: {snippet!r}")
        pos = match.end()
        if match.lastgroup == "int":
            tokens.append(("int", match.group("int")))
        elif match.lastgroup == "name":
            tokens.append(("name", match.group("name")))
        elif match.lastgroup == "pow":
            tokens.append(("pow", "^"))
        else:
            tokens.append(("op", match.group("op")))
    tokens.append(("end", ""))
    return tokens


class _Parser:
    """One-token-lookahead recursive-descent parser."""

    def __init__(self, tokens: list[tuple[str, str]]):
        self._tokens = tokens
        self._index = 0

    def _peek(self) -> tuple[str, str]:
        return self._tokens[self._index]

    def _advance(self) -> tuple[str, str]:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def parse(self) -> Polynomial:
        result = self._expr()
        kind, value = self._peek()
        if kind != "end":
            raise PolynomialSyntaxError(f"trailing input at token {value!r}")
        return result

    def _expr(self) -> Polynomial:
        kind, value = self._peek()
        negate = False
        if kind == "op" and value in "+-":
            self._advance()
            negate = value == "-"
        result = self._term()
        if negate:
            result = -result
        while True:
            kind, value = self._peek()
            if kind == "op" and value in "+-":
                self._advance()
                rhs = self._term()
                result = result - rhs if value == "-" else result + rhs
            else:
                return result

    def _term(self) -> Polynomial:
        result = self._factor()
        while True:
            kind, value = self._peek()
            if kind == "op" and value == "*":
                self._advance()
                result = result * self._factor()
            elif kind in ("int", "name") or (kind == "op" and value == "("):
                # Implicit multiplication by adjacency: 5x, x(x-1), 2(x+y).
                result = result * self._factor()
            else:
                return result

    def _factor(self) -> Polynomial:
        base = self._base()
        kind, _ = self._peek()
        if kind == "pow":
            self._advance()
            exp_kind, exp_value = self._advance()
            if exp_kind != "int":
                raise PolynomialSyntaxError(f"exponent must be an integer, got {exp_value!r}")
            return base ** int(exp_value)
        return base

    def _base(self) -> Polynomial:
        kind, value = self._advance()
        if kind == "int":
            return Polynomial.constant(int(value))
        if kind == "name":
            return Polynomial.variable(value)
        if kind == "op" and value == "(":
            inner = self._expr()
            close_kind, close_value = self._advance()
            if close_kind != "op" or close_value != ")":
                raise PolynomialSyntaxError(f"expected ')', got {close_value!r}")
            return inner
        if kind == "op" and value in "+-":
            inner = self._factor()
            return -inner if value == "-" else inner
        raise PolynomialSyntaxError(f"unexpected token {value!r}")


def parse_polynomial(
    text: str,
    variables: Iterable[str] | None = None,
    single_letter_vars: bool = False,
) -> Polynomial:
    """Parse ``text`` into a :class:`Polynomial`.

    When ``variables`` is given, the result is expressed over exactly that
    variable tuple (parsing fails if the text uses a variable outside it);
    otherwise the variables are the sorted set of names appearing in the
    text.

    ``single_letter_vars=True`` enables the paper's notation where ``4xy^2``
    means ``4*x*y^2``: every identifier token is split into single-letter
    variables.  Leave it off (the default) when names like ``x1`` or
    ``tmp`` are in play — adjacency of bare letters is ambiguous then.
    """
    tokens = _tokenize(text)
    if single_letter_vars:
        split: list[tuple[str, str]] = []
        for kind, value in tokens:
            if kind == "name" and len(value) > 1:
                if not value.isalpha():
                    raise PolynomialSyntaxError(
                        f"cannot split {value!r} into single-letter variables"
                    )
                split.extend(("name", ch) for ch in value)
            else:
                split.append((kind, value))
        tokens = split
    result = _Parser(tokens).parse()
    if variables is not None:
        vars_tuple = tuple(variables)
        extra = set(result.used_vars()) - set(vars_tuple)
        if extra:
            raise PolynomialSyntaxError(
                f"text uses variables {sorted(extra)} outside {vars_tuple}"
            )
        return result.with_vars(vars_tuple)
    return result.trim().with_vars(tuple(sorted(result.used_vars())))


def parse_system(texts: Iterable[str]) -> list[Polynomial]:
    """Parse several polynomials and unify them over a common variable tuple."""
    polys = [parse_polynomial(t) for t in texts]
    return Polynomial.unify_all(polys)
