"""Polynomial division algorithms over the integers.

Three flavours are provided, each serving a different consumer:

* :func:`divmod_poly` — the multivariate division algorithm with respect to
  a term order.  Over ``Z`` a term is moved to the quotient only when both
  the leading monomial *and* the leading coefficient divide; the invariant
  ``a == q*b + r`` always holds exactly.  This is the engine behind the
  paper's *algebraic division* step (Section 14.4.3).
* :func:`exact_divide` — division that must leave no remainder (returns
  ``None`` otherwise); used by factor verification and GCD cofactors.
* :func:`pseudo_divmod` — univariate pseudo-division with polynomial
  coefficients (``lc(b)^k * a == q*b + r``), the primitive used by the
  subresultant PRS multivariate GCD in :mod:`repro.poly.gcd`.
"""

from __future__ import annotations

import heapq
from typing import Tuple

from .monomial import mono_div, mono_divides
from .orderings import OrderKey, grevlex_key, order_key
from .packed import PackedContext
from .polynomial import Polynomial


def divmod_poly(
    dividend: Polynomial,
    divisor: Polynomial,
    order: str | OrderKey = "grevlex",
) -> Tuple[Polynomial, Polynomial]:
    """Divide ``dividend`` by ``divisor`` under a term order.

    Returns ``(quotient, remainder)`` with the exact integer identity
    ``dividend == quotient * divisor + remainder``, and no term of the
    remainder divisible (monomial- and coefficient-wise) by the leading
    term of the divisor.
    """
    if divisor.is_zero:
        raise ZeroDivisionError("polynomial division by zero")
    if order == "grevlex" or order is grevlex_key:
        return _divmod_grevlex_packed(dividend, divisor)
    key = order_key(order) if isinstance(order, str) else order
    dividend, divisor = Polynomial.unify(dividend, divisor)
    lead_exps, lead_coeff = divisor.leading_term(key)
    divisor_terms = divisor.terms

    # Work on plain dicts: constructing a Polynomial per reduction step is
    # the dominant cost of the synthesis flow's division phase.
    work = dict(dividend.terms)
    quotient: dict = {}
    remainder: dict = {}
    from .monomial import mono_mul

    while work:
        w_exps = max(work, key=key)
        w_coeff = work[w_exps]
        if mono_divides(lead_exps, w_exps) and w_coeff % lead_coeff == 0:
            q_exps = mono_div(w_exps, lead_exps)
            q_coeff = w_coeff // lead_coeff
            quotient[q_exps] = quotient.get(q_exps, 0) + q_coeff
            for d_exps, d_coeff in divisor_terms.items():
                target = mono_mul(q_exps, d_exps)
                value = work.get(target, 0) - q_coeff * d_coeff
                if value:
                    work[target] = value
                else:
                    work.pop(target, None)
        else:
            remainder[w_exps] = w_coeff
            del work[w_exps]
    return (
        Polynomial._raw(dividend.vars, {e: c for e, c in quotient.items() if c}),
        Polynomial._raw(dividend.vars, remainder),
    )


def _divmod_grevlex_packed(
    dividend: Polynomial, divisor: Polynomial
) -> Tuple[Polynomial, Polynomial]:
    """Grevlex division on packed-integer monomials with a lazy max-heap.

    Mathematically identical to the generic loop above, but every
    monomial is one integer (see :mod:`repro.poly.packed`): the next
    leading term comes off a heap instead of a full ``max()`` scan, the
    divisibility test is two int ops, and the inner cancellation loop is
    integer addition instead of tuple zipping.
    """
    dividend, divisor = Polynomial.unify(dividend, divisor)
    if not dividend.terms:
        zero = Polynomial.zero(dividend.vars)
        return zero, zero
    # Zero-quotient early-out: the first reduction step always fires on an
    # *original* term (reduction-created terms only exist after one), so if
    # no input term is divisible by the divisor's leading term the whole
    # dividend is remainder.  The candidate-division phases probe many
    # divisors that fail exactly this way.
    lead_exps, lead_coeff = divisor.leading_term(grevlex_key)
    nonzero = [(i, v) for i, v in enumerate(lead_exps) if v]
    if len(nonzero) == 1:
        # Linear-divisor common case: the leading monomial is one variable,
        # so the divisibility probe is a single index compare per term.
        i0, v0 = nonzero[0]
        for e, c in dividend.terms.items():
            if e[i0] >= v0 and c % lead_coeff == 0:
                break
        else:
            return Polynomial.zero(dividend.vars), dividend
    else:
        for e, c in dividend.terms.items():
            if c % lead_coeff == 0 and mono_divides(lead_exps, e):
                break
        else:
            return Polynomial.zero(dividend.vars), dividend
    ctx = PackedContext.get(
        len(dividend.vars),
        max(dividend.total_degree(), divisor.total_degree()),
    )
    lead = ctx.pack(lead_exps)
    # The leading term cancels exactly by construction; only the rest of
    # the divisor needs the explicit subtraction loop.
    rest = [
        (ctx.pack(e), c) for e, c in divisor.terms.items() if e != lead_exps
    ]

    work = ctx.pack_terms(dividend.terms.items())
    heap = list(work)
    heapq.heapify(heap)
    divides = ctx.divides
    capshift = ctx.capshift
    quotient: dict[int, int] = {}
    remainder: dict[int, int] = {}

    while work:
        w = heap[0]
        if w not in work:
            heapq.heappop(heap)
            continue
        w_coeff = work.pop(w)
        heapq.heappop(heap)
        if divides(lead, w) and w_coeff % lead_coeff == 0:
            q = w - lead + capshift
            q_coeff = w_coeff // lead_coeff
            quotient[q] = quotient.get(q, 0) + q_coeff
            for d, d_coeff in rest:
                target = q + d - capshift
                old = work.get(target)
                if old is None:
                    work[target] = -q_coeff * d_coeff
                    heapq.heappush(heap, target)
                else:
                    value = old - q_coeff * d_coeff
                    if value:
                        work[target] = value
                    else:
                        del work[target]
        else:
            remainder[w] = w_coeff
    unpack = ctx.unpack
    return (
        Polynomial._raw(
            dividend.vars, {unpack(p): c for p, c in quotient.items() if c}
        ),
        Polynomial._raw(dividend.vars, {unpack(p): c for p, c in remainder.items()}),
    )


def exact_divide(dividend: Polynomial, divisor: Polynomial) -> Polynomial | None:
    """Return ``dividend / divisor`` when exact, else ``None``.

    Uses lex order, under which exact divisibility over ``Z`` is decided
    correctly by the division algorithm (any admissible order works for
    exactness; the quotient is unique either way).
    """
    if divisor.is_zero:
        raise ZeroDivisionError("polynomial division by zero")
    if dividend.is_zero:
        return Polynomial.zero(dividend.vars)
    # Cheap rejections before running the full division.
    if divisor.total_degree() > dividend.total_degree():
        return None
    quotient, remainder = divmod_poly(dividend, divisor, "grevlex")
    if remainder.is_zero:
        return quotient
    return None


def divides(divisor: Polynomial, dividend: Polynomial) -> bool:
    """True when ``divisor`` divides ``dividend`` exactly over ``Z``."""
    return exact_divide(dividend, divisor) is not None


def pseudo_divmod(
    dividend: Polynomial, divisor: Polynomial, var: str
) -> Tuple[Polynomial, Polynomial, int]:
    """Pseudo-division viewing both operands as univariate in ``var``.

    Returns ``(quotient, remainder, power)`` such that::

        lc(divisor)^power * dividend == quotient * divisor + remainder

    where ``lc`` is the leading coefficient polynomial in ``var`` and
    ``deg_var(remainder) < deg_var(divisor)``.  This never requires
    coefficient divisibility, which is what the subresultant PRS needs.
    """
    if divisor.is_zero:
        raise ZeroDivisionError("polynomial pseudo-division by zero")
    dividend, divisor = Polynomial.unify(dividend, divisor)
    deg_b = divisor.degree(var)
    if deg_b <= -1:
        raise ZeroDivisionError("polynomial pseudo-division by zero")
    b_coeffs = divisor.as_univariate(var)
    lead_b = b_coeffs[deg_b]
    x = Polynomial.variable(var, dividend.vars)

    remainder = dividend
    quotient = Polynomial.zero(dividend.vars)
    power = 0
    deg_r = remainder.degree(var)
    while not remainder.is_zero and deg_r >= deg_b:
        r_coeffs = remainder.as_univariate(var)
        lead_r = r_coeffs[deg_r].with_vars(dividend.vars)
        shift = x ** (deg_r - deg_b)
        quotient = quotient * lead_b.with_vars(dividend.vars) + lead_r * shift
        remainder = (
            remainder * lead_b.with_vars(dividend.vars) - lead_r * shift * divisor
        )
        power += 1
        new_deg = remainder.degree(var)
        if new_deg >= deg_r and not remainder.is_zero:
            raise RuntimeError("pseudo-division failed to reduce degree (internal error)")
        deg_r = new_deg
    return quotient, remainder, power


def divide_out_all(
    dividend: Polynomial, divisor: Polynomial
) -> Tuple[Polynomial, int]:
    """Divide by ``divisor`` as many times as exactly possible.

    Returns ``(reduced, multiplicity)`` with
    ``dividend == reduced * divisor^multiplicity`` and ``divisor`` not
    dividing ``reduced``.  Used to discover powers of building blocks,
    e.g. ``x^2+6xy+9y^2 == (x+3y)^2`` in the motivating example.
    """
    if divisor.is_zero:
        raise ZeroDivisionError("polynomial division by zero")
    if divisor.is_constant and abs(divisor.constant_term) == 1:
        raise ValueError("dividing out a unit never terminates")
    count = 0
    current = dividend
    while not current.is_zero:
        quotient = exact_divide(current, divisor)
        if quotient is None:
            break
        current = quotient
        count += 1
    return current, count
