"""Polynomial division algorithms over the integers.

Three flavours are provided, each serving a different consumer:

* :func:`divmod_poly` — the multivariate division algorithm with respect to
  a term order.  Over ``Z`` a term is moved to the quotient only when both
  the leading monomial *and* the leading coefficient divide; the invariant
  ``a == q*b + r`` always holds exactly.  This is the engine behind the
  paper's *algebraic division* step (Section 14.4.3).
* :func:`exact_divide` — division that must leave no remainder (returns
  ``None`` otherwise); used by factor verification and GCD cofactors.
* :func:`pseudo_divmod` — univariate pseudo-division with polynomial
  coefficients (``lc(b)^k * a == q*b + r``), the primitive used by the
  subresultant PRS multivariate GCD in :mod:`repro.poly.gcd`.
"""

from __future__ import annotations

from typing import Tuple

from .monomial import mono_div, mono_divides
from .orderings import OrderKey, order_key
from .polynomial import Polynomial


def divmod_poly(
    dividend: Polynomial,
    divisor: Polynomial,
    order: str | OrderKey = "grevlex",
) -> Tuple[Polynomial, Polynomial]:
    """Divide ``dividend`` by ``divisor`` under a term order.

    Returns ``(quotient, remainder)`` with the exact integer identity
    ``dividend == quotient * divisor + remainder``, and no term of the
    remainder divisible (monomial- and coefficient-wise) by the leading
    term of the divisor.
    """
    if divisor.is_zero:
        raise ZeroDivisionError("polynomial division by zero")
    key = order_key(order) if isinstance(order, str) else order
    dividend, divisor = Polynomial.unify(dividend, divisor)
    lead_exps, lead_coeff = divisor.leading_term(key)
    divisor_terms = divisor.terms

    # Work on plain dicts: constructing a Polynomial per reduction step is
    # the dominant cost of the synthesis flow's division phase.
    work = dict(dividend.terms)
    quotient: dict = {}
    remainder: dict = {}
    from .monomial import mono_mul

    while work:
        w_exps = max(work, key=key)
        w_coeff = work[w_exps]
        if mono_divides(lead_exps, w_exps) and w_coeff % lead_coeff == 0:
            q_exps = mono_div(w_exps, lead_exps)
            q_coeff = w_coeff // lead_coeff
            quotient[q_exps] = quotient.get(q_exps, 0) + q_coeff
            for d_exps, d_coeff in divisor_terms.items():
                target = mono_mul(q_exps, d_exps)
                value = work.get(target, 0) - q_coeff * d_coeff
                if value:
                    work[target] = value
                else:
                    work.pop(target, None)
        else:
            remainder[w_exps] = w_coeff
            del work[w_exps]
    return (
        Polynomial._raw(dividend.vars, {e: c for e, c in quotient.items() if c}),
        Polynomial._raw(dividend.vars, remainder),
    )


def exact_divide(dividend: Polynomial, divisor: Polynomial) -> Polynomial | None:
    """Return ``dividend / divisor`` when exact, else ``None``.

    Uses lex order, under which exact divisibility over ``Z`` is decided
    correctly by the division algorithm (any admissible order works for
    exactness; the quotient is unique either way).
    """
    if divisor.is_zero:
        raise ZeroDivisionError("polynomial division by zero")
    if dividend.is_zero:
        return Polynomial.zero(dividend.vars)
    # Cheap rejections before running the full division.
    if divisor.total_degree() > dividend.total_degree():
        return None
    quotient, remainder = divmod_poly(dividend, divisor, "grevlex")
    if remainder.is_zero:
        return quotient
    return None


def divides(divisor: Polynomial, dividend: Polynomial) -> bool:
    """True when ``divisor`` divides ``dividend`` exactly over ``Z``."""
    return exact_divide(dividend, divisor) is not None


def pseudo_divmod(
    dividend: Polynomial, divisor: Polynomial, var: str
) -> Tuple[Polynomial, Polynomial, int]:
    """Pseudo-division viewing both operands as univariate in ``var``.

    Returns ``(quotient, remainder, power)`` such that::

        lc(divisor)^power * dividend == quotient * divisor + remainder

    where ``lc`` is the leading coefficient polynomial in ``var`` and
    ``deg_var(remainder) < deg_var(divisor)``.  This never requires
    coefficient divisibility, which is what the subresultant PRS needs.
    """
    if divisor.is_zero:
        raise ZeroDivisionError("polynomial pseudo-division by zero")
    dividend, divisor = Polynomial.unify(dividend, divisor)
    deg_b = divisor.degree(var)
    if deg_b <= -1:
        raise ZeroDivisionError("polynomial pseudo-division by zero")
    b_coeffs = divisor.as_univariate(var)
    lead_b = b_coeffs[deg_b]
    x = Polynomial.variable(var, dividend.vars)

    remainder = dividend
    quotient = Polynomial.zero(dividend.vars)
    power = 0
    deg_r = remainder.degree(var)
    while not remainder.is_zero and deg_r >= deg_b:
        r_coeffs = remainder.as_univariate(var)
        lead_r = r_coeffs[deg_r].with_vars(dividend.vars)
        shift = x ** (deg_r - deg_b)
        quotient = quotient * lead_b.with_vars(dividend.vars) + lead_r * shift
        remainder = (
            remainder * lead_b.with_vars(dividend.vars) - lead_r * shift * divisor
        )
        power += 1
        new_deg = remainder.degree(var)
        if new_deg >= deg_r and not remainder.is_zero:
            raise RuntimeError("pseudo-division failed to reduce degree (internal error)")
        deg_r = new_deg
    return quotient, remainder, power


def divide_out_all(
    dividend: Polynomial, divisor: Polynomial
) -> Tuple[Polynomial, int]:
    """Divide by ``divisor`` as many times as exactly possible.

    Returns ``(reduced, multiplicity)`` with
    ``dividend == reduced * divisor^multiplicity`` and ``divisor`` not
    dividing ``reduced``.  Used to discover powers of building blocks,
    e.g. ``x^2+6xy+9y^2 == (x+3y)^2`` in the motivating example.
    """
    if divisor.is_zero:
        raise ZeroDivisionError("polynomial division by zero")
    if divisor.is_constant and abs(divisor.constant_term) == 1:
        raise ValueError("dividing out a unit never terminates")
    count = 0
    current = dividend
    while not current.is_zero:
        quotient = exact_divide(current, divisor)
        if quotient is None:
            break
        current = quotient
        count += 1
    return current, count
