"""Polynomial division algorithms over the integers.

Three flavours are provided, each serving a different consumer:

* :func:`divmod_poly` — the multivariate division algorithm with respect to
  a term order.  Over ``Z`` a term is moved to the quotient only when both
  the leading monomial *and* the leading coefficient divide; the invariant
  ``a == q*b + r`` always holds exactly.  This is the engine behind the
  paper's *algebraic division* step (Section 14.4.3).
* :func:`exact_divide` — division that must leave no remainder (returns
  ``None`` otherwise); used by factor verification and GCD cofactors.
* :func:`pseudo_divmod` — univariate pseudo-division with polynomial
  coefficients (``lc(b)^k * a == q*b + r``), the primitive used by the
  subresultant PRS multivariate GCD in :mod:`repro.poly.gcd`.
"""

from __future__ import annotations

import heapq
from typing import Tuple

from .monomial import mono_div, mono_divides, mono_mul
from .orderings import OrderKey, grevlex_key, order_key
from .packed import PackedContext, packed_enabled, packed_form
from .polynomial import Polynomial


def divmod_poly(
    dividend: Polynomial,
    divisor: Polynomial,
    order: str | OrderKey = "grevlex",
) -> Tuple[Polynomial, Polynomial]:
    """Divide ``dividend`` by ``divisor`` under a term order.

    Returns ``(quotient, remainder)`` with the exact integer identity
    ``dividend == quotient * divisor + remainder``, and no term of the
    remainder divisible (monomial- and coefficient-wise) by the leading
    term of the divisor.
    """
    if divisor.is_zero:
        raise ZeroDivisionError("polynomial division by zero")
    if order == "grevlex" or order is grevlex_key:
        return _divmod_grevlex(dividend, divisor)
    key = order_key(order) if isinstance(order, str) else order
    dividend, divisor = Polynomial.unify(dividend, divisor)
    return _divmod_generic(dividend, divisor, key)


def _divmod_generic(
    dividend: Polynomial, divisor: Polynomial, key
) -> Tuple[Polynomial, Polynomial]:
    """Reference division loop on exponent tuples (any term order).

    Also the fallback the grevlex entry point uses when the packed fast
    path is unavailable; both paths build the quotient and remainder
    dicts in the same (strictly order-descending) insertion sequence, so
    downstream consumers see byte-identical term order either way.
    """
    lead_exps, lead_coeff = divisor.leading_term(key)
    divisor_terms = divisor.terms

    # Work on plain dicts: constructing a Polynomial per reduction step is
    # the dominant cost of the synthesis flow's division phase.
    work = dict(dividend.terms)
    quotient: dict = {}
    remainder: dict = {}

    while work:
        w_exps = max(work, key=key)
        w_coeff = work[w_exps]
        if mono_divides(lead_exps, w_exps) and w_coeff % lead_coeff == 0:
            q_exps = mono_div(w_exps, lead_exps)
            q_coeff = w_coeff // lead_coeff
            quotient[q_exps] = quotient.get(q_exps, 0) + q_coeff
            for d_exps, d_coeff in divisor_terms.items():
                target = mono_mul(q_exps, d_exps)
                value = work.get(target, 0) - q_coeff * d_coeff
                if value:
                    work[target] = value
                else:
                    work.pop(target, None)
        else:
            remainder[w_exps] = w_coeff
            del work[w_exps]
    return (
        Polynomial._raw(dividend.vars, {e: c for e, c in quotient.items() if c}),
        Polynomial._raw(dividend.vars, remainder),
    )


def _division_context(
    dividend: Polynomial, divisor: Polynomial
) -> PackedContext | None:
    """Packed context for one division, or ``None`` -> tuple fallback.

    Division only shrinks monomials, so the max of the operand degree
    bounds is sufficient (every intermediate target divides a genuine
    work-set monomial).
    """
    if not packed_enabled():
        return None
    return PackedContext.for_degrees(
        len(dividend.vars),
        max(dividend.total_degree(), divisor.total_degree()),
    )


def _packed_divmod_core(
    work: dict[int, int],
    lead: int,
    lead_coeff: int,
    rest: list[tuple[int, int]],
    ctx: PackedContext,
) -> Tuple[dict[int, int], dict[int, int]]:
    """Grevlex division on packed-integer monomials with a lazy max-heap.

    Mathematically identical to :func:`_divmod_generic`, but every
    monomial is one integer (see :mod:`repro.poly.packed`): the next
    leading term comes off a heap instead of a full ``max()`` scan, the
    divisibility test is two int ops, and the inner cancellation loop is
    integer addition instead of tuple zipping.  ``work`` is consumed.
    Returns packed ``(quotient, remainder)`` dicts whose insertion order
    is the reduction order — the same sequence the generic loop produces.
    """
    heap = list(work)
    heapq.heapify(heap)
    divides = ctx.divides
    capshift = ctx.capshift
    quotient: dict[int, int] = {}
    remainder: dict[int, int] = {}

    while work:
        w = heap[0]
        if w not in work:
            heapq.heappop(heap)
            continue
        w_coeff = work.pop(w)
        heapq.heappop(heap)
        if divides(lead, w) and w_coeff % lead_coeff == 0:
            q = w - lead + capshift
            q_coeff = w_coeff // lead_coeff
            quotient[q] = quotient.get(q, 0) + q_coeff
            for d, d_coeff in rest:
                target = q + d - capshift
                old = work.get(target)
                if old is None:
                    work[target] = -q_coeff * d_coeff
                    heapq.heappush(heap, target)
                else:
                    value = old - q_coeff * d_coeff
                    if value:
                        work[target] = value
                    else:
                        del work[target]
        else:
            remainder[w] = w_coeff
    return quotient, remainder


def _packed_lead_rest(
    divisor: Polynomial, ctx: PackedContext
) -> tuple[int, int, list[tuple[int, int]]]:
    """(packed leading monomial, leading coeff, non-leading packed terms).

    The leading term cancels exactly by construction in every reduction
    step; only the rest of the divisor needs the explicit subtraction
    loop.  Both the packed form and this split of it are memoized on the
    divisor instance, so the candidate loops that probe one divisor pool
    pay for packing once.
    """
    return packed_form(divisor, ctx).lead_rest()


def _divmod_grevlex(
    dividend: Polynomial, divisor: Polynomial
) -> Tuple[Polynomial, Polynomial]:
    """Grevlex division: packed fast path with the tuple loop as fallback."""
    dividend, divisor = Polynomial.unify(dividend, divisor)
    if not dividend.terms:
        zero = Polynomial.zero(dividend.vars)
        return zero, zero
    ctx = _division_context(dividend, divisor)
    if ctx is None:
        return _divmod_generic(dividend, divisor, grevlex_key)
    lead, lead_coeff, rest = _packed_lead_rest(divisor, ctx)
    pmap = packed_form(dividend, ctx).term_map()
    # Zero-quotient early-out: the first reduction step always fires on an
    # *original* term (reduction-created terms only exist after one), so if
    # no input term is divisible by the divisor's leading term the whole
    # dividend is remainder.  The candidate-division phases probe many
    # divisors that fail exactly this way.
    divides = ctx.divides
    for p, c in pmap.items():
        if c % lead_coeff == 0 and divides(lead, p):
            break
    else:
        # The generic loop emits remainder terms grevlex-descending
        # (ascending packed value); match it so term order stays
        # byte-identical across the two paths.
        unpack = ctx.unpack
        return Polynomial.zero(dividend.vars), Polynomial._raw(
            dividend.vars, {unpack(p): pmap[p] for p in sorted(pmap)}
        )
    quotient, remainder = _packed_divmod_core(
        dict(pmap), lead, lead_coeff, rest, ctx
    )
    unpack = ctx.unpack
    return (
        Polynomial._raw(
            dividend.vars, {unpack(p): c for p, c in quotient.items() if c}
        ),
        Polynomial._raw(dividend.vars, {unpack(p): c for p, c in remainder.items()}),
    )


def exact_divide(dividend: Polynomial, divisor: Polynomial) -> Polynomial | None:
    """Return ``dividend / divisor`` when exact, else ``None``.

    Uses lex order, under which exact divisibility over ``Z`` is decided
    correctly by the division algorithm (any admissible order works for
    exactness; the quotient is unique either way).
    """
    if divisor.is_zero:
        raise ZeroDivisionError("polynomial division by zero")
    if dividend.is_zero:
        return Polynomial.zero(dividend.vars)
    # Cheap rejections before running the full division.
    if divisor.total_degree() > dividend.total_degree():
        return None
    quotient, remainder = divmod_poly(dividend, divisor, "grevlex")
    if remainder.is_zero:
        return quotient
    return None


def divides(divisor: Polynomial, dividend: Polynomial) -> bool:
    """True when ``divisor`` divides ``dividend`` exactly over ``Z``."""
    return exact_divide(dividend, divisor) is not None


def pseudo_divmod(
    dividend: Polynomial, divisor: Polynomial, var: str
) -> Tuple[Polynomial, Polynomial, int]:
    """Pseudo-division viewing both operands as univariate in ``var``.

    Returns ``(quotient, remainder, power)`` such that::

        lc(divisor)^power * dividend == quotient * divisor + remainder

    where ``lc`` is the leading coefficient polynomial in ``var`` and
    ``deg_var(remainder) < deg_var(divisor)``.  This never requires
    coefficient divisibility, which is what the subresultant PRS needs.
    """
    if divisor.is_zero:
        raise ZeroDivisionError("polynomial pseudo-division by zero")
    dividend, divisor = Polynomial.unify(dividend, divisor)
    deg_b = divisor.degree(var)
    if deg_b <= -1:
        raise ZeroDivisionError("polynomial pseudo-division by zero")
    b_coeffs = divisor.as_univariate(var)
    lead_b = b_coeffs[deg_b]
    x = Polynomial.variable(var, dividend.vars)

    remainder = dividend
    quotient = Polynomial.zero(dividend.vars)
    power = 0
    deg_r = remainder.degree(var)
    while not remainder.is_zero and deg_r >= deg_b:
        r_coeffs = remainder.as_univariate(var)
        lead_r = r_coeffs[deg_r].with_vars(dividend.vars)
        shift = x ** (deg_r - deg_b)
        quotient = quotient * lead_b.with_vars(dividend.vars) + lead_r * shift
        remainder = (
            remainder * lead_b.with_vars(dividend.vars) - lead_r * shift * divisor
        )
        power += 1
        new_deg = remainder.degree(var)
        if new_deg >= deg_r and not remainder.is_zero:
            raise RuntimeError("pseudo-division failed to reduce degree (internal error)")
        deg_r = new_deg
    return quotient, remainder, power


def divide_out_all(
    dividend: Polynomial, divisor: Polynomial
) -> Tuple[Polynomial, int]:
    """Divide by ``divisor`` as many times as exactly possible.

    Returns ``(reduced, multiplicity)`` with
    ``dividend == reduced * divisor^multiplicity`` and ``divisor`` not
    dividing ``reduced``.  Used to discover powers of building blocks,
    e.g. ``x^2+6xy+9y^2 == (x+3y)^2`` in the motivating example.
    """
    if divisor.is_zero:
        raise ZeroDivisionError("polynomial division by zero")
    if divisor.is_constant and abs(divisor.constant_term) == 1:
        raise ValueError("dividing out a unit never terminates")
    if dividend.is_zero:
        return dividend, 0
    divisor_degree = divisor.total_degree()
    if divisor_degree > dividend.total_degree():
        return dividend, 0
    unified, divisor_u = Polynomial.unify(dividend, divisor)
    ctx = _division_context(unified, divisor_u)
    if ctx is None:
        count = 0
        current = dividend
        while not current.is_zero:
            quotient = exact_divide(current, divisor)
            if quotient is None:
                break
            current = quotient
            count += 1
        return current, count
    reduced, count = _divide_out_all_packed(unified, divisor_u, ctx)
    if count == 0:
        return dividend, 0
    return reduced, count


def _divide_out_all_packed(
    unified: Polynomial, divisor: Polynomial, ctx: PackedContext
) -> Tuple[Polynomial, int]:
    """The packed multiplicity loop over pre-unified operands.

    Packs both operands once (memoized) and keeps the running quotient
    packed between rounds — the tuple path unpacks and re-packs per
    round.  Callers that probe one dividend against a whole divisor
    pool (block refinement) use this directly with a hoisted context;
    the operands must already share one variable tuple.  Returns
    ``(unified, 0)`` when the divisor never divides.
    """
    divisor_degree = divisor.total_degree()
    lead, lead_coeff, rest = _packed_lead_rest(divisor, ctx)
    divides = ctx.divides
    current_map = packed_form(unified, ctx).term_map()
    count = 0
    while current_map:
        if count and ctx.degree_of(min(current_map)) < divisor_degree:
            break
        for p, c in current_map.items():
            if c % lead_coeff == 0 and divides(lead, p):
                break
        else:
            break
        quotient, remainder = _packed_divmod_core(
            dict(current_map), lead, lead_coeff, rest, ctx
        )
        if remainder:
            break
        current_map = quotient
        count += 1
    if count == 0:
        return unified, 0
    unpack = ctx.unpack
    reduced = Polynomial._raw(
        unified.vars, {unpack(p): c for p, c in current_map.items() if c}
    )
    return reduced, count
