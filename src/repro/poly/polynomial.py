"""Sparse multivariate polynomials with integer coefficients.

This is the algebraic substrate the paper manipulates through Maple: every
datapath computation is a system of elements of ``Z[x_1, ..., x_d]``
(Section 14.1), later interpreted as functions over finite rings ``Z_2^m``
(Section 14.3.1, implemented in :mod:`repro.rings`).

A :class:`Polynomial` is immutable.  It stores

* ``vars`` — an ordered tuple of variable names, and
* ``terms`` — a mapping from exponent tuples (aligned with ``vars``) to
  non-zero integer coefficients.

All arithmetic is exact integer arithmetic; no floating point enters the
core library anywhere.  Binary operations between polynomials over
different variable tuples first unify them over the sorted union of their
variables, so ``parse("x+y") * parse("y+z")`` works as expected.
"""

from __future__ import annotations

from math import gcd
from typing import Callable, Dict, Iterable, Mapping, Tuple, Union

from .monomial import (
    Exponents,
    mono_degree,
    mono_gcd_many,
    mono_is_one,
    mono_mul,
    mono_one,
)
from .orderings import OrderKey, grevlex_key, order_key

Coeff = int
Terms = Dict[Exponents, Coeff]
Scalar = int
PolyLike = Union["Polynomial", int]

#: Memoized sorted unions of variable tuples.  Binary operations between
#: polynomials over different variable sets re-derive the same union
#: constantly (every division in a candidate loop, for instance); the
#: distinct (vars, vars) pairs in one flow number in the dozens.
_VAR_UNIONS: dict[tuple[tuple, tuple], tuple] = {}


def _var_union(a: tuple, b: tuple) -> tuple:
    key = (a, b)
    union = _VAR_UNIONS.get(key)
    if union is None:
        if len(_VAR_UNIONS) > 4096:
            _VAR_UNIONS.clear()
        union = _VAR_UNIONS[key] = tuple(sorted(set(a) | set(b)))
    return union


class Polynomial:
    """An immutable sparse multivariate polynomial over the integers."""

    __slots__ = ("_vars", "_terms", "_hash", "_used", "_tdeg", "_wv", "_pk")

    def __init__(self, variables: Iterable[str], terms: Mapping[Exponents, Coeff]):
        """Build a polynomial from a term mapping.

        Zero coefficients are dropped; exponent tuples must match the number
        of variables.  Prefer the classmethod constructors (:meth:`zero`,
        :meth:`constant`, :meth:`variable`, :meth:`parse`) in client code.
        """
        vars_tuple = tuple(variables)
        if len(set(vars_tuple)) != len(vars_tuple):
            raise ValueError(f"duplicate variable names in {vars_tuple}")
        nvars = len(vars_tuple)
        clean: Terms = {}
        for exps, coeff in terms.items():
            if len(exps) != nvars:
                raise ValueError(
                    f"exponent tuple {exps} does not match {nvars} variables {vars_tuple}"
                )
            if not isinstance(coeff, int):
                raise TypeError(f"coefficient {coeff!r} is not an integer")
            if any(e < 0 for e in exps):
                raise ValueError(f"negative exponent in {exps}")
            if coeff:
                clean[tuple(exps)] = coeff
        self._vars = vars_tuple
        self._terms = clean
        self._hash: int | None = None
        self._used: Tuple[str, ...] | None = None
        self._tdeg: int | None = None
        self._wv: dict | None = None
        self._pk: dict | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def _raw(cls, variables: tuple, terms: Terms) -> "Polynomial":
        """Trusted fast-path constructor for internal arithmetic.

        The caller guarantees: ``variables`` is a tuple without duplicates,
        every key is an exponent tuple of the right arity with non-negative
        entries, and no coefficient is zero.  All public construction goes
        through ``__init__``, which validates.
        """
        self = object.__new__(cls)
        self._vars = variables
        self._terms = terms
        self._hash = None
        self._used = None
        self._tdeg = None
        self._wv = None
        self._pk = None
        return self

    @classmethod
    def zero(cls, variables: Iterable[str] = ()) -> "Polynomial":
        """The zero polynomial (optionally over given variables)."""
        return cls(variables, {})

    @classmethod
    def constant(cls, value: int, variables: Iterable[str] = ()) -> "Polynomial":
        """A constant polynomial."""
        vars_tuple = tuple(variables)
        if value == 0:
            return cls(vars_tuple, {})
        return cls(vars_tuple, {mono_one(len(vars_tuple)): value})

    @classmethod
    def variable(cls, name: str, variables: Iterable[str] | None = None) -> "Polynomial":
        """The polynomial ``name`` over ``variables`` (default: just itself)."""
        vars_tuple = tuple(variables) if variables is not None else (name,)
        if name not in vars_tuple:
            raise ValueError(f"variable {name!r} not among {vars_tuple}")
        exps = tuple(1 if v == name else 0 for v in vars_tuple)
        return cls(vars_tuple, {exps: 1})

    @classmethod
    def from_terms(
        cls, variables: Iterable[str], items: Iterable[Tuple[Exponents, Coeff]]
    ) -> "Polynomial":
        """Build from an iterable of ``(exponents, coeff)`` pairs, summing duplicates."""
        acc: Terms = {}
        for exps, coeff in items:
            key = tuple(exps)
            acc[key] = acc.get(key, 0) + coeff
        return cls(variables, acc)

    @staticmethod
    def parse(text: str, variables: Iterable[str] | None = None) -> "Polynomial":
        """Parse a polynomial from text; see :mod:`repro.poly.parser`."""
        from .parser import parse_polynomial

        return parse_polynomial(text, variables)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    @property
    def vars(self) -> Tuple[str, ...]:
        """The ordered variable names this polynomial is expressed over."""
        return self._vars

    @property
    def terms(self) -> Mapping[Exponents, Coeff]:
        """Read-only view of the term mapping (do not mutate)."""
        return self._terms

    @property
    def is_zero(self) -> bool:
        """True for the zero polynomial."""
        return not self._terms

    @property
    def is_constant(self) -> bool:
        """True when no variable appears (including the zero polynomial)."""
        return all(mono_is_one(e) for e in self._terms)

    @property
    def is_one(self) -> bool:
        """True for the constant polynomial 1."""
        return self.is_constant and self.constant_term == 1

    @property
    def is_monomial(self) -> bool:
        """True when the polynomial has exactly one term."""
        return len(self._terms) == 1

    @property
    def is_linear(self) -> bool:
        """True when total degree is at most 1 (the paper's *linear block*)."""
        return self.total_degree() <= 1

    @property
    def constant_term(self) -> int:
        """Coefficient of the unit monomial (0 when absent)."""
        if not self._vars:
            return self._terms.get((), 0)
        return self._terms.get(mono_one(len(self._vars)), 0)

    def __len__(self) -> int:
        return len(self._terms)

    def __bool__(self) -> bool:
        return bool(self._terms)

    def total_degree(self) -> int:
        """Maximum total degree over all terms; -1 for the zero polynomial."""
        if self._tdeg is None:
            if not self._terms:
                self._tdeg = -1
            else:
                self._tdeg = max(map(sum, self._terms))
        return self._tdeg

    def degree(self, var: str) -> int:
        """Degree in one variable; -1 for the zero polynomial."""
        if not self._terms:
            return -1
        idx = self._var_index(var)
        return max(e[idx] for e in self._terms)

    def used_vars(self) -> Tuple[str, ...]:
        """Variables with a non-zero exponent somewhere, in declaration order."""
        if self._used is None:
            used = [False] * len(self._vars)
            for exps in self._terms:
                for i, e in enumerate(exps):
                    if e:
                        used[i] = True
            self._used = tuple(v for v, u in zip(self._vars, used) if u)
        return self._used

    def max_coeff_magnitude(self) -> int:
        """Largest absolute coefficient (0 for the zero polynomial)."""
        if not self._terms:
            return 0
        return max(abs(c) for c in self._terms.values())

    def _var_index(self, var: str) -> int:
        try:
            return self._vars.index(var)
        except ValueError:
            raise KeyError(f"variable {var!r} not in {self._vars}") from None

    # ------------------------------------------------------------------
    # Term access under an order
    # ------------------------------------------------------------------

    def sorted_terms(
        self, order: str | OrderKey = "grevlex", reverse: bool = True
    ) -> list[Tuple[Exponents, Coeff]]:
        """Terms sorted by a term order (descending by default)."""
        key = order_key(order) if isinstance(order, str) else order
        return sorted(self._terms.items(), key=lambda it: key(it[0]), reverse=reverse)

    def leading_term(self, order: str | OrderKey = "grevlex") -> Tuple[Exponents, Coeff]:
        """The leading ``(exponents, coeff)`` under the given order."""
        if not self._terms:
            raise ValueError("zero polynomial has no leading term")
        key = order_key(order) if isinstance(order, str) else order
        exps = max(self._terms, key=key)
        return exps, self._terms[exps]

    def leading_coeff(self, order: str | OrderKey = "grevlex") -> int:
        """Coefficient of the leading term."""
        return self.leading_term(order)[1]

    def leading_monomial(self, order: str | OrderKey = "grevlex") -> Exponents:
        """Exponent tuple of the leading term."""
        return self.leading_term(order)[0]

    # ------------------------------------------------------------------
    # Variable-set management
    # ------------------------------------------------------------------

    def with_vars(self, variables: Iterable[str]) -> "Polynomial":
        """Re-express this polynomial over a superset of its used variables."""
        new_vars = tuple(variables)
        if new_vars == self._vars:
            return self
        # Per-instance memo: the division and unification hot paths align
        # the same divisor/operand onto the same variable tuple thousands
        # of times (immutability makes sharing the result safe).
        cache = self._wv
        if cache is None:
            cache = self._wv = {}
        else:
            hit = cache.get(new_vars)
            if hit is not None:
                return hit
        index_of = {v: i for i, v in enumerate(new_vars)}
        positions = []
        for i, v in enumerate(self._vars):
            new_i = index_of.get(v)
            if new_i is not None:
                positions.append((i, new_i))
            else:
                # Dropping a variable is only legal when it is unused.
                if any(e[i] for e in self._terms):
                    raise ValueError(f"cannot drop used variable {v!r}")
        nnew = len(new_vars)
        new_terms: Terms = {}
        for exps, coeff in self._terms.items():
            out = [0] * nnew
            for old_i, new_i in positions:
                out[new_i] = exps[old_i]
            key = tuple(out)
            new_terms[key] = new_terms.get(key, 0) + coeff
        result = Polynomial._raw(new_vars, new_terms)
        cache[new_vars] = result
        return result

    def trim(self) -> "Polynomial":
        """Drop variables that do not appear (preserving their relative order)."""
        used = self.used_vars()
        if used == self._vars:
            return self
        # Fast path: project each exponent tuple onto the used columns
        # (no renaming can collide, so no coefficient merging is needed).
        keep = [i for i, v in enumerate(self._vars) if v in set(used)]
        new_terms = {
            tuple(exps[i] for i in keep): coeff
            for exps, coeff in self._terms.items()
        }
        trimmed = Polynomial._raw(used, new_terms)
        trimmed._used = used
        return trimmed

    @staticmethod
    def unify(a: "Polynomial", b: "Polynomial") -> Tuple["Polynomial", "Polynomial"]:
        """Re-express two polynomials over a common variable tuple.

        If the tuples already match, both are returned unchanged; otherwise
        the sorted union of the variable names is used, which keeps the
        result deterministic regardless of operand order.
        """
        if a._vars == b._vars:
            return a, b
        union = _var_union(a._vars, b._vars)
        return a.with_vars(union), b.with_vars(union)

    @staticmethod
    def unify_all(polys: Iterable["Polynomial"]) -> list["Polynomial"]:
        """Re-express a collection of polynomials over one variable tuple."""
        polys = list(polys)
        if not polys:
            return []
        names: set[str] = set()
        for p in polys:
            names.update(p._vars)
        union = tuple(sorted(names))
        return [p if p._vars == union else p.with_vars(union) for p in polys]

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------

    def _coerce(self, other: PolyLike) -> "Polynomial | None":
        if isinstance(other, Polynomial):
            return other
        if isinstance(other, int):
            return Polynomial.constant(other, self._vars)
        return None

    def __add__(self, other: PolyLike) -> "Polynomial":
        rhs = self._coerce(other)
        if rhs is None:
            return NotImplemented
        a, b = Polynomial.unify(self, rhs)
        out = dict(a._terms)
        for exps, coeff in b._terms.items():
            total = out.get(exps, 0) + coeff
            if total:
                out[exps] = total
            else:
                out.pop(exps, None)
        return Polynomial._raw(a._vars, out)

    def __radd__(self, other: PolyLike) -> "Polynomial":
        return self.__add__(other)

    def __neg__(self) -> "Polynomial":
        return Polynomial._raw(self._vars, {e: -c for e, c in self._terms.items()})

    def __sub__(self, other: PolyLike) -> "Polynomial":
        rhs = self._coerce(other)
        if rhs is None:
            return NotImplemented
        return self.__add__(-rhs)

    def __rsub__(self, other: PolyLike) -> "Polynomial":
        rhs = self._coerce(other)
        if rhs is None:
            return NotImplemented
        return rhs.__add__(-self)

    def __mul__(self, other: PolyLike) -> "Polynomial":
        rhs = self._coerce(other)
        if rhs is None:
            return NotImplemented
        a, b = Polynomial.unify(self, rhs)
        if not a._terms or not b._terms:
            return Polynomial.zero(a._vars)
        # Iterate over the smaller operand for fewer dict rebuilds.
        if len(a._terms) < len(b._terms):
            a, b = b, a
        out: Terms = {}
        for eb, cb in b._terms.items():
            for ea, ca in a._terms.items():
                key = mono_mul(ea, eb)
                total = out.get(key, 0) + ca * cb
                if total:
                    out[key] = total
                else:
                    del out[key]
        return Polynomial._raw(a._vars, out)

    def __rmul__(self, other: PolyLike) -> "Polynomial":
        return self.__mul__(other)

    def __pow__(self, exponent: int) -> "Polynomial":
        if not isinstance(exponent, int):
            return NotImplemented
        if exponent < 0:
            raise ValueError(f"negative polynomial power {exponent}")
        result = Polynomial.constant(1, self._vars)
        base = self
        k = exponent
        while k:
            if k & 1:
                result = result * base
            k >>= 1
            if k:
                base = base * base
        return result

    def scale(self, factor: int) -> "Polynomial":
        """Multiply every coefficient by an integer (fast path for ``int * p``)."""
        if factor == 0:
            return Polynomial.zero(self._vars)
        if factor == 1:
            return self
        return Polynomial._raw(
            self._vars, {e: c * factor for e, c in self._terms.items()}
        )

    def mul_monomial(self, exps: Exponents, coeff: int = 1) -> "Polynomial":
        """Multiply by a single cube ``coeff * x^exps`` without dict merging."""
        if coeff == 0:
            return Polynomial.zero(self._vars)
        return Polynomial._raw(
            self._vars, {mono_mul(e, exps): c * coeff for e, c in self._terms.items()}
        )

    # ------------------------------------------------------------------
    # Equality / hashing / ordering helpers
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, int):
            return self.is_constant and self.constant_term == other
        if not isinstance(other, Polynomial):
            return NotImplemented
        if self._vars == other._vars:
            return self._terms == other._terms
        a, b = Polynomial.unify(self.trim(), other.trim())
        return a._terms == b._terms

    def __hash__(self) -> int:
        if self._hash is None:
            trimmed = self.trim()
            self._hash = hash((trimmed._vars, frozenset(trimmed._terms.items())))
        return self._hash

    def __getstate__(self):
        # Pickle only the mathematical content: the per-instance memo
        # slots (_wv alignments, _pk packed forms) are process-local
        # caches and would bloat every engine job/result payload.
        return self._vars, self._terms

    def __setstate__(self, state) -> None:
        self._vars, self._terms = state
        self._hash = None
        self._used = None
        self._tdeg = None
        self._wv = None
        self._pk = None

    # ------------------------------------------------------------------
    # Calculus / evaluation / substitution
    # ------------------------------------------------------------------

    def derivative(self, var: str) -> "Polynomial":
        """Formal partial derivative with respect to one variable."""
        idx = self._var_index(var)
        out: Terms = {}
        for exps, coeff in self._terms.items():
            e = exps[idx]
            if e:
                key = exps[:idx] + (e - 1,) + exps[idx + 1:]
                out[key] = out.get(key, 0) + coeff * e
        return Polynomial(self._vars, out)

    def evaluate(self, assignment: Mapping[str, int]) -> int:
        """Evaluate at an integer point; every used variable must be bound."""
        missing = [v for v in self.used_vars() if v not in assignment]
        if missing:
            raise KeyError(f"unbound variables in evaluation: {missing}")
        values = [assignment.get(v, 0) for v in self._vars]
        total = 0
        for exps, coeff in self._terms.items():
            term = coeff
            for val, e in zip(values, exps):
                if e:
                    term *= val ** e
            total += term
        return total

    def evaluate_mod(self, assignment: Mapping[str, int], modulus: int) -> int:
        """Evaluate modulo ``modulus`` (the bit-vector semantics of the paper)."""
        missing = [v for v in self.used_vars() if v not in assignment]
        if missing:
            raise KeyError(f"unbound variables in evaluation: {missing}")
        values = [assignment.get(v, 0) % modulus for v in self._vars]
        total = 0
        for exps, coeff in self._terms.items():
            term = coeff % modulus
            for val, e in zip(values, exps):
                if e:
                    term = (term * pow(val, e, modulus)) % modulus
            total = (total + term) % modulus
        return total

    def subs(self, mapping: Mapping[str, PolyLike]) -> "Polynomial":
        """Substitute polynomials (or integers) for variables.

        Variables absent from ``mapping`` are left untouched.  Substitution
        is simultaneous, e.g. ``subs({x: y, y: x})`` swaps the variables.
        """
        if not mapping:
            return self
        replacements: dict[str, Polynomial] = {}
        for name, value in mapping.items():
            if isinstance(value, int):
                replacements[name] = Polynomial.constant(value)
            else:
                replacements[name] = value
        result = Polynomial.zero()
        kept_vars = self._vars
        for exps, coeff in self._terms.items():
            term: Polynomial | int = coeff
            for var, e in zip(kept_vars, exps):
                if not e:
                    continue
                if var in replacements:
                    factor = replacements[var] ** e
                else:
                    factor = Polynomial(
                        (var,), {(e,): 1}
                    )
                term = factor * term
            if isinstance(term, int):
                term = Polynomial.constant(term)
            result = result + term
        return result

    # ------------------------------------------------------------------
    # Content / primitive part
    # ------------------------------------------------------------------

    def content(self) -> int:
        """GCD of all coefficients, with the sign of the leading term.

        Zero polynomial has content 0.  The sign convention makes
        ``primitive_part()`` have a positive leading coefficient, so the
        factorization ``p == content * primitive_part`` is exact.
        """
        if not self._terms:
            return 0
        g = 0
        for coeff in self._terms.values():
            g = gcd(g, coeff)
            if g == 1:
                break
        if self.leading_coeff(grevlex_key) < 0:
            g = -g
        return g

    def primitive_part(self) -> "Polynomial":
        """``self / content()``; zero stays zero."""
        c = self.content()
        if c in (0, 1):
            return self
        return Polynomial(self._vars, {e: k // c for e, k in self._terms.items()})

    def map_coeffs(self, func: Callable[[int], int]) -> "Polynomial":
        """Apply an integer function to every coefficient (zeros dropped)."""
        return Polynomial(self._vars, {e: func(c) for e, c in self._terms.items()})

    def monomial_content(self) -> Exponents:
        """Largest monomial dividing every term (the common cube)."""
        if not self._terms:
            return mono_one(len(self._vars))
        return mono_gcd_many(self._terms.keys())

    # ------------------------------------------------------------------
    # Univariate views
    # ------------------------------------------------------------------

    def is_univariate_in(self, var: str) -> bool:
        """True when ``var`` is the only variable that appears."""
        used = self.used_vars()
        return used == () or used == (var,)

    def to_dense(self, var: str) -> list[int]:
        """Dense coefficient list ``[c0, c1, ...]`` for a univariate polynomial.

        Raises ``ValueError`` when other variables appear.
        """
        if not self.is_univariate_in(var) and self.used_vars():
            raise ValueError(f"polynomial is not univariate in {var!r}: uses {self.used_vars()}")
        if not self._terms:
            return []
        if var in self._vars:
            idx = self._var_index(var)
        else:
            idx = None
        deg = 0 if idx is None else max(e[idx] for e in self._terms)
        dense = [0] * (deg + 1)
        for exps, coeff in self._terms.items():
            power = 0 if idx is None else exps[idx]
            dense[power] += coeff
        while dense and dense[-1] == 0:
            dense.pop()
        return dense

    @classmethod
    def from_dense(cls, coeffs: Iterable[int], var: str) -> "Polynomial":
        """Build a univariate polynomial from a dense ``[c0, c1, ...]`` list."""
        terms: Terms = {}
        for power, coeff in enumerate(coeffs):
            if coeff:
                terms[(power,)] = coeff
        return cls((var,), terms)

    def as_univariate(self, var: str) -> Dict[int, "Polynomial"]:
        """View as a univariate polynomial in ``var`` with polynomial coefficients.

        Returns ``{power: coefficient_polynomial}`` where each coefficient
        polynomial is over the remaining variables.  This is the recursive
        view used by multivariate GCD and square-free factorization.
        """
        idx = self._var_index(var)
        other_vars = self._vars[:idx] + self._vars[idx + 1:]
        buckets: Dict[int, Terms] = {}
        for exps, coeff in self._terms.items():
            power = exps[idx]
            rest = exps[:idx] + exps[idx + 1:]
            bucket = buckets.setdefault(power, {})
            bucket[rest] = bucket.get(rest, 0) + coeff
        return {p: Polynomial(other_vars, t) for p, t in buckets.items()}

    @classmethod
    def from_univariate(
        cls, coeffs: Mapping[int, "Polynomial"], var: str
    ) -> "Polynomial":
        """Inverse of :meth:`as_univariate`."""
        result = cls.zero((var,))
        xvar = cls.variable(var)
        for power, poly in coeffs.items():
            result = result + poly * xvar ** power
        return result

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------

    def __str__(self) -> str:
        from .printer import format_polynomial

        return format_polynomial(self)

    def __repr__(self) -> str:
        return f"Polynomial({self.__str__()!r})"


def poly_sum(polys: Iterable[Polynomial]) -> Polynomial:
    """Sum of a collection of polynomials (zero for an empty collection)."""
    total = Polynomial.zero()
    for p in polys:
        total = total + p
    return total


def poly_prod(polys: Iterable[Polynomial]) -> Polynomial:
    """Product of a collection of polynomials (one for an empty collection)."""
    total = Polynomial.constant(1)
    for p in polys:
        total = total * p
    return total
