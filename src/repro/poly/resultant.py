"""Resultants and discriminants of polynomials.

Classical elimination tools used across the factorization substrate:

* :func:`sylvester_matrix` / :func:`resultant` — the resultant of two
  univariate polynomials (entries may be polynomials in other variables,
  so this doubles as a multivariate elimination step);
* :func:`discriminant` — ``disc(f) = (-1)^(n(n-1)/2) res(f, f') / lc(f)``,
  zero exactly when ``f`` has a repeated root; the factorization driver
  uses it to pick primes that keep square-free polynomials square-free
  mod p.

The resultant is computed by Bareiss-style fraction-free Gaussian
elimination on the Sylvester matrix, which stays in ``Z[x_2, ..., x_d]``
throughout (no rational arithmetic).
"""

from __future__ import annotations

from repro.poly.polynomial import Polynomial

from .division import exact_divide


def sylvester_matrix(
    f: Polynomial, g: Polynomial, var: str
) -> list[list[Polynomial]]:
    """The Sylvester matrix of ``f`` and ``g`` with respect to ``var``.

    Entries are polynomials in the remaining variables.  Requires both
    degrees to be at least 1.
    """
    m = f.degree(var)
    n = g.degree(var)
    if m < 1 or n < 1:
        raise ValueError(
            f"sylvester_matrix needs positive degrees, got {m} and {n}"
        )
    f_coeffs = f.as_univariate(var)
    g_coeffs = g.as_univariate(var)
    size = m + n
    zero = Polynomial.zero()

    def f_at(k: int) -> Polynomial:
        return f_coeffs.get(k, zero)

    def g_at(k: int) -> Polynomial:
        return g_coeffs.get(k, zero)

    matrix: list[list[Polynomial]] = []
    for row in range(n):
        matrix.append(
            [f_at(m - (col - row)) if 0 <= col - row <= m else zero for col in range(size)]
        )
    for row in range(m):
        matrix.append(
            [g_at(n - (col - row)) if 0 <= col - row <= n else zero for col in range(size)]
        )
    return matrix


def _bareiss_determinant(matrix: list[list[Polynomial]]) -> Polynomial:
    """Fraction-free determinant (Bareiss) over Z[x...]."""
    size = len(matrix)
    if size == 0:
        return Polynomial.constant(1)
    work = [row[:] for row in matrix]
    sign = 1
    previous_pivot = Polynomial.constant(1)
    for k in range(size - 1):
        if work[k][k].is_zero:
            swap = next(
                (r for r in range(k + 1, size) if not work[r][k].is_zero), None
            )
            if swap is None:
                return Polynomial.zero()
            work[k], work[swap] = work[swap], work[k]
            sign = -sign
        pivot = work[k][k]
        for i in range(k + 1, size):
            for j in range(k + 1, size):
                numerator = work[i][j] * pivot - work[i][k] * work[k][j]
                quotient = exact_divide(numerator, previous_pivot)
                if quotient is None:
                    raise RuntimeError("Bareiss division not exact (internal error)")
                work[i][j] = quotient
            work[i][k] = Polynomial.zero()
        previous_pivot = pivot
    result = work[size - 1][size - 1]
    return -result if sign < 0 else result


def resultant(f: Polynomial, g: Polynomial, var: str) -> Polynomial:
    """Resultant of ``f`` and ``g`` with respect to ``var``.

    Zero iff the two share a non-constant common factor involving ``var``
    (over the fraction field of the remaining variables).  Degenerate
    degrees follow the textbook conventions.
    """
    def safe_degree(p: Polynomial) -> int:
        return p.degree(var) if var in p.vars else (0 if not p.is_zero else -1)

    m = safe_degree(f)
    n = safe_degree(g)
    if f.is_zero or g.is_zero:
        return Polynomial.zero()
    if m <= 0 and n <= 0:
        return Polynomial.constant(1)
    if m <= 0:
        # res(c, g) = c^deg(g)
        return f ** n
    if n <= 0:
        return g ** m
    return _bareiss_determinant(sylvester_matrix(f, g, var)).trim()


def discriminant(f: Polynomial, var: str) -> Polynomial:
    """Discriminant of ``f`` with respect to ``var``.

    Zero exactly when ``f`` has a repeated factor involving ``var``.
    """
    n = f.degree(var)
    if n < 1:
        raise ValueError(f"discriminant needs degree >= 1 in {var!r}")
    res = resultant(f, f.derivative(var), var)
    lead = f.as_univariate(var)[n]
    quotient = exact_divide(res, lead)
    if quotient is None:
        raise RuntimeError("leading coefficient does not divide resultant")
    if (n * (n - 1) // 2) % 2:
        quotient = -quotient
    return quotient.trim()
