"""Monomial (term) orders for multivariate polynomials.

A *term order* decides which monomial of a polynomial is "leading"; the
division and kernel-extraction algorithms in this package are parametric in
the order.  Three classical admissible orders are provided:

``lex``
    Pure lexicographic: compare exponent vectors left to right.
``grlex``
    Graded lexicographic: compare total degree first, break ties with lex.
``grevlex``
    Graded reverse lexicographic: compare total degree first, break ties by
    the *smallest* exponent read right-to-left (the usual default in
    computer algebra because it tends to keep intermediate results small).

Each order is exposed as a key function mapping an exponent tuple to a
sortable key such that ``key(a) > key(b)`` iff monomial ``a`` is larger.
"""

from __future__ import annotations

from typing import Callable, Tuple

Exponents = Tuple[int, ...]
OrderKey = Callable[[Exponents], tuple]


def lex_key(exponents: Exponents) -> tuple:
    """Key for pure lexicographic order (first variable dominates)."""
    return exponents


def grlex_key(exponents: Exponents) -> tuple:
    """Key for graded lexicographic order (total degree, then lex)."""
    return (sum(exponents), exponents)


def grevlex_key(exponents: Exponents) -> tuple:
    """Key for graded reverse lexicographic order.

    Between monomials of equal total degree, the larger one is the one with
    the *smaller* exponent in the last variable where they differ.
    """
    return (sum(exponents), tuple(-e for e in reversed(exponents)))


_ORDERS: dict[str, OrderKey] = {
    "lex": lex_key,
    "grlex": grlex_key,
    "grevlex": grevlex_key,
}


def order_key(name: str) -> OrderKey:
    """Resolve an order name to its key function.

    Raises ``ValueError`` for unknown names so callers fail loudly instead
    of silently sorting with the wrong order.
    """
    try:
        return _ORDERS[name]
    except KeyError:
        known = ", ".join(sorted(_ORDERS))
        raise ValueError(f"unknown term order {name!r}; expected one of: {known}") from None


def available_orders() -> tuple[str, ...]:
    """Names of the supported term orders."""
    return tuple(sorted(_ORDERS))
