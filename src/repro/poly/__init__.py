"""Sparse multivariate polynomial arithmetic over the integers.

This subpackage is the from-scratch computer-algebra substrate standing in
for the Maple routines the paper drives (see DESIGN.md, substitution
table).  It provides the :class:`~repro.poly.polynomial.Polynomial` type,
term orders, division algorithms, and multivariate GCDs, on top of which
:mod:`repro.factor`, :mod:`repro.rings`, :mod:`repro.cse`, and
:mod:`repro.core` are built.
"""

from .division import (
    divide_out_all,
    divides,
    divmod_poly,
    exact_divide,
    pseudo_divmod,
)
from .gcd import (
    content_wrt,
    coprime,
    poly_gcd,
    poly_gcd_many,
    poly_lcm,
    primitive_wrt,
)
from .monomial import (
    mono_degree,
    mono_div,
    mono_divides,
    mono_gcd,
    mono_gcd_many,
    mono_is_one,
    mono_lcm,
    mono_literal_count,
    mono_mul,
    mono_one,
    mono_pow,
    mono_support,
)
from .orderings import available_orders, grevlex_key, grlex_key, lex_key, order_key
from .parser import PolynomialSyntaxError, parse_polynomial, parse_system
from .polynomial import Polynomial, poly_prod, poly_sum
from .printer import format_monomial, format_polynomial, format_term
from .resultant import discriminant, resultant, sylvester_matrix

__all__ = [
    "Polynomial",
    "PolynomialSyntaxError",
    "available_orders",
    "content_wrt",
    "coprime",
    "discriminant",
    "divide_out_all",
    "divides",
    "divmod_poly",
    "exact_divide",
    "format_monomial",
    "format_polynomial",
    "format_term",
    "grevlex_key",
    "grlex_key",
    "lex_key",
    "mono_degree",
    "mono_div",
    "mono_divides",
    "mono_gcd",
    "mono_gcd_many",
    "mono_is_one",
    "mono_lcm",
    "mono_literal_count",
    "mono_mul",
    "mono_one",
    "mono_pow",
    "mono_support",
    "order_key",
    "parse_polynomial",
    "parse_system",
    "poly_gcd",
    "poly_gcd_many",
    "poly_lcm",
    "poly_prod",
    "poly_sum",
    "primitive_wrt",
    "pseudo_divmod",
    "resultant",
    "sylvester_matrix",
]
