"""Operations on monomials represented as exponent tuples.

Throughout :mod:`repro.poly`, a monomial in variables ``(x_1, ..., x_d)`` is
an exponent tuple ``(e_1, ..., e_d)`` of non-negative integers denoting
``x_1^e_1 * ... * x_d^e_d``.  Keeping monomials as plain tuples (rather than
a class) keeps polynomial arithmetic allocation-light; this module gathers
the handful of operations the rest of the package needs.

In the terminology of the paper (Section 14.2.1, after Hosangadi et al.), a
*cube* is a monomial together with a coefficient; cube-level manipulation
for kernel extraction lives in :mod:`repro.cse`.
"""

from __future__ import annotations

from typing import Iterable, Tuple

Exponents = Tuple[int, ...]


def mono_one(nvars: int) -> Exponents:
    """The unit monomial (all exponents zero) over ``nvars`` variables."""
    return (0,) * nvars


def mono_mul(a: Exponents, b: Exponents) -> Exponents:
    """Product of two monomials (exponent-wise sum)."""
    return tuple(x + y for x, y in zip(a, b))


def mono_divides(a: Exponents, b: Exponents) -> bool:
    """True if monomial ``a`` divides monomial ``b`` (exponent-wise <=)."""
    return all(x <= y for x, y in zip(a, b))


def mono_div(a: Exponents, b: Exponents) -> Exponents:
    """Quotient ``a / b``; requires ``b`` to divide ``a``.

    Raises ``ValueError`` when the division is not exact, because a silent
    negative exponent would corrupt every downstream structure.
    """
    if not mono_divides(b, a):
        raise ValueError(f"monomial {b} does not divide {a}")
    return tuple(x - y for x, y in zip(a, b))


def mono_gcd(a: Exponents, b: Exponents) -> Exponents:
    """Greatest common divisor (exponent-wise minimum)."""
    return tuple(min(x, y) for x, y in zip(a, b))


def mono_lcm(a: Exponents, b: Exponents) -> Exponents:
    """Least common multiple (exponent-wise maximum)."""
    return tuple(max(x, y) for x, y in zip(a, b))


def mono_degree(a: Exponents) -> int:
    """Total degree (sum of exponents)."""
    return sum(a)


def mono_pow(a: Exponents, k: int) -> Exponents:
    """``k``-th power of a monomial; ``k`` must be non-negative."""
    if k < 0:
        raise ValueError(f"negative monomial power {k}")
    return tuple(e * k for e in a)


def mono_is_one(a: Exponents) -> bool:
    """True for the unit monomial."""
    return not any(a)


def mono_gcd_many(monomials: Iterable[Exponents]) -> Exponents:
    """GCD of a non-empty collection of monomials.

    This is the largest cube dividing every term of a polynomial — the
    co-kernel cube candidate used when making an expression *cube-free*.
    """
    it = iter(monomials)
    try:
        acc = next(it)
    except StopIteration:
        raise ValueError("mono_gcd_many() requires at least one monomial") from None
    for m in it:
        acc = mono_gcd(acc, m)
        if mono_is_one(acc):
            break
    return acc


def mono_support(a: Exponents) -> tuple[int, ...]:
    """Indices of the variables that actually appear in the monomial."""
    return tuple(i for i, e in enumerate(a) if e)


def mono_literal_count(a: Exponents) -> int:
    """Number of literals when the monomial is written as a product.

    ``x^2*y`` has three literals (``x``, ``x``, ``y``).  This is the cost
    notion used by kernel-extraction heuristics: implementing the cube as a
    product tree needs ``literal_count - 1`` multiplications.
    """
    return sum(a)
