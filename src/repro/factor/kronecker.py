"""Multivariate factorization via Kronecker substitution.

For the small, low-degree polynomials that arise in datapath synthesis,
the classical Kronecker trick is a perfectly good multivariate factorizer:
substitute ``x_i -> t^(D^i)`` with ``D`` larger than every per-variable
degree, factor the resulting univariate polynomial over Z, and recombine
subsets of its irreducible factors, inverting the substitution digit by
digit.  Candidates are verified by exact multivariate division, so the
result is always sound; on pathologically many modular factors the search
gives up and returns the input unfactored (best-effort, never wrong).
"""

from __future__ import annotations

import math
from itertools import combinations

from repro.poly import Polynomial, exact_divide

from .univariate import factor_squarefree_univariate

_SUBSET_BUDGET = 4096
_KRONECKER_VAR = "_t"


def _factor_univariate_full(poly: Polynomial, var: str) -> list[Polynomial]:
    """Irreducible factors *with repetition* of any univariate polynomial.

    The Kronecker image of a square-free multivariate polynomial need not
    be square-free (e.g. ``x^2 - y^2 -> t^2 - t^6``), so the image must go
    through square-free factorization before the mod-p machinery.
    """
    from .squarefree import square_free_factorization

    flat: list[Polynomial] = []
    square_free = square_free_factorization(poly)
    for base, multiplicity in square_free.factors:
        for irreducible in factor_squarefree_univariate(base, var):
            flat.extend([irreducible] * multiplicity)
    return flat


def _encode(poly: Polynomial, base: int) -> Polynomial:
    """Apply the Kronecker substitution ``x_i -> t^(base^i)``."""
    terms: dict[tuple[int, ...], int] = {}
    for exps, coeff in poly.terms.items():
        code = 0
        weight = 1
        for e in exps:
            code += e * weight
            weight *= base
        key = (code,)
        terms[key] = terms.get(key, 0) + coeff
    return Polynomial((_KRONECKER_VAR,), terms)


def _decode(poly: Polynomial, base: int, variables: tuple[str, ...]) -> Polynomial | None:
    """Invert the substitution; None when a digit overflows the base.

    Overflow means the candidate is not the image of a polynomial with
    per-variable degree below ``base``, so it cannot be a factor.
    """
    nvars = len(variables)
    terms: dict[tuple[int, ...], int] = {}
    for (code,), coeff in poly.terms.items():
        digits = []
        rest = code
        for _ in range(nvars):
            digits.append(rest % base)
            rest //= base
        if rest:
            return None
        key = tuple(digits)
        terms[key] = terms.get(key, 0) + coeff
    return Polynomial(variables, terms)


def factor_squarefree_kronecker(poly: Polynomial) -> list[Polynomial]:
    """Irreducible factors of a primitive square-free multivariate polynomial.

    Falls back to ``[poly]`` when the subset search exceeds its budget.
    """
    work = poly.trim()
    used = work.used_vars()
    if len(used) <= 1:
        if not used:
            return [poly]
        return [
            f.with_vars(poly.vars) if set(f.used_vars()) <= set(poly.vars) else f
            for f in factor_squarefree_univariate(work, used[0])
        ]

    base = max(work.degree(v) for v in used) + 1
    image = _encode(work, base)
    univariate_factors = _factor_univariate_full(image, _KRONECKER_VAR)
    if len(univariate_factors) == 1:
        return [poly]

    factors: list[Polynomial] = []
    remaining = list(univariate_factors)
    current = work
    subset_size = 1
    while 2 * subset_size <= len(remaining):
        if math.comb(len(remaining), subset_size) > _SUBSET_BUDGET:
            break
        progressed = False
        for subset in combinations(range(len(remaining)), subset_size):
            candidate_image = Polynomial.constant(1)
            for index in subset:
                candidate_image = candidate_image * remaining[index]
            candidate = _decode(candidate_image, base, used)
            if candidate is None:
                continue
            candidate = candidate.primitive_part()
            if candidate.is_constant:
                continue
            quotient = exact_divide(current, candidate)
            if quotient is not None:
                factors.append(candidate)
                current = quotient
                chosen = set(subset)
                remaining = [f for i, f in enumerate(remaining) if i not in chosen]
                progressed = True
                break
        if not progressed:
            subset_size += 1
    if not current.is_constant:
        factors.append(current)
    elif current.constant_term not in (1, -1) or not factors:
        # Leftover integer content (should not happen for primitive input,
        # but never drop it silently) or the degenerate constant input.
        factors.append(current)
    return [f.with_vars(poly.vars) for f in factors] if factors else [poly]
