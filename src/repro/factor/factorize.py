"""Complete factorization driver over Z.

Combines the pieces the way a computer-algebra system does: integer
content, square-free factorization (Yun), then full splitting of each
square-free base — univariate bases through big-prime Zassenhaus,
multivariate bases through Kronecker substitution.  This is the repo's
substitute for MATLAB's ``factor`` / Maple's ``factor`` in the paper's
flow.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.poly import Polynomial

from .kronecker import factor_squarefree_kronecker
from .squarefree import square_free_factorization


@dataclass(frozen=True)
class Factorization:
    """``content * prod(base^multiplicity)`` with irreducible bases."""

    content: int
    factors: tuple[tuple[Polynomial, int], ...]

    def expand(self) -> Polynomial:
        """Multiply the factorization back out."""
        result = Polynomial.constant(self.content)
        for base, multiplicity in self.factors:
            result = result * base ** multiplicity
        return result

    def __str__(self) -> str:
        parts = [] if self.content == 1 else [str(self.content)]
        for base, multiplicity in self.factors:
            text = f"({base})"
            if multiplicity > 1:
                text += f"^{multiplicity}"
            parts.append(text)
        return " * ".join(parts) if parts else "1"


def factor_polynomial(poly: Polynomial) -> Factorization:
    """Factor a polynomial into content and irreducible factors over Z.

    Sound by construction (every candidate is verified by exact division);
    complete for univariate input, and for multivariate input within the
    Kronecker subset budget — beyond it, an unfactored square-free base is
    returned intact rather than wrong.
    """
    if poly.is_zero:
        return Factorization(0, ())
    square_free = square_free_factorization(poly)
    collected: list[tuple[Polynomial, int]] = []
    for base, multiplicity in square_free.factors:
        for irreducible in factor_squarefree_kronecker(base):
            collected.append((irreducible.trim(), multiplicity))
    merged: dict[Polynomial, int] = {}
    order: list[Polynomial] = []
    for base, multiplicity in collected:
        if base in merged:
            merged[base] += multiplicity
        else:
            merged[base] = multiplicity
            order.append(base)
    return Factorization(square_free.content, tuple((b, merged[b]) for b in order))
