"""Horner-form decompositions (one of the paper's baselines).

Two flavours, matching how the literature uses "Horner form" for
multivariate datapaths:

* :func:`horner_univariate` — nest with respect to a single main variable;
  the polynomial coefficients of each power are implemented directly.
  This is the conservative scheme the paper's Table 14.1 "Horner form"
  column corresponds to (15 MULT / 4 ADD on the motivating system with
  main variable ``x``).
* :func:`horner_greedy` — fully recursive multivariate Horner: repeatedly
  pull out the most frequent variable and recurse into both the quotient
  and the coefficients.  Usually strictly better than the univariate
  scheme, still far from the paper's integrated method.
"""

from __future__ import annotations

from typing import Sequence

from repro.expr import Decomposition, Expr, make_add, make_mul, make_pow
from repro.expr.ast import Var, expr_from_polynomial
from repro.poly import Polynomial


def horner_univariate(poly: Polynomial, var: str | None = None) -> Expr:
    """Nested form in one main variable: ``c0 + x*(c1 + x*(c2 + ...))``.

    Consecutive missing powers are bridged with ``x^k`` factors.  The
    coefficient polynomials are emitted in expanded form.  When ``var`` is
    omitted the first used variable is taken (the paper's convention of a
    fixed main variable).
    """
    if var is None:
        used = poly.used_vars()
        if not used:
            return expr_from_polynomial(poly)
        var = used[0]
    if poly.degree(var) < 1:
        return expr_from_polynomial(poly)
    coeffs = poly.as_univariate(var)
    powers = sorted(coeffs, reverse=True)
    # Build from the highest power inward.
    acc: Expr | None = None
    previous_power = 0
    for power in powers:
        coeff_expr = expr_from_polynomial(coeffs[power])
        if acc is None:
            acc = coeff_expr
        else:
            gap = previous_power - power
            acc = make_add(make_mul(make_pow(Var(var), gap), acc), coeff_expr)
        previous_power = power
    if previous_power > 0:
        acc = make_mul(make_pow(Var(var), previous_power), acc)
    assert acc is not None
    return acc


def _most_frequent_variable(poly: Polynomial) -> str | None:
    """Variable occurring in the most terms (ties: earliest declared)."""
    best_var: str | None = None
    best_count = 0
    for index, var in enumerate(poly.vars):
        count = sum(1 for exps in poly.terms if exps[index])
        if count > best_count:
            best_count = count
            best_var = var
    return best_var if best_count >= 1 else None


def horner_greedy(poly: Polynomial) -> Expr:
    """Fully recursive multivariate Horner decomposition."""
    if poly.is_constant or len(poly) == 1:
        return expr_from_polynomial(poly)
    var = _most_frequent_variable(poly)
    if var is None:
        return expr_from_polynomial(poly)
    index = poly.vars.index(var)
    with_var = {e: c for e, c in poly.terms.items() if e[index]}
    without_var = {e: c for e, c in poly.terms.items() if not e[index]}
    if not with_var or len(with_var) == len(poly) == 1:
        return expr_from_polynomial(poly)
    shift = min(e[index] for e in with_var)
    quotient = Polynomial(
        poly.vars,
        {e[:index] + (e[index] - shift,) + e[index + 1:]: c for e, c in with_var.items()},
    )
    rest = Polynomial(poly.vars, without_var)
    quotient_expr = (
        horner_greedy(quotient) if len(quotient) > 1 else expr_from_polynomial(quotient)
    )
    nested = make_mul(make_pow(Var(var), shift), quotient_expr)
    if rest.is_zero:
        return nested
    return make_add(nested, horner_greedy(rest))


def horner_decomposition(
    system: Sequence[Polynomial], mode: str = "greedy", var: str | None = None
) -> Decomposition:
    """Horner-form decomposition of a whole system (no shared blocks).

    ``mode`` is ``"greedy"`` (recursive multivariate) or ``"univariate"``
    (single main variable, the paper's baseline flavour).
    """
    decomposition = Decomposition(method=f"horner-{mode}")
    for poly in system:
        if mode == "greedy":
            decomposition.outputs.append(horner_greedy(poly))
        elif mode == "univariate":
            decomposition.outputs.append(horner_univariate(poly, var))
        else:
            raise ValueError(f"unknown Horner mode {mode!r}")
    decomposition.validate(list(system))
    return decomposition
