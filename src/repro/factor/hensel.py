"""Classical Zassenhaus factorization with quadratic Hensel lifting.

:mod:`repro.factor.univariate` factors over Z with one *big* prime —
simple and fast in Python.  This module implements the textbook
alternative: factor mod a *small* prime, then lift the factorization
``f = g * h (mod p^k)`` quadratically (von zur Gathen & Gerhard,
Algorithm 15.10) up a balanced factor tree until the modulus exceeds
twice the Mignotte bound, and recombine.

Besides being the historically faithful algorithm (it is what Maple and
MATLAB run), it serves as an independent implementation for differential
testing: ``tests/factor/test_hensel.py`` checks both paths produce the
same irreducible factors.

Non-monic inputs are handled by the standard monicization transform
``F(y) = lc^(n-1) * f(y / lc)``, which is monic with integer
coefficients; factors map back via ``y -> lc * x`` followed by taking
primitive parts.
"""

from __future__ import annotations

from math import gcd

from repro.poly import Polynomial

from .univariate import _dense_exact_divide, _dense_primitive, mignotte_bound
from .zp import (
    next_prime,
    zp_add,
    zp_divmod,
    zp_factor_squarefree,
    zp_is_square_free,
    zp_monic,
    zp_mul,
    zp_sub,
    zp_trim,
)


def _poly_mul_mod(f: list[int], g: list[int], m: int) -> list[int]:
    return zp_trim(zp_mul([c % m for c in f], [c % m for c in g], m), m)


def _bezout(g: list[int], h: list[int], p: int) -> tuple[list[int], list[int]]:
    """``s, t`` with ``s g + t h = 1 (mod p)`` for coprime ``g, h`` mod p."""
    # extended Euclid over GF(p) on dense lists
    r0, r1 = zp_trim(g, p), zp_trim(h, p)
    s0, s1 = [1], []
    t0, t1 = [], [1]
    while r1:
        q, r = zp_divmod(r0, r1, p)
        r0, r1 = r1, r
        s0, s1 = s1, zp_sub(s0, zp_mul(q, s1, p), p)
        t0, t1 = t1, zp_sub(t0, zp_mul(q, t1, p), p)
    if len(r0) != 1:
        raise ValueError("factors are not coprime mod p")
    inv = pow(r0[0], p - 2, p)
    return zp_trim([c * inv for c in s0], p), zp_trim([c * inv for c in t0], p)


def _hensel_step(
    f: list[int],
    g: list[int],
    h: list[int],
    s: list[int],
    t: list[int],
    m: int,
) -> tuple[list[int], list[int], list[int], list[int]]:
    """One quadratic lift: ``f = g h`` and ``s g + t h = 1`` from mod m to mod m^2.

    ``h`` must be monic; the lifted ``h*`` stays monic.
    """
    m2 = m * m
    e = zp_trim(zp_sub(f, _poly_mul_mod(g, h, m2), m2), m2)
    se = _poly_mul_mod(s, e, m2)
    q, r = zp_divmod(se, zp_trim(h, m2), m2) if _is_unit_lead(h, m2) else (None, None)
    if q is None:
        raise RuntimeError("Hensel step requires monic h")
    g_star = zp_trim(
        zp_add(zp_add(g, _poly_mul_mod(t, e, m2), m2), _poly_mul_mod(q, g, m2), m2),
        m2,
    )
    h_star = zp_trim(zp_add(h, r, m2), m2)

    b = zp_trim(
        zp_sub(
            zp_add(_poly_mul_mod(s, g_star, m2), _poly_mul_mod(t, h_star, m2), m2),
            [1],
            m2,
        ),
        m2,
    )
    sb = _poly_mul_mod(s, b, m2)
    c, d = zp_divmod(sb, h_star, m2)
    s_star = zp_trim(zp_sub(s, d, m2), m2)
    t_star = zp_trim(
        zp_sub(zp_sub(t, _poly_mul_mod(t, b, m2), m2), _poly_mul_mod(c, g_star, m2), m2),
        m2,
    )
    return g_star, h_star, s_star, t_star


def _is_unit_lead(h: list[int], m: int) -> bool:
    return bool(h) and gcd(h[-1], m) == 1


def _lift_tree_mod(
    f: list[int], factors: list[list[int]], p: int, modulus: int
) -> list[list[int]]:
    """Recurse: lift the sub-product's own factorization to ``modulus``."""
    if len(factors) == 1:
        return [zp_trim(f, modulus)]
    mid = len(factors) // 2
    left = factors[:mid]
    right = factors[mid:]
    g = [1]
    for factor in left:
        g = zp_mul(g, factor, p)
    h = [1]
    for factor in right:
        h = zp_mul(h, factor, p)
    s, t = _bezout(g, h, p)
    m = p
    while m < modulus:
        g, h, s, t = _hensel_step(f, g, h, s, t, m)
        m *= m
    g = zp_trim(g, m)
    h = zp_trim(h, m)
    return _lift_tree_mod(g, left, p, m) + _lift_tree_mod(h, right, p, m)


def _symmetric(value: int, modulus: int) -> int:
    r = value % modulus
    if r > modulus // 2:
        r -= modulus
    return r


def _recombine_mod(
    coeffs: list[int], lifted: list[list[int]], modulus: int
) -> list[list[int]]:
    """Subset-search recombination at an arbitrary lifted modulus."""
    from itertools import combinations

    work = list(coeffs)
    remaining = list(lifted)
    found: list[list[int]] = []
    subset_size = 1
    while 2 * subset_size <= len(remaining):
        progressed = False
        for subset in combinations(range(len(remaining)), subset_size):
            lead = work[-1]
            candidate = [lead % modulus]
            for index in subset:
                candidate = _poly_mul_mod(candidate, remaining[index], modulus)
            candidate = [_symmetric(c, modulus) for c in candidate]
            candidate = _dense_primitive(candidate)
            if len(candidate) <= 1:
                continue
            quotient = _dense_exact_divide(work, candidate)
            if quotient is not None:
                found.append(candidate)
                work = quotient
                chosen = set(subset)
                remaining = [f for i, f in enumerate(remaining) if i not in chosen]
                progressed = True
                break
        if not progressed:
            subset_size += 1
    if len(work) > 1 or (len(work) == 1 and abs(work[0]) != 1):
        found.append(work)
    return found


def _monicize(coeffs: list[int]) -> tuple[list[int], int]:
    """``F(y) = lc^(n-1) f(y / lc)``: monic integer polynomial, plus lc."""
    lead = coeffs[-1]
    n = len(coeffs) - 1
    out = []
    for i, c in enumerate(coeffs):
        # coefficient of y^i picks up lc^(n-1-i)
        out.append(c * lead ** (n - 1 - i) if i < n else 1)
    return out, lead


def _demonicize(coeffs: list[int], lead: int) -> list[int]:
    """Map a factor of F back through ``y -> lc * x`` and take the primitive part."""
    out = [c * lead ** i for i, c in enumerate(coeffs)]
    return _dense_primitive(out)


def zassenhaus_factor(poly: Polynomial, var: str) -> list[Polynomial]:
    """Irreducible factors of a primitive square-free univariate polynomial.

    The small-prime + Hensel-lifting pipeline; functionally identical to
    :func:`repro.factor.univariate.factor_squarefree_univariate`.
    """
    coeffs = poly.to_dense(var)
    degree = len(coeffs) - 1
    if degree <= 1:
        return [poly]

    monic, lead = _monicize(coeffs)

    # Choose a small odd prime keeping the monic image square-free.
    p = 3
    while not zp_is_square_free(zp_trim(monic, p), p):
        p = next_prime(p)
    modular = zp_factor_squarefree(zp_monic(zp_trim(monic, p), p), p)
    if len(modular) == 1:
        return [poly]

    bound = 2 * mignotte_bound(monic) + 1
    modulus = p
    while modulus < bound:
        modulus *= modulus
    lifted = _lift_tree_mod(
        zp_trim(monic, modulus), modular, p, modulus
    )

    monic_factors = _recombine_mod(monic, lifted, modulus)
    factors = [_demonicize(f, lead) for f in monic_factors]

    # Verification: the product must reproduce the input (up to sign).
    product = [1]
    for factor in factors:
        product = _dense_mul(product, factor)
    product = _dense_primitive(product)
    reference = _dense_primitive(list(coeffs))
    if product != reference:
        negated = [-c for c in product]
        if negated != reference:
            raise RuntimeError("Hensel factorization failed verification")
    return [Polynomial.from_dense(f, var) for f in factors]


def _dense_mul(f: list[int], g: list[int]) -> list[int]:
    if not f or not g:
        return []
    out = [0] * (len(f) + len(g) - 1)
    for i, a in enumerate(f):
        for j, b in enumerate(g):
            out[i + j] += a * b
    while out and out[-1] == 0:
        out.pop()
    return out
