"""Factorization substrate (paper Section 14.3.2).

Square-free factorization (Yun), full factorization over Z (big-prime
Zassenhaus for univariate bases, Kronecker substitution for multivariate
ones), and the Horner-form baseline decompositions.
"""

from .factorize import Factorization, factor_polynomial
from .hensel import zassenhaus_factor
from .horner import (
    horner_decomposition,
    horner_greedy,
    horner_univariate,
)
from .kronecker import factor_squarefree_kronecker
from .squarefree import (
    SquareFreeFactorization,
    is_square_free,
    square_free_factorization,
    square_free_part,
)
from .univariate import (
    factor_squarefree_univariate,
    is_irreducible_univariate,
    mignotte_bound,
)

__all__ = [
    "Factorization",
    "SquareFreeFactorization",
    "factor_polynomial",
    "factor_squarefree_kronecker",
    "factor_squarefree_univariate",
    "horner_decomposition",
    "horner_greedy",
    "horner_univariate",
    "is_irreducible_univariate",
    "is_square_free",
    "mignotte_bound",
    "square_free_factorization",
    "square_free_part",
    "zassenhaus_factor",
]
