"""Square-free factorization (paper Section 14.3.2).

Implements Yun's algorithm over the integers and its multivariate
extension.  The output is the paper's Definition 14.3 form::

    u = c * s_1 * s_2^2 * ... * s_m^m

with integer content ``c`` and pairwise-coprime square-free ``s_i``.  The
square-free split is what turns ``x^2 + 2xy + y^2`` into ``(x + y)^2`` —
the transformation kernel/co-kernel factoring cannot find (Section 14.2.1,
"Symbolic Methods" limitation).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.poly import Polynomial, exact_divide, poly_gcd
from repro.poly.gcd import content_wrt, primitive_wrt


@dataclass(frozen=True)
class SquareFreeFactorization:
    """``content * prod(base^multiplicity)`` with square-free coprime bases."""

    content: int
    factors: tuple[tuple[Polynomial, int], ...]

    def expand(self) -> Polynomial:
        """Multiply the factorization back out."""
        result = Polynomial.constant(self.content)
        for base, multiplicity in self.factors:
            result = result * base ** multiplicity
        return result

    def is_trivial(self) -> bool:
        """True when no repeated structure was found (single multiplicity-1 factor)."""
        return all(m == 1 for _, m in self.factors)

    def __str__(self) -> str:
        parts = [] if self.content == 1 else [str(self.content)]
        for base, multiplicity in self.factors:
            text = f"({base})"
            if multiplicity > 1:
                text += f"^{multiplicity}"
            parts.append(text)
        return " * ".join(parts) if parts else "1"


def _exact(a: Polynomial, b: Polynomial) -> Polynomial:
    quotient = exact_divide(a, b)
    if quotient is None:
        raise RuntimeError("square-free factorization internal division failed")
    return quotient


def _yun(poly: Polynomial, var: str) -> list[tuple[Polynomial, int]]:
    """Yun's algorithm on a polynomial that is primitive with respect to ``var``.

    Returns ``[(s_i, i)]`` with non-constant square-free coprime ``s_i``.
    Works over Z because the characteristic is zero; all divisions below
    are exact by construction.
    """
    derivative = poly.derivative(var)
    if derivative.is_zero:
        # Constant in var (degree 0): nothing to split here.
        return [(poly, 1)] if not poly.is_constant else []
    g = poly_gcd(poly, derivative)
    if g.is_constant:
        return [(poly, 1)]
    w = _exact(poly, g)
    y = _exact(derivative, g)
    z = y - w.derivative(var)
    factors: list[tuple[Polynomial, int]] = []
    multiplicity = 1
    while True:
        if z.is_zero:
            if not w.is_constant:
                factors.append((w, multiplicity))
            break
        s = poly_gcd(w, z)
        if not s.is_constant:
            factors.append((s, multiplicity))
        w = _exact(w, s) if not s.is_constant else w
        y = _exact(z, s) if not s.is_constant else z
        z = y - w.derivative(var)
        multiplicity += 1
        if w.is_constant:
            break
    return factors


def square_free_factorization(poly: Polynomial) -> SquareFreeFactorization:
    """Full multivariate square-free factorization over Z.

    Strategy: split off the integer content, then recurse variable by
    variable — Yun's algorithm on the part that is primitive in the chosen
    variable, then a recursive call on the content (which involves only
    the remaining variables).
    """
    if poly.is_zero:
        return SquareFreeFactorization(0, ())
    content = poly.content()
    primitive = poly.primitive_part()
    factors = _square_free_primitive(primitive)
    merged = _merge_factors(factors)
    return SquareFreeFactorization(content, tuple(merged))


def _square_free_primitive(poly: Polynomial) -> list[tuple[Polynomial, int]]:
    if poly.is_constant:
        return []
    used = poly.used_vars()
    var = used[0]
    if len(used) == 1:
        return _yun(poly, var)
    cont = content_wrt(poly, var)
    prim = primitive_wrt(poly, var)
    factors = _yun(prim, var)
    factors.extend(_square_free_primitive(cont.primitive_part()))
    return factors


def _merge_factors(
    factors: list[tuple[Polynomial, int]]
) -> list[tuple[Polynomial, int]]:
    """Combine equal bases (can occur when content and primitive share one)."""
    merged: dict[Polynomial, int] = {}
    order: list[Polynomial] = []
    for base, multiplicity in factors:
        base = base.trim()
        if base in merged:
            merged[base] += multiplicity
        else:
            merged[base] = multiplicity
            order.append(base)
    return [(base, merged[base]) for base in order]


def is_square_free(poly: Polynomial) -> bool:
    """True when no non-constant square divides the polynomial.

    Definition 14.2 of the paper.  Multivariate criterion: with respect to
    a chosen main variable, the primitive part must satisfy
    ``gcd(p, dp/dx) = 1`` (all its factors involve ``x``), and the content
    (whose factors do not involve ``x``) must be square-free recursively.
    Naively testing ``gcd(p, dp/dx_i)`` for every variable is wrong:
    ``x^2 y + x = x(xy + 1)`` is square-free, yet its ``y``-derivative
    ``x^2`` shares the factor ``x``.
    """
    if poly.is_zero:
        return False
    primitive = poly.primitive_part()
    if primitive.is_constant:
        return True
    var = primitive.used_vars()[0]
    cont = content_wrt(primitive, var)
    prim = primitive_wrt(primitive, var)
    g = poly_gcd(prim, prim.derivative(var))
    if not g.is_constant:
        return False
    return is_square_free(cont)


def square_free_part(poly: Polynomial) -> Polynomial:
    """The product of the distinct irreducible factors (radical), primitive."""
    factorization = square_free_factorization(poly)
    result = Polynomial.constant(1)
    for base, _ in factorization.factors:
        result = result * base
    return result.primitive_part()
