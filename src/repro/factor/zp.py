"""Dense univariate polynomial arithmetic over the prime fields GF(p).

The modular engine behind :mod:`repro.factor.univariate`: polynomials are
coefficient lists ``[c0, c1, ...]`` with entries in ``[0, p)`` and no
trailing zeros.  Includes the finite-field algorithms needed for
factorization — monic Euclidean division, GCD, modular exponentiation by
repeated squaring, distinct-degree factorization, and Cantor–Zassenhaus
equal-degree splitting — plus Miller–Rabin primality for choosing the
working prime.
"""

from __future__ import annotations

import random
from typing import Iterable, List

ZpPoly = List[int]


def zp_trim(coeffs: Iterable[int], p: int) -> ZpPoly:
    """Normalize to canonical form: reduce mod p, strip trailing zeros."""
    out = [c % p for c in coeffs]
    while out and out[-1] == 0:
        out.pop()
    return out


def zp_degree(f: ZpPoly) -> int:
    """Degree; -1 for the zero polynomial."""
    return len(f) - 1


def zp_is_zero(f: ZpPoly) -> bool:
    return not f


def zp_add(f: ZpPoly, g: ZpPoly, p: int) -> ZpPoly:
    n = max(len(f), len(g))
    out = [0] * n
    for i, c in enumerate(f):
        out[i] = c
    for i, c in enumerate(g):
        out[i] = (out[i] + c) % p
    while out and out[-1] == 0:
        out.pop()
    return out


def zp_sub(f: ZpPoly, g: ZpPoly, p: int) -> ZpPoly:
    n = max(len(f), len(g))
    out = [0] * n
    for i, c in enumerate(f):
        out[i] = c
    for i, c in enumerate(g):
        out[i] = (out[i] - c) % p
    while out and out[-1] == 0:
        out.pop()
    return out


def zp_mul(f: ZpPoly, g: ZpPoly, p: int) -> ZpPoly:
    if not f or not g:
        return []
    out = [0] * (len(f) + len(g) - 1)
    for i, a in enumerate(f):
        if a == 0:
            continue
        for j, b in enumerate(g):
            out[i + j] = (out[i + j] + a * b) % p
    while out and out[-1] == 0:
        out.pop()
    return out


def zp_scale(f: ZpPoly, k: int, p: int) -> ZpPoly:
    k %= p
    if k == 0:
        return []
    return zp_trim((c * k for c in f), p)


def zp_divmod(f: ZpPoly, g: ZpPoly, p: int) -> tuple[ZpPoly, ZpPoly]:
    """Euclidean division; ``g`` must be non-zero."""
    if not g:
        raise ZeroDivisionError("division by the zero polynomial over GF(p)")
    if zp_degree(f) < zp_degree(g):
        return [], list(f)
    inv_lead = pow(g[-1], p - 2, p)
    remainder = list(f)
    quotient = [0] * (len(f) - len(g) + 1)
    for shift in range(len(f) - len(g), -1, -1):
        coeff = (remainder[shift + len(g) - 1] * inv_lead) % p
        if coeff:
            quotient[shift] = coeff
            for i, b in enumerate(g):
                remainder[shift + i] = (remainder[shift + i] - coeff * b) % p
    while remainder and remainder[-1] == 0:
        remainder.pop()
    while quotient and quotient[-1] == 0:
        quotient.pop()
    return quotient, remainder


def zp_mod(f: ZpPoly, g: ZpPoly, p: int) -> ZpPoly:
    return zp_divmod(f, g, p)[1]


def zp_monic(f: ZpPoly, p: int) -> ZpPoly:
    """Scale to leading coefficient 1 (zero stays zero)."""
    if not f:
        return []
    return zp_scale(f, pow(f[-1], p - 2, p), p)


def zp_gcd(f: ZpPoly, g: ZpPoly, p: int) -> ZpPoly:
    """Monic GCD via the Euclidean algorithm."""
    a, b = list(f), list(g)
    while b:
        a, b = b, zp_mod(a, b, p)
    return zp_monic(a, p)


def zp_derivative(f: ZpPoly, p: int) -> ZpPoly:
    return zp_trim((i * c for i, c in enumerate(f) if i), p) if len(f) > 1 else []


def zp_pow_mod(base: ZpPoly, exponent: int, modulus: ZpPoly, p: int) -> ZpPoly:
    """``base^exponent mod modulus`` by square-and-multiply."""
    result: ZpPoly = [1]
    acc = zp_mod(base, modulus, p)
    e = exponent
    while e:
        if e & 1:
            result = zp_mod(zp_mul(result, acc, p), modulus, p)
        e >>= 1
        if e:
            acc = zp_mod(zp_mul(acc, acc, p), modulus, p)
    return result


def zp_eval(f: ZpPoly, x: int, p: int) -> int:
    """Horner evaluation of ``f`` at ``x`` over GF(p)."""
    acc = 0
    for c in reversed(f):
        acc = (acc * x + c) % p
    return acc


def zp_is_square_free(f: ZpPoly, p: int) -> bool:
    """True when ``gcd(f, f') == 1`` over GF(p)."""
    d = zp_derivative(f, p)
    if not d:
        return zp_degree(f) <= 0
    return zp_degree(zp_gcd(f, d, p)) == 0


# ----------------------------------------------------------------------
# Factorization over GF(p): distinct-degree + Cantor-Zassenhaus
# ----------------------------------------------------------------------


def distinct_degree_factorization(
    f: ZpPoly, p: int
) -> list[tuple[ZpPoly, int]]:
    """Split a monic square-free ``f`` into products of equal-degree factors.

    Returns ``[(g_d, d)]`` where ``g_d`` is the product of all monic
    irreducible factors of degree exactly ``d``.
    """
    result: list[tuple[ZpPoly, int]] = []
    work = list(f)
    x_power = [0, 1]  # x
    degree = 0
    while zp_degree(work) > 0:
        degree += 1
        if 2 * degree > zp_degree(work):
            # What remains is irreducible.
            result.append((work, zp_degree(work)))
            break
        x_power = zp_pow_mod(x_power, p, work, p)
        # gcd(work, x^(p^degree) - x)
        candidate = zp_gcd(work, zp_sub(x_power, [0, 1], p), p)
        if zp_degree(candidate) > 0:
            result.append((candidate, degree))
            work, remainder = zp_divmod(work, candidate, p)
            if remainder:
                raise RuntimeError("DDF division not exact (internal error)")
            x_power = zp_mod(x_power, work, p)
    return result


def equal_degree_factorization(
    f: ZpPoly, degree: int, p: int, rng: random.Random
) -> list[ZpPoly]:
    """Cantor-Zassenhaus splitting of a monic product of degree-``d`` irreducibles.

    Requires ``p`` odd (the factorization driver never chooses p = 2).
    """
    n = zp_degree(f)
    if n == degree:
        return [f]
    if n % degree:
        raise ValueError(f"degree {n} is not a multiple of {degree}")
    exponent = (p ** degree - 1) // 2
    while True:
        candidate = [rng.randrange(p) for _ in range(n)]
        candidate = zp_trim(candidate, p)
        if zp_degree(candidate) < 1:
            continue
        g = zp_gcd(f, candidate, p)
        if 0 < zp_degree(g) < n:
            split = g
        else:
            power = zp_pow_mod(candidate, exponent, f, p)
            split = zp_gcd(f, zp_sub(power, [1], p), p)
            if not (0 < zp_degree(split) < n):
                continue
        quotient, remainder = zp_divmod(f, split, p)
        if remainder:
            raise RuntimeError("EDF division not exact (internal error)")
        left = equal_degree_factorization(zp_monic(split, p), degree, p, rng)
        right = equal_degree_factorization(zp_monic(quotient, p), degree, p, rng)
        return left + right


def zp_factor_squarefree(f: ZpPoly, p: int, seed: int = 0) -> list[ZpPoly]:
    """All monic irreducible factors of a monic square-free ``f`` over GF(p)."""
    rng = random.Random(seed or 0xC0FFEE)
    factors: list[ZpPoly] = []
    for product, degree in distinct_degree_factorization(f, p):
        factors.extend(equal_degree_factorization(product, degree, p, rng))
    factors.sort()
    return factors


# ----------------------------------------------------------------------
# Primality (for choosing the working prime of the big-prime Zassenhaus)
# ----------------------------------------------------------------------

_MR_BASES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)


def is_probable_prime(n: int) -> bool:
    """Miller-Rabin with fixed bases (deterministic below 3.3 * 10^24)."""
    if n < 2:
        return False
    for base in _MR_BASES:
        if n % base == 0:
            return n == base
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for base in _MR_BASES:
        x = pow(base, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def next_prime(n: int) -> int:
    """Smallest (probable) prime strictly greater than ``n``."""
    candidate = n + 1
    if candidate <= 2:
        return 2
    if candidate % 2 == 0:
        candidate += 1
    while not is_probable_prime(candidate):
        candidate += 2
    return candidate
