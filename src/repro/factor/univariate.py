"""Univariate factorization over the integers.

The deeper factorization step behind the paper's Example 14.3, where the
square-free factors ``(x^2 - 1)`` and ``(x^2 - 4)`` are still reducible.
The paper calls MATLAB's ``factor``; we implement the *big-prime
Zassenhaus* method:

1. bound the factor coefficients with the Mignotte bound,
2. choose a prime ``p`` larger than twice the bound (Python integers make
   a several-hundred-bit prime as cheap as a machine word, so no Hensel
   lifting is needed),
3. factor mod ``p`` with distinct-degree + Cantor-Zassenhaus splitting
   (:mod:`repro.factor.zp`),
4. recombine modular factors into true integer factors by subset search
   with symmetric lifting and trial division.
"""

from __future__ import annotations

from itertools import combinations
from math import gcd, isqrt

from repro.poly import Polynomial

from .zp import (
    next_prime,
    zp_is_square_free,
    zp_factor_squarefree,
    zp_monic,
    zp_mul,
    zp_trim,
)


def mignotte_bound(coeffs: list[int]) -> int:
    """An integer upper bound on the coefficients of any factor.

    Uses ``|g|_inf <= 2^n * sqrt(n+1) * |f|_inf`` (a standard relaxation of
    the Mignotte bound), rounded up.
    """
    n = len(coeffs) - 1
    height = max(abs(c) for c in coeffs)
    root = isqrt(n + 1)
    if root * root < n + 1:
        root += 1
    return (1 << n) * root * height


def _symmetric(value: int, p: int) -> int:
    """Map a residue to the symmetric range ``(-p/2, p/2]``."""
    r = value % p
    if r > p // 2:
        r -= p
    return r


def _dense_primitive(coeffs: list[int]) -> list[int]:
    g = 0
    for c in coeffs:
        g = gcd(g, c)
        if g == 1:
            return list(coeffs)
    if g == 0:
        return list(coeffs)
    if coeffs[-1] < 0:
        g = -g
    return [c // g for c in coeffs]


def _dense_divmod(f: list[int], g: list[int]) -> tuple[list[int], list[int]] | None:
    """Exact-friendly division over Z; None when a coefficient fails to divide."""
    if not g:
        raise ZeroDivisionError("division by zero polynomial")
    remainder = list(f)
    if len(remainder) < len(g):
        return None if any(remainder) else ([], remainder)
    quotient = [0] * (len(remainder) - len(g) + 1)
    for shift in range(len(remainder) - len(g), -1, -1):
        lead = remainder[shift + len(g) - 1]
        if lead % g[-1]:
            return None
        coeff = lead // g[-1]
        quotient[shift] = coeff
        if coeff:
            for i, b in enumerate(g):
                remainder[shift + i] -= coeff * b
    while remainder and remainder[-1] == 0:
        remainder.pop()
    return quotient, remainder


def _dense_exact_divide(f: list[int], g: list[int]) -> list[int] | None:
    result = _dense_divmod(f, g)
    if result is None:
        return None
    quotient, remainder = result
    return quotient if not remainder else None


def factor_squarefree_univariate(poly: Polynomial, var: str) -> list[Polynomial]:
    """Irreducible factors of a primitive square-free univariate polynomial.

    The product of the returned factors equals ``poly`` up to sign of the
    leading coefficient (inputs are expected primitive with a positive
    leading coefficient, as produced by square-free factorization).
    """
    coeffs = poly.to_dense(var)
    factors = _factor_squarefree_dense(coeffs)
    return [Polynomial.from_dense(f, var) for f in factors]


def _factor_squarefree_dense(coeffs: list[int]) -> list[list[int]]:
    degree = len(coeffs) - 1
    if degree <= 0:
        return [list(coeffs)] if any(coeffs) and abs(coeffs[0]) != 1 else []
    if degree == 1:
        return [list(coeffs)]

    lead = coeffs[-1]
    bound = mignotte_bound(coeffs)
    p = next_prime(2 * abs(lead) * bound + 1)
    # The prime must keep f square-free mod p; only finitely many fail.
    while lead % p == 0 or not zp_is_square_free(zp_trim(coeffs, p), p):
        p = next_prime(p)

    monic_mod = zp_monic(zp_trim(coeffs, p), p)
    modular = zp_factor_squarefree(monic_mod, p)
    if len(modular) == 1:
        return [list(coeffs)]

    return _recombine(coeffs, modular, p)


def _recombine(
    coeffs: list[int], modular: list[list[int]], p: int
) -> list[list[int]]:
    """Subset-search recombination of modular factors into integer factors."""
    work = list(coeffs)
    remaining = list(modular)
    found: list[list[int]] = []
    subset_size = 1
    while 2 * subset_size <= len(remaining):
        progressed = False
        for subset in combinations(range(len(remaining)), subset_size):
            lead = work[-1]
            candidate = [lead]
            for index in subset:
                candidate = zp_mul(candidate, remaining[index], p)
            candidate = [_symmetric(c, p) for c in candidate]
            candidate = _dense_primitive(candidate)
            if len(candidate) <= 1:
                continue
            quotient = _dense_exact_divide(work, candidate)
            if quotient is not None:
                found.append(candidate)
                work = quotient
                chosen = set(subset)
                remaining = [f for i, f in enumerate(remaining) if i not in chosen]
                progressed = True
                break
        if not progressed:
            subset_size += 1
    if len(work) > 1 or (len(work) == 1 and abs(work[0]) != 1):
        found.append(work)
    return found


def is_irreducible_univariate(poly: Polynomial, var: str) -> bool:
    """True when a primitive square-free univariate polynomial is irreducible."""
    if poly.degree(var) <= 0:
        return False
    return len(factor_squarefree_univariate(poly, var)) == 1
