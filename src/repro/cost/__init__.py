"""Hardware cost models: the repo's Design Compiler substitute."""

from .estimate import (
    HardwareReport,
    estimate_decomposition,
    estimate_graph,
    node_area,
    node_delay,
)
from .hardware import (
    adder_area,
    adder_delay,
    constant_multiplier_area,
    constant_multiplier_delay,
    csa_tree_area,
    csa_tree_delay,
    csd_digits,
    csd_nonzero_count,
    multiplier_area,
    multiplier_delay,
)
from .model import DEFAULT_MODEL, TechnologyModel
from .power import (
    PowerReport,
    estimate_power,
    estimate_power_graph,
    node_activities,
)

__all__ = [
    "PowerReport",
    "estimate_power",
    "estimate_power_graph",
    "node_activities",
    "DEFAULT_MODEL",
    "HardwareReport",
    "TechnologyModel",
    "adder_area",
    "adder_delay",
    "constant_multiplier_area",
    "constant_multiplier_delay",
    "csa_tree_area",
    "csa_tree_delay",
    "csd_digits",
    "csd_nonzero_count",
    "estimate_decomposition",
    "estimate_graph",
    "multiplier_area",
    "multiplier_delay",
    "node_area",
    "node_delay",
]
