"""Technology model — the stand-in for the Synopsys library of the paper.

The paper synthesizes each block with Design Compiler and reports area in
library units and delay in nanoseconds.  Without that 2009 standard-cell
library the absolute numbers are unmatchable, so this model prices
arithmetic in *gate equivalents* (NAND2-equivalent area) and *gate
delays*, with a configurable scale to ns.  The defaults follow the usual
static-CMOS bookkeeping (a full adder is about 6 NAND2 and 2 gate delays
through carry), which preserves the quantity the experiment actually
tests: the ratio between implementations.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TechnologyModel:
    """Area (NAND2-equivalents) and delay (gate units) of the primitives."""

    full_adder_area: float = 6.0
    half_adder_area: float = 3.0
    and_gate_area: float = 1.5
    inverter_area: float = 0.7
    register_area: float = 5.0  # unused by combinational estimates, kept for extensions

    full_adder_delay: float = 2.0   # carry-to-carry
    and_gate_delay: float = 1.0
    gate_delay_ns: float = 0.045    # scale factor: one gate delay in ns (90nm-ish)
    area_unit_um2: float = 3.2      # one NAND2 in um^2 (90nm-ish)

    def to_ns(self, gate_delays: float) -> float:
        """Convert gate delays to nanoseconds."""
        return gate_delays * self.gate_delay_ns

    def to_um2(self, nand2_equivalents: float) -> float:
        """Convert NAND2-equivalents to um^2."""
        return nand2_equivalents * self.area_unit_um2


DEFAULT_MODEL = TechnologyModel()
