"""System-level area/delay estimation (the Design Compiler substitute).

Lowers a decomposition to a shared dataflow graph, prices every operator
node with the width-aware models of :mod:`repro.cost.hardware`, sums the
area, and walks the critical path for delay.  The output mirrors the
columns of the paper's Table 14.3: area (library units / um^2) and delay
(ns).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dfg import DataFlowGraph, Node, NodeKind, build_dfg, critical_path
from repro.expr import Decomposition
from repro.rings import BitVectorSignature

from .hardware import (
    adder_area,
    adder_delay,
    constant_multiplier_area,
    constant_multiplier_delay,
    multiplier_area,
    multiplier_delay,
)
from .model import DEFAULT_MODEL, TechnologyModel


@dataclass(frozen=True)
class HardwareReport:
    """Area/delay estimate plus a resource census."""

    area: float          # NAND2 equivalents
    delay: float         # gate delays
    area_um2: float
    delay_ns: float
    multipliers: int
    adders: int
    constant_multipliers: int
    nodes: int

    def __str__(self) -> str:
        return (
            f"area={self.area:.0f} GE ({self.area_um2:.0f} um^2), "
            f"delay={self.delay:.0f} gates ({self.delay_ns:.2f} ns), "
            f"{self.multipliers} MUL / {self.adders} ADD / "
            f"{self.constant_multipliers} CMUL"
        )


def node_area(graph: DataFlowGraph, node: Node,
              model: TechnologyModel = DEFAULT_MODEL) -> float:
    """Area of one DFG node under the technology model."""
    if node.kind in (NodeKind.ADD, NodeKind.SUB):
        return adder_area(node.width, model)
    if node.kind == NodeKind.MUL:
        a, b = (graph.nodes[i].width for i in node.operands)
        return multiplier_area(a, b, model)
    if node.kind == NodeKind.CMUL:
        (operand,) = node.operands
        assert node.value is not None
        return constant_multiplier_area(node.value, graph.nodes[operand].width, model)
    return 0.0


def node_delay(graph: DataFlowGraph, node: Node,
               model: TechnologyModel = DEFAULT_MODEL) -> float:
    """Delay of one DFG node under the technology model."""
    if node.kind in (NodeKind.ADD, NodeKind.SUB):
        return adder_delay(node.width, model)
    if node.kind == NodeKind.MUL:
        a, b = (graph.nodes[i].width for i in node.operands)
        return multiplier_delay(a, b, model)
    if node.kind == NodeKind.CMUL:
        (operand,) = node.operands
        assert node.value is not None
        return constant_multiplier_delay(node.value, graph.nodes[operand].width, model)
    return 0.0


def estimate_graph(
    graph: DataFlowGraph, model: TechnologyModel = DEFAULT_MODEL
) -> HardwareReport:
    """Price an already-built dataflow graph."""
    area = sum(node_area(graph, node, model) for node in graph.nodes)
    delay, _ = critical_path(graph, lambda node: node_delay(graph, node, model))
    return HardwareReport(
        area=area,
        delay=delay,
        area_um2=model.to_um2(area),
        delay_ns=model.to_ns(delay),
        multipliers=graph.count(NodeKind.MUL),
        adders=graph.count(NodeKind.ADD) + graph.count(NodeKind.SUB),
        constant_multipliers=graph.count(NodeKind.CMUL),
        nodes=len(graph.nodes),
    )


def estimate_decomposition(
    decomposition: Decomposition,
    signature: BitVectorSignature,
    model: TechnologyModel = DEFAULT_MODEL,
) -> HardwareReport:
    """Lower a decomposition and estimate its hardware cost."""
    return estimate_graph(build_dfg(decomposition, signature), model)
