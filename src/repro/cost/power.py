"""Dynamic-power estimation (the paper's stated future work).

The conclusion of the paper: "as datapath designs consume a lot of power,
we would like to investigate the use of algebraic transformations in
low-power synthesis."  This module provides the estimator such a study
needs: a word-level switching-activity model propagated through the
dataflow graph, with dynamic power proportional to switched capacitance::

    P_dyn  ~  sum_nodes  activity(node) * capacitance(node)

Capacitance is approximated by the node's area (gate count tracks
switched capacitance to first order); activity is a per-node toggle
probability propagated from the inputs:

* inputs toggle with probability ``input_activity`` (default 0.5 — random
  data),
* constants never toggle,
* an operator's output toggles when any driving input toggles:
  ``a_out = 1 - prod(1 - a_in)`` (the standard word-level OR model),
* a *shared* block is computed once, so its capacitance is charged once —
  which is exactly why the paper's block sharing saves power along with
  area.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dfg import DataFlowGraph, NodeKind, build_dfg
from repro.expr import Decomposition
from repro.rings import BitVectorSignature

from .estimate import node_area
from .model import DEFAULT_MODEL, TechnologyModel


@dataclass(frozen=True)
class PowerReport:
    """Switched-capacitance estimate (arbitrary units: GE * activity)."""

    switched_capacitance: float
    total_capacitance: float
    mean_activity: float

    def __str__(self) -> str:
        return (
            f"switched capacitance {self.switched_capacitance:.0f} "
            f"(of {self.total_capacitance:.0f} total, "
            f"mean activity {self.mean_activity:.2f})"
        )


def node_activities(
    graph: DataFlowGraph, input_activity: float = 0.5
) -> dict[int, float]:
    """Word-level toggle probability per node."""
    if not 0.0 <= input_activity <= 1.0:
        raise ValueError(f"activity must be a probability, got {input_activity}")
    activity: dict[int, float] = {}
    for node in graph.nodes:
        if node.kind == NodeKind.INPUT:
            activity[node.index] = input_activity
        elif node.kind == NodeKind.CONST:
            activity[node.index] = 0.0
        else:
            stays_quiet = 1.0
            for operand in node.operands:
                stays_quiet *= 1.0 - activity[operand]
            activity[node.index] = 1.0 - stays_quiet
    return activity


def estimate_power_graph(
    graph: DataFlowGraph,
    model: TechnologyModel = DEFAULT_MODEL,
    input_activity: float = 0.5,
) -> PowerReport:
    """Switched-capacitance estimate of an already-built graph."""
    activity = node_activities(graph, input_activity)
    switched = 0.0
    total = 0.0
    weights = 0.0
    count = 0
    for node in graph.nodes:
        if not node.is_operator():
            continue
        area = node_area(graph, node, model)
        switched += activity[node.index] * area
        total += area
        weights += activity[node.index]
        count += 1
    mean_activity = weights / count if count else 0.0
    return PowerReport(switched, total, mean_activity)


def estimate_power(
    decomposition: Decomposition,
    signature: BitVectorSignature,
    model: TechnologyModel = DEFAULT_MODEL,
    input_activity: float = 0.5,
) -> PowerReport:
    """Lower a decomposition and estimate its dynamic power."""
    return estimate_power_graph(
        build_dfg(decomposition, signature), model, input_activity
    )
