"""Area/delay models of the datapath resources.

* ``adder(w)`` — ripple-carry: ``w`` full adders, carry chain delay.
  (Ripple matches the paper's area-first synthesis; the resulting delay
  penalty is exactly the trade-off Table 14.3 reports.)
* ``multiplier(w1, w2)`` — array multiplier: ``w1*w2`` partial-product
  AND gates plus ``(w1-1)`` rows of ``w2``-bit carry-save adders; delay
  crosses roughly ``w1 + w2`` cells.
* ``constant_multiplier(c, w)`` — canonical-signed-digit shift-add
  network: one adder/subtractor per non-zero CSD digit beyond the first
  (shifts are free wiring), arranged as a balanced tree for delay.
"""

from __future__ import annotations

from math import ceil, log2

from .model import DEFAULT_MODEL, TechnologyModel


def csd_digits(value: int) -> list[int]:
    """Canonical signed-digit recoding (least-significant first).

    Every digit is -1, 0 or +1 and no two adjacent digits are non-zero;
    this minimizes the number of add/subtract stages of a constant
    multiplier.
    """
    if value == 0:
        return [0]
    digits: list[int] = []
    n = abs(value)
    while n:
        if n & 1:
            remainder = 2 - (n % 4)  # +1 if n % 4 == 1, -1 if n % 4 == 3
            digits.append(remainder)
            n -= remainder
        else:
            digits.append(0)
        n >>= 1
    if value < 0:
        digits = [-d for d in digits]
    return digits


def csd_nonzero_count(value: int) -> int:
    """Number of non-zero CSD digits (add/sub terms of the shift-add net)."""
    return sum(1 for d in csd_digits(value) if d)


def adder_area(width: int, model: TechnologyModel = DEFAULT_MODEL) -> float:
    """Ripple-carry adder (or subtractor) area."""
    return width * model.full_adder_area


def adder_delay(width: int, model: TechnologyModel = DEFAULT_MODEL) -> float:
    """Ripple-carry adder delay (carry chain)."""
    return width * model.full_adder_delay


def multiplier_area(
    width_a: int, width_b: int, model: TechnologyModel = DEFAULT_MODEL
) -> float:
    """Array multiplier area: partial products + carry-save reduction."""
    partial_products = width_a * width_b * model.and_gate_area
    reduction = max(width_a - 1, 0) * width_b * model.full_adder_area
    return partial_products + reduction


def multiplier_delay(
    width_a: int, width_b: int, model: TechnologyModel = DEFAULT_MODEL
) -> float:
    """Array multiplier delay across the cell diagonal."""
    return model.and_gate_delay + (width_a + width_b - 2) * model.full_adder_delay


def csa_tree_area(
    operands: int, width: int, model: TechnologyModel = DEFAULT_MODEL
) -> float:
    """Carry-save adder tree summing N operands (Verma & Ienne [24]).

    ``N-2`` rows of 3:2 compressors (each ``width`` full adders) followed
    by one carry-propagate adder.  For N <= 2 this degenerates to a plain
    adder.
    """
    if operands < 2:
        return 0.0
    compressors = max(operands - 2, 0)
    return compressors * width * model.full_adder_area + adder_area(width, model)


def csa_tree_delay(
    operands: int, width: int, model: TechnologyModel = DEFAULT_MODEL
) -> float:
    """Carry-save tree delay: log-depth compression + one carry chain.

    Each 3:2 compression level costs a single full-adder delay (no carry
    propagation inside the tree); a Wallace-style tree compresses N
    operands in about ``log_{3/2}(N/2)`` levels.
    """
    if operands < 2:
        return 0.0
    from math import ceil, log

    levels = 0 if operands <= 2 else ceil(log(operands / 2.0, 1.5))
    return levels * model.full_adder_delay + adder_delay(width, model)


def constant_multiplier_area(
    coefficient: int, width: int, model: TechnologyModel = DEFAULT_MODEL
) -> float:
    """CSD shift-add network area for multiplying a width-bit bus by a constant."""
    stages = max(csd_nonzero_count(coefficient) - 1, 0)
    if coefficient < 0:
        stages = max(stages, 1)  # at least a negation stage
    operand_width = width + max(abs(coefficient).bit_length(), 1)
    return stages * adder_area(operand_width, model)


def constant_multiplier_delay(
    coefficient: int, width: int, model: TechnologyModel = DEFAULT_MODEL
) -> float:
    """CSD shift-add network delay (balanced adder tree)."""
    nonzero = csd_nonzero_count(coefficient)
    stages = max(nonzero - 1, 0)
    if coefficient < 0:
        stages = max(stages, 1)
    if stages == 0:
        return 0.0
    operand_width = width + max(abs(coefficient).bit_length(), 1)
    tree_depth = ceil(log2(nonzero)) if nonzero > 1 else 1
    return tree_depth * adder_delay(operand_width, model)
