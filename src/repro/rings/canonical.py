"""Chen's canonical form for polynomial functions over Z_2^m (Sec. 14.3.1).

A datapath with input bit-vectors ``x_i`` of widths ``n_i`` and an output
of width ``m`` computes a *function* ``Z_2^n1 x ... x Z_2^nd -> Z_2^m``.
Distinct integer polynomials can compute the same function (vanishing
polynomials exist); Chen's theorem gives every such function a unique
representative::

    F = sum_k  c_k * Y_k1(x_1) * ... * Y_kd(x_d)

with ``k_i < mu_i = min(2^n_i, lambda)`` and
``0 <= c_k < 2^m / gcd(2^m, prod k_i!)``.

Besides being canonical (two polynomials implement the same function iff
their forms are identical — the equivalence test used by tests and by the
synthesis flow), the form often *exposes sharing*: the paper's Section
14.3.1 example turns ``F`` and ``G`` into combinations of the same
``Y_2(x), Y_2(y), Y_2(z)`` building blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Mapping

from repro.expr import Expr, make_add, make_mul
from repro.poly import Polynomial

from .falling import (
    falling_factorial_expr,
    falling_factorial_poly,
    stirling_second,
)
from .modular import coefficient_modulus, degree_bound


@dataclass(frozen=True)
class BitVectorSignature:
    """Input widths per variable and the output width of a datapath."""

    input_widths: tuple[tuple[str, int], ...]
    output_width: int

    @classmethod
    def uniform(cls, variables: tuple[str, ...], width: int, output_width: int | None = None):
        """All inputs share one width (the common case in the benchmarks)."""
        return cls(
            tuple((v, width) for v in variables),
            output_width if output_width is not None else width,
        )

    def width_of(self, var: str) -> int:
        for name, width in self.input_widths:
            if name == var:
                return width
        raise KeyError(f"no width declared for variable {var!r}")

    @property
    def variables(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.input_widths)

    @property
    def modulus(self) -> int:
        return 1 << self.output_width


@dataclass(frozen=True)
class CanonicalForm:
    """The unique falling-factorial representation of a polynomial function."""

    signature: BitVectorSignature
    coefficients: tuple[tuple[tuple[int, ...], int], ...]  # sorted ((k...), c_k)

    def to_polynomial(self) -> Polynomial:
        """Expand back to an integer polynomial in the power basis."""
        variables = self.signature.variables
        total = Polynomial.zero(variables)
        for k_tuple, coeff in self.coefficients:
            term = Polynomial.constant(coeff, variables)
            for var, k in zip(variables, k_tuple):
                if k:
                    term = term * falling_factorial_poly(var, k)
            total = total + term
        return total

    def to_expr(self) -> Expr:
        """The implementation-shaped expression: sums of Y_k products.

        This is the "canonical form" candidate representation Algorithm 7
        weighs against the original and square-free forms (e.g. Table 14.2
        rewrites ``P3`` as ``5x(x-1)(x-2)y(y-1) + 3z^2``).
        """
        variables = self.signature.variables
        terms = []
        for k_tuple, coeff in self.coefficients:
            factors: list = [] if coeff == 1 and any(k_tuple) else [coeff]
            for var, k in zip(variables, k_tuple):
                if k:
                    factors.append(falling_factorial_expr(var, k))
            terms.append(make_mul(*factors))
        return make_add(*terms)

    def __str__(self) -> str:
        if not self.coefficients:
            return "0"
        parts = []
        for k_tuple, coeff in self.coefficients:
            factors = [str(coeff)]
            for (var, _), k in zip(self.signature.input_widths, k_tuple):
                if k:
                    factors.append(f"Y{k}({var})")
            parts.append("*".join(factors))
        return " + ".join(parts)


def to_canonical(poly: Polynomial, signature: BitVectorSignature) -> CanonicalForm:
    """Compute the canonical form of ``poly`` under a bit-vector signature.

    Every variable used by ``poly`` must have a declared width.  The
    conversion is exact integer arithmetic: per-term products of Stirling
    numbers of the second kind, followed by the modulus reduction of
    Chen's theorem.
    """
    # Lazy import: rings is a dependency of core, so the budget module is
    # reached at call time to keep the import graph acyclic.
    from repro.core.budget import CHECK_STRIDE, current_deadline

    deadline = current_deadline()
    # Amortized cooperative checks: with no budget installed the per-combo
    # cost is one predictable branch; with one, ticks land in stride-sized
    # batches (equivalent step accounting — see Deadline.tick).
    ticking = deadline.enabled
    pending = 0
    variables = signature.variables
    missing = set(poly.used_vars()) - set(variables)
    if missing:
        raise KeyError(f"no widths declared for variables {sorted(missing)}")
    aligned = poly.with_vars(variables) if poly.vars != variables else poly

    bounds = [
        degree_bound(signature.width_of(var), signature.output_width)
        for var in variables
    ]
    accumulator: dict[tuple[int, ...], int] = {}
    for exps, coeff in aligned.terms.items():
        # x^e_i expands over Y_0..Y_e_i; take the cartesian product across
        # variables of the per-variable Stirling expansions.  This product
        # is the flow's combinatorial worst case (exponential in wide
        # signatures), hence the cooperative budget check per combination.
        per_var: list[list[tuple[int, int]]] = []
        for e in exps:
            entries = [(k, stirling_second(e, k)) for k in range(e + 1)]
            per_var.append([(k, s) for k, s in entries if s])
        for combo in product(*per_var):
            if ticking:
                pending += 1
                if pending >= CHECK_STRIDE:
                    deadline.tick(pending, site="canonical/expand")
                    pending = 0
            k_tuple = tuple(k for k, _ in combo)
            weight = coeff
            for _, s in combo:
                weight *= s
            accumulator[k_tuple] = accumulator.get(k_tuple, 0) + weight

    if ticking and pending:
        deadline.tick(pending, site="canonical/expand")
    reduced: dict[tuple[int, ...], int] = {}
    for k_tuple, coeff in accumulator.items():
        if any(k >= bound for k, bound in zip(k_tuple, bounds)):
            continue  # the falling-factorial product vanishes identically
        modulus = coefficient_modulus(signature.output_width, k_tuple)
        value = coeff % modulus
        if value:
            reduced[k_tuple] = value
    ordered = tuple(sorted(reduced.items()))
    return CanonicalForm(signature, ordered)


def canonical_reduce(poly: Polynomial, signature: BitVectorSignature) -> Polynomial:
    """The least-degree power-basis polynomial computing the same function."""
    return to_canonical(poly, signature).to_polynomial()


def functions_equal(
    left: Polynomial, right: Polynomial, signature: BitVectorSignature
) -> bool:
    """Do two polynomials compute the same function over the signature?"""
    return to_canonical(left, signature) == to_canonical(right, signature)


def exhaustive_functions_equal(
    left: Polynomial, right: Polynomial, signature: BitVectorSignature
) -> bool:
    """Brute-force functional equality (only viable for tiny widths).

    Used in tests to validate the canonical form: it must agree with this
    on every pair of polynomials.
    """
    variables = signature.variables
    ranges = [range(1 << signature.width_of(v)) for v in variables]
    modulus = signature.modulus
    for point in product(*ranges):
        env: Mapping[str, int] = dict(zip(variables, point))
        if left.evaluate_mod(env, modulus) != right.evaluate_mod(env, modulus):
            return False
    return True
