"""Falling factorials and basis conversion (paper Definition 14.1).

``Y_k(x) = x (x-1) ... (x-k+1)`` is the degree-``k`` falling factorial.
Power-basis and falling-factorial-basis coefficients are related by the
Stirling numbers::

    x^n      = sum_k S2(n, k) * Y_k(x)        (second kind)
    Y_k(x)   = sum_n s1(k, n) * x^n           (first kind, signed)

both of which are computed here with exact integer recurrences and cached.
"""

from __future__ import annotations

from functools import lru_cache

from repro.expr import Expr, Var, make_add, make_mul
from repro.poly import Polynomial


@lru_cache(maxsize=None)
def stirling_second(n: int, k: int) -> int:
    """Stirling number of the second kind S2(n, k)."""
    if n < 0 or k < 0:
        raise ValueError("Stirling numbers need non-negative arguments")
    if n == k:
        return 1
    if k == 0 or k > n:
        return 0
    return k * stirling_second(n - 1, k) + stirling_second(n - 1, k - 1)


@lru_cache(maxsize=None)
def stirling_first_signed(k: int, n: int) -> int:
    """Signed Stirling number of the first kind s1(k, n).

    ``Y_k(x) = sum_n s1(k, n) x^n``.
    """
    if k < 0 or n < 0:
        raise ValueError("Stirling numbers need non-negative arguments")
    if k == n:
        return 1
    if n == 0 or n > k:
        return 0
    return stirling_first_signed(k - 1, n - 1) - (k - 1) * stirling_first_signed(k - 1, n)


@lru_cache(maxsize=None)
def falling_factorial_dense(k: int) -> tuple[int, ...]:
    """Dense power-basis coefficients of ``Y_k`` (cached, exact)."""
    coeffs = [1]
    for j in range(k):
        # multiply by (x - j)
        shifted = [0] + coeffs
        for i, c in enumerate(coeffs):
            shifted[i] -= j * c
        coeffs = shifted
    return tuple(coeffs)


def falling_cache_size() -> int:
    """Total entries across this module's ``lru_cache`` memos."""
    return (
        stirling_second.cache_info().currsize
        + stirling_first_signed.cache_info().currsize
        + falling_factorial_dense.cache_info().currsize
    )


def clear_falling_caches() -> None:
    """Drop the Stirling/falling-factorial memos (cold-run measurement)."""
    stirling_second.cache_clear()
    stirling_first_signed.cache_clear()
    falling_factorial_dense.cache_clear()


def falling_factorial_poly(var: str, k: int) -> Polynomial:
    """``Y_k(var)`` as a polynomial."""
    return Polynomial.from_dense(list(falling_factorial_dense(k)), var)


def falling_factorial_expr(var: str, k: int) -> Expr:
    """``Y_k(var)`` in product form ``x*(x-1)*...*(x-k+1)``.

    This is the *implementation* shape the paper costs: ``k-1``
    multipliers and ``k-1`` constant subtractions.
    """
    if k == 0:
        return make_mul()  # Const(1)
    factors: list[Expr] = [Var(var)]
    for j in range(1, k):
        factors.append(make_add(Var(var), -j))
    return make_mul(*factors)


def power_to_falling(dense: list[int]) -> dict[int, int]:
    """Convert dense power-basis coefficients to falling-factorial ones.

    Returns ``{k: coefficient of Y_k}`` with zeros omitted.
    """
    out: dict[int, int] = {}
    for n, coeff in enumerate(dense):
        if not coeff:
            continue
        for k in range(n + 1):
            s = stirling_second(n, k)
            if s:
                out[k] = out.get(k, 0) + coeff * s
    return {k: c for k, c in out.items() if c}


def falling_to_power(coeffs: dict[int, int]) -> list[int]:
    """Convert ``{k: c_k}`` falling-factorial coefficients to a dense list."""
    if not coeffs:
        return []
    degree = max(coeffs)
    dense = [0] * (degree + 1)
    for k, c in coeffs.items():
        if not c:
            continue
        for n, s in enumerate(falling_factorial_dense(k)):
            dense[n] += c * s
    while dense and dense[-1] == 0:
        dense.pop()
    return dense


def falling_eval(k: int, x: int) -> int:
    """Evaluate ``Y_k`` at an integer."""
    result = 1
    for j in range(k):
        result *= x - j
    return result
