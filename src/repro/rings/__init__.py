"""Polynomial functions over finite integer rings Z_2^m (paper Sec. 14.3.1).

Falling factorials, Stirling conversions, Chen's canonical form, and the
vanishing ideal of a bit-vector signature.
"""

from .canonical import (
    BitVectorSignature,
    CanonicalForm,
    canonical_reduce,
    exhaustive_functions_equal,
    functions_equal,
    to_canonical,
)
from .interpolate import fit_function, fit_table, model_polynomial
from .falling import (
    falling_eval,
    falling_factorial_dense,
    falling_factorial_expr,
    falling_factorial_poly,
    falling_to_power,
    power_to_falling,
    stirling_first_signed,
    stirling_second,
)
from .modular import (
    coefficient_modulus,
    degree_bound,
    factorial_two_adic_valuation,
    smarandache_lambda,
    two_adic_valuation,
)
from .vanishing import (
    is_vanishing,
    smallest_vanishing_degree,
    vanishing_generators,
)

__all__ = [
    "BitVectorSignature",
    "CanonicalForm",
    "canonical_reduce",
    "coefficient_modulus",
    "degree_bound",
    "exhaustive_functions_equal",
    "factorial_two_adic_valuation",
    "falling_eval",
    "falling_factorial_dense",
    "falling_factorial_expr",
    "falling_factorial_poly",
    "falling_to_power",
    "fit_function",
    "fit_table",
    "functions_equal",
    "model_polynomial",
    "is_vanishing",
    "power_to_falling",
    "smallest_vanishing_degree",
    "smarandache_lambda",
    "stirling_first_signed",
    "stirling_second",
    "to_canonical",
    "two_adic_valuation",
    "vanishing_generators",
]
