"""Buchberger's algorithm over Q (paper references [2, 3, 19]).

The paper's related work [19] (Peymandoust & De Micheli) decomposes
polynomials against a component library with a Buchberger-variant: adjoin
one fresh variable per library element, compute a Groebner basis of the
ideal ``{ u_L - L(x) }`` under an elimination order with the ``x``
variables largest, and reduce the target polynomial — the normal form
rewrites datapath variables into library outputs wherever possible.

Coefficients here are exact rationals (``fractions.Fraction``): Groebner
reduction requires dividing by leading coefficients, so the integer-only
arithmetic of :mod:`repro.poly` does not suffice.  Polynomials cross the
boundary through :func:`from_integer_polynomial` /
:func:`to_integer_polynomial`.

This is a reference implementation (Buchberger with the Buchberger
product/chain criteria would be faster; systems here are tiny).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Mapping

from repro.poly import Polynomial
from repro.poly.monomial import Exponents, mono_div, mono_divides, mono_lcm, mono_mul
from repro.poly.orderings import OrderKey, order_key

QTerms = dict[Exponents, Fraction]


class QPolynomial:
    """A sparse multivariate polynomial with rational coefficients."""

    __slots__ = ("vars", "terms")

    def __init__(self, variables: tuple[str, ...], terms: Mapping[Exponents, Fraction]):
        self.vars = tuple(variables)
        self.terms: QTerms = {
            tuple(e): Fraction(c) for e, c in terms.items() if c
        }

    @property
    def is_zero(self) -> bool:
        return not self.terms

    def leading(self, key: OrderKey) -> tuple[Exponents, Fraction]:
        exps = max(self.terms, key=key)
        return exps, self.terms[exps]

    def __sub__(self, other: "QPolynomial") -> "QPolynomial":
        out = dict(self.terms)
        for exps, coeff in other.terms.items():
            total = out.get(exps, 0) - coeff
            if total:
                out[exps] = total
            else:
                out.pop(exps, None)
        return QPolynomial(self.vars, out)

    def scale_shift(self, coeff: Fraction, shift: Exponents) -> "QPolynomial":
        """``coeff * x^shift * self``."""
        return QPolynomial(
            self.vars,
            {mono_mul(e, shift): c * coeff for e, c in self.terms.items()},
        )

    def monic(self, key: OrderKey) -> "QPolynomial":
        if self.is_zero:
            return self
        _, lead = self.leading(key)
        return QPolynomial(self.vars, {e: c / lead for e, c in self.terms.items()})

    def __eq__(self, other: object) -> bool:
        return isinstance(other, QPolynomial) and (
            self.vars == other.vars and self.terms == other.terms
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QPolynomial({self.terms!r})"


def from_integer_polynomial(
    poly: Polynomial, variables: tuple[str, ...] | None = None
) -> QPolynomial:
    """Lift an integer polynomial into the rational domain."""
    target = variables if variables is not None else poly.vars
    aligned = poly.with_vars(target) if poly.vars != tuple(target) else poly
    return QPolynomial(tuple(target), {e: Fraction(c) for e, c in aligned.terms.items()})


def to_integer_polynomial(poly: QPolynomial) -> Polynomial:
    """Convert back to integers; raises when any coefficient is fractional."""
    terms: dict[Exponents, int] = {}
    for exps, coeff in poly.terms.items():
        if coeff.denominator != 1:
            raise ValueError(f"coefficient {coeff} is not an integer")
        terms[exps] = int(coeff)
    return Polynomial(poly.vars, terms)


def reduce_polynomial(
    poly: QPolynomial,
    basis: Iterable[QPolynomial],
    order: str | OrderKey = "lex",
) -> QPolynomial:
    """Full normal form of ``poly`` modulo a list of reducers."""
    key = order_key(order) if isinstance(order, str) else order
    basis = [b for b in basis if not b.is_zero]
    leads = [b.leading(key) for b in basis]
    work = QPolynomial(poly.vars, dict(poly.terms))
    remainder: QTerms = {}
    while not work.is_zero:
        exps, coeff = work.leading(key)
        reduced = False
        for reducer, (lead_exps, lead_coeff) in zip(basis, leads):
            if mono_divides(lead_exps, exps):
                shift = mono_div(exps, lead_exps)
                work = work - reducer.scale_shift(coeff / lead_coeff, shift)
                reduced = True
                break
        if not reduced:
            remainder[exps] = coeff
            work = QPolynomial(work.vars, {e: c for e, c in work.terms.items() if e != exps})
    return QPolynomial(poly.vars, remainder)


def s_polynomial(f: QPolynomial, g: QPolynomial, key: OrderKey) -> QPolynomial:
    """The S-polynomial cancelling the two leading terms."""
    f_exps, f_coeff = f.leading(key)
    g_exps, g_coeff = g.leading(key)
    lcm = mono_lcm(f_exps, g_exps)
    left = f.scale_shift(Fraction(1) / f_coeff, mono_div(lcm, f_exps))
    right = g.scale_shift(Fraction(1) / g_coeff, mono_div(lcm, g_exps))
    return left - right


def buchberger(
    generators: Iterable[QPolynomial],
    order: str | OrderKey = "lex",
    max_basis: int = 64,
) -> list[QPolynomial]:
    """A (reduced-ish) Groebner basis of the ideal the generators span.

    Classic Buchberger with the first (coprime-leads) criterion; bases are
    kept monic and inter-reduced at the end.  ``max_basis`` guards against
    runaway growth on inputs far beyond the library-matching use case.
    """
    key = order_key(order) if isinstance(order, str) else order
    basis = [g.monic(key) for g in generators if not g.is_zero]
    pairs = [(i, j) for i in range(len(basis)) for j in range(i + 1, len(basis))]
    while pairs:
        i, j = pairs.pop()
        lead_i, _ = basis[i].leading(key)
        lead_j, _ = basis[j].leading(key)
        if mono_mul(lead_i, lead_j) == mono_lcm(lead_i, lead_j):
            continue  # coprime leading monomials: S-poly reduces to zero
        remainder = reduce_polynomial(s_polynomial(basis[i], basis[j], key), basis, key)
        if remainder.is_zero:
            continue
        basis.append(remainder.monic(key))
        if len(basis) > max_basis:
            raise RuntimeError("Groebner basis exceeded the size guard")
        new_index = len(basis) - 1
        pairs.extend((k, new_index) for k in range(new_index))
    # inter-reduce
    reduced: list[QPolynomial] = []
    for index, b in enumerate(basis):
        others = basis[:index] + basis[index + 1:]
        nf = reduce_polynomial(b, others, key)
        if not nf.is_zero:
            reduced.append(nf.monic(key))
    # dedupe identical elements
    unique: list[QPolynomial] = []
    for b in reduced:
        if all(b != u for u in unique):
            unique.append(b)
    return unique


def ideal_membership(
    poly: QPolynomial, basis: list[QPolynomial], order: str | OrderKey = "lex"
) -> bool:
    """Is ``poly`` in the ideal generated by a Groebner basis?"""
    return reduce_polynomial(poly, basis, order).is_zero
