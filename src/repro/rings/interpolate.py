"""Polynomial modeling of bit-vector functions (related work [20, 21]).

Smith & De Micheli derive polynomial models of complex computational
blocks by polynomial approximation; this module implements the exact
variant appropriate for finite rings: **Newton forward-difference
interpolation in the falling-factorial basis**, which recovers, for any
function given on the grid ``{0..2^n1-1} x ... x {0..2^nd-1}``, precisely
the canonical-form coefficients of Section 14.3.1:

    f = sum_k  c_k * Y_k1(x_1) ... Y_kd(x_d),   c_k = (Delta^k f)(0) / k!

where ``Delta^k`` is the mixed finite difference.  Over ``Z_2^m`` the
division by ``k!`` is exact *as a residue*: the difference is always
divisible by the even part of ``k!``, and the odd part is invertible.
Not every function ``Z_2^n -> Z_2^m`` is a polynomial function; the
divisibility of the mixed differences is exactly Chen's criterion.
:func:`fit_function` raises when a low-order difference already violates
it; for arbitrary (non-polynomial-shaped) functions the returned model
should additionally be verified against the full grid, which the tests
do exhaustively for small widths.
"""

from __future__ import annotations

from math import factorial
from typing import Callable, Mapping

from repro.poly import Polynomial

from .canonical import BitVectorSignature, CanonicalForm, to_canonical
from .modular import degree_bound, factorial_two_adic_valuation


def _mixed_differences(
    values: dict[tuple[int, ...], int], shape: tuple[int, ...], modulus: int
) -> dict[tuple[int, ...], int]:
    """Iterated forward differences ``(Delta^k f)(0)`` for all k in shape."""
    table = dict(values)
    for axis in range(len(shape)):
        new_table: dict[tuple[int, ...], int] = {}
        # Differences along `axis`: for each fixed prefix/suffix, run the
        # forward-difference ladder and keep (Delta^order f) at base 0.
        grouped: dict[tuple[tuple[int, ...], tuple[int, ...]], list[int]] = {}
        for point, value in table.items():
            prefix, coord, suffix = point[:axis], point[axis], point[axis + 1:]
            grouped.setdefault((prefix, suffix), [0] * shape[axis])
            grouped[(prefix, suffix)][coord] = value
        for (prefix, suffix), row in grouped.items():
            ladder = list(row)
            for order in range(len(row)):
                new_table[prefix + (order,) + suffix] = ladder[0] % modulus
                ladder = [b - a for a, b in zip(ladder, ladder[1:])]
                if not ladder:
                    break
        table = new_table
    return table


def fit_function(
    func: Callable[..., int], signature: BitVectorSignature
) -> CanonicalForm:
    """Exact polynomial model of a bit-vector function.

    ``func`` takes one non-negative integer per signature variable (in
    signature order) and returns an integer; only its residue mod ``2^m``
    matters.  The result is the unique canonical form computing the same
    function — by Chen's theorem every total function on the grid *that
    is a polynomial function* is recovered, and the divisibility check
    raises ``ValueError`` for non-polynomial functions.
    """
    variables = signature.variables
    widths = [signature.width_of(v) for v in variables]
    shape = tuple(1 << w for w in widths)
    modulus = signature.modulus

    values: dict[tuple[int, ...], int] = {}
    bounds = [degree_bound(w, signature.output_width) for w in widths]
    # Only grid points up to the degree bound matter for the differences.
    capped = tuple(min(s, b) for s, b in zip(shape, bounds))
    from itertools import product as iproduct

    for point in iproduct(*(range(c) for c in capped)):
        values[point] = func(*point) % modulus

    differences = _mixed_differences(values, capped, modulus)

    coefficients: dict[tuple[int, ...], int] = {}
    for k_tuple, diff in differences.items():
        if not any(k_tuple) and diff == 0:
            continue
        fact = 1
        for k in k_tuple:
            fact *= factorial(k)
        # Split k! into 2-adic and odd parts: the odd part is invertible
        # mod 2^m; the 2-adic part must divide the difference.
        two_power = 1 << sum(factorial_two_adic_valuation(k) for k in k_tuple)
        odd = fact // two_power
        if diff % two_power:
            raise ValueError(
                f"function is not polynomial over the signature "
                f"(difference at {k_tuple} not divisible by {two_power})"
            )
        reduced = (diff // two_power) * pow(odd, -1, modulus) % modulus
        if reduced:
            coefficients[k_tuple] = reduced

    # Round-trip through to_canonical for the unique reduced representative.
    poly = CanonicalForm(signature, tuple(sorted(coefficients.items()))).to_polynomial()
    return to_canonical(poly, signature)


def fit_table(
    table: Mapping[tuple[int, ...], int], signature: BitVectorSignature
) -> CanonicalForm:
    """Polynomial model of a function given as a full grid table."""

    def lookup(*point: int) -> int:
        return table[tuple(point)]

    return fit_function(lookup, signature)


def model_polynomial(
    func: Callable[..., int], signature: BitVectorSignature
) -> Polynomial:
    """Convenience: the power-basis polynomial model of a function."""
    return fit_function(func, signature).to_polynomial()
