"""Number-theoretic helpers for the finite integer rings Z_2^m.

A bit-vector of width ``m`` carries arithmetic modulo ``2^m``; the
canonical form of Section 14.3.1 needs two quantities from number theory:

* the *Smarandache function* value ``lambda(2^m)`` — the least integer
  whose factorial is divisible by ``2^m`` (written ``lambda`` in the
  paper's Eq. 14.1 side conditions), and
* the coefficient modulus ``2^m / gcd(2^m, prod k_i!)`` that each
  falling-factorial coefficient is unique modulo.
"""

from __future__ import annotations

from functools import lru_cache
from math import gcd


def two_adic_valuation(n: int) -> int:
    """Exponent of 2 in ``n`` (``n > 0``)."""
    if n <= 0:
        raise ValueError(f"two_adic_valuation needs a positive integer, got {n}")
    count = 0
    while n % 2 == 0:
        n //= 2
        count += 1
    return count


def factorial_two_adic_valuation(n: int) -> int:
    """Exponent of 2 in ``n!`` by Legendre's formula: ``n - popcount(n)``."""
    if n < 0:
        raise ValueError(f"factorial of negative {n}")
    return n - bin(n).count("1")


@lru_cache(maxsize=None)
def smarandache_lambda(m: int) -> int:
    """Least ``lam`` with ``2^m`` dividing ``lam!`` (paper Eq. 14.1).

    For example ``lambda(2^3) = 4`` because ``4! = 24`` is the first
    factorial divisible by 8.
    """
    if m < 0:
        raise ValueError(f"negative modulus exponent {m}")
    if m == 0:
        return 0
    lam = 1
    while factorial_two_adic_valuation(lam) < m:
        lam += 1
    return lam


@lru_cache(maxsize=None)
def _factorial(n: int) -> int:
    result = 1
    for i in range(2, n + 1):
        result *= i
    return result


def modular_cache_size() -> int:
    """Total entries across this module's ``lru_cache`` memos."""
    return (
        smarandache_lambda.cache_info().currsize
        + _factorial.cache_info().currsize
    )


def clear_modular_caches() -> None:
    """Drop the number-theory memos (cold-run measurement)."""
    smarandache_lambda.cache_clear()
    _factorial.cache_clear()


def coefficient_modulus(m: int, k_tuple: tuple[int, ...]) -> int:
    """The modulus ``2^m / gcd(2^m, prod k_i!)`` for coefficient ``c_k``.

    ``Y_k(x) = k! * C(x, k)`` is always divisible by ``k!``; multiplying a
    falling-factorial product by any multiple of this modulus therefore
    vanishes mod ``2^m``, making ``c_k`` unique modulo it (Chen's theorem).
    """
    power = 1 << m
    divisor_valuation = sum(factorial_two_adic_valuation(k) for k in k_tuple)
    return power // gcd(power, 1 << min(divisor_valuation, m))


def degree_bound(input_width: int, output_width: int) -> int:
    """``mu_i = min(2^n_i, lambda)`` — the useful falling-factorial degrees.

    ``Y_k(x_i)`` with ``k >= 2^n_i`` vanishes on every point of
    ``Z_2^n_i`` (all residues are smaller than ``k``), and ``k >= lambda``
    makes ``k!`` kill the coefficient mod ``2^m``; either way the term
    contributes nothing.
    """
    return min(1 << input_width, smarandache_lambda(output_width))
