"""One-call convenience API — the canonical facade of the package.

>>> from repro import synthesize_system, compare_methods
>>> from repro.suite import table_14_1_system
>>> result = synthesize_system(table_14_1_system())
>>> print(result.op_count)
8 MULT, 1 ADD

This module *is* the supported API: everything a caller needs — the
one-shot helpers below, :class:`~repro.config.RunConfig`,
:class:`~repro.engine.BatchEngine` / :class:`~repro.engine.BatchReport`,
:class:`~repro.obs.Tracer`, the parsers, and the system/signature types
— is importable from here, and the top-level :mod:`repro` package simply
re-exports this surface.  Deeper modules remain importable but are
implementation surface, not the supported API; ``__all__`` here is the
compatibility contract.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.baselines import available_methods, get_method, register_method
from repro.config import RetryPolicy, RunConfig, as_run_config
from repro.core import (
    Budget,
    Degradation,
    Provenance,
    SynthesisOptions,
    SynthesisResult,
    Timings,
    clear_synthesis_caches,
    explain_text,
    synthesis_cache_sizes,
    synthesize,
)
from repro.dag import (
    ExpressionDAG,
    intern,
    lower_to_blocks,
    shared_subexpressions,
)
from repro.cost import (
    DEFAULT_MODEL,
    HardwareReport,
    TechnologyModel,
    estimate_decomposition,
)
from repro.engine import BatchEngine, BatchJob, BatchReport, JobResult
from repro.expr import Decomposition, OpCount
from repro.obs import EventStream, ProgressRenderer, Tracer
from repro.poly import Polynomial, parse_polynomial, parse_system
from repro.rings import BitVectorSignature
from repro.service import (
    JobStore,
    ServiceConfig,
    SynthesisService,
    TenantPolicy,
)
from repro.system import PolySystem

__all__ = [
    "BatchEngine",
    "BatchJob",
    "BatchReport",
    "BitVectorSignature",
    "Budget",
    "DEFAULT_METHODS",
    "Decomposition",
    "Degradation",
    "EventStream",
    "ExpressionDAG",
    "JobResult",
    "JobStore",
    "MethodOutcome",
    "OpCount",
    "PolySystem",
    "Polynomial",
    "ProgressRenderer",
    "Provenance",
    "RetryPolicy",
    "RunConfig",
    "ServiceConfig",
    "SynthesisOptions",
    "SynthesisResult",
    "SynthesisService",
    "TenantPolicy",
    "Timings",
    "Tracer",
    "TradeoffPoint",
    "available_methods",
    "clear_caches",
    "compare_methods",
    "explain_text",
    "explore_tradeoffs",
    "improvement",
    "intern",
    "lower_to_blocks",
    "method_outcome",
    "parse_polynomial",
    "parse_system",
    "register_method",
    "shared_subexpressions",
    "synthesize",
    "synthesize_system",
]


def clear_caches() -> dict[str, int]:
    """Clear every process-level synthesis cache; return pre-clear sizes.

    One call covers the best-expression memo, the CSE kernel cache, the
    default expression-DAG interner, the packed-monomial context pool,
    and the rings-layer number-theory memos (the stores
    :func:`~repro.core.synthesis_cache_sizes` reports).  Exposed on the
    CLI as ``repro cache --clear``.
    """
    sizes = synthesis_cache_sizes()
    clear_synthesis_caches()
    return sizes


@dataclass(frozen=True)
class MethodOutcome:
    """One method's decomposition, operator count, and hardware estimate."""

    method: str
    decomposition: Decomposition
    op_count: OpCount
    hardware: HardwareReport


#: Methods compare_methods runs when the caller does not ask for a subset.
DEFAULT_METHODS: tuple[str, ...] = ("direct", "horner", "factor+cse", "proposed")


def synthesize_system(
    system: PolySystem,
    config: RunConfig | SynthesisOptions | None = None,
) -> SynthesisResult:
    """Run the paper's integrated flow (Algorithm 7) on a PolySystem.

    ``config`` is a :class:`~repro.config.RunConfig` — options plus an
    optional :class:`~repro.core.Budget`; a bare
    :class:`~repro.core.SynthesisOptions` is accepted positionally and
    wrapped.  The deprecated ``options=`` keyword completed its
    one-release cycle and was removed; passing it is a ``TypeError``.
    """
    cfg = as_run_config(config)
    return synthesize(
        list(system.polys), system.signature, cfg.options, budget=cfg.budget
    )


def method_outcome(
    method: str,
    decomposition: Decomposition,
    system: PolySystem,
    model: TechnologyModel = DEFAULT_MODEL,
) -> MethodOutcome:
    """Price one method's decomposition (ops + hardware estimate)."""
    return MethodOutcome(
        method=method,
        decomposition=decomposition,
        op_count=decomposition.op_count(),
        hardware=estimate_decomposition(decomposition, system.signature, model),
    )


def compare_methods(
    system: PolySystem,
    options: RunConfig | SynthesisOptions | None = None,
    model: TechnologyModel = DEFAULT_MODEL,
    methods: tuple[str, ...] = DEFAULT_METHODS,
) -> dict[str, MethodOutcome]:
    """Synthesize a system with every method and price the results.

    Methods are resolved through :mod:`repro.baselines.registry`, so
    anything registered with
    :func:`~repro.baselines.registry.register_method` can be named here.
    Unknown names emit a :class:`DeprecationWarning` and are skipped (the
    historical behaviour was to skip silently).  ``options`` also accepts
    a :class:`~repro.config.RunConfig`; each method then runs under its
    synthesis options.

    Every method of one comparison receives the same fresh
    :class:`~repro.dag.ExpressionDAG` via its ``dag=`` keyword, so
    structure interned by one method (a baseline's rows, the flow's
    scored combinations) is shared by the next — and the comparison
    never leaks interned state into the process default DAG.

    This drives the Table 14.1 and Table 14.3 reproductions: operator
    counts for the former, area/delay for the latter.
    """
    synth_options = as_run_config(options).options
    shared_dag = ExpressionDAG()
    outcomes: dict[str, MethodOutcome] = {}
    for method in methods:
        try:
            fn = get_method(method)
        except KeyError:
            warnings.warn(
                f"compare_methods: unknown method {method!r} skipped; "
                f"registered methods: {', '.join(available_methods())}",
                DeprecationWarning,
                stacklevel=2,
            )
            continue
        outcomes[method] = method_outcome(
            method, fn(system, synth_options, dag=shared_dag), system, model
        )
    return outcomes


@dataclass(frozen=True)
class TradeoffPoint:
    """One point of the area-delay exploration."""

    label: str
    area: float
    delay: float
    op_count: OpCount


def explore_tradeoffs(
    system: PolySystem,
    model: TechnologyModel = DEFAULT_MODEL,
) -> list[TradeoffPoint]:
    """Sweep the flow's area/delay knobs (the paper's central trade-off).

    Points produced:

    * ``baseline`` — factorization+CSE, chained lowering,
    * ``proposed/area`` — the integrated flow under the area objective,
    * ``proposed/ops`` — the integrated flow under the paper's op-count
      objective,
    * ``proposed/area+balanced`` — area objective with tree-height-reduced
      (delay-oriented) lowering of the winning decomposition.

    The points expose the knob the paper's Table 14.3 turns implicitly:
    buying area with delay and vice versa.
    """
    from repro.cost import estimate_graph
    from repro.dfg import build_dfg

    points: list[TradeoffPoint] = []

    def add(label: str, decomposition: Decomposition, balanced: bool = False) -> None:
        graph = build_dfg(decomposition, system.signature, balanced=balanced)
        report = estimate_graph(graph, model)
        points.append(
            TradeoffPoint(label, report.area, report.delay, decomposition.op_count())
        )

    baseline = get_method("factor+cse")(system, None)
    add("baseline", baseline)

    area_result = synthesize(list(system.polys), system.signature)
    add("proposed/area", area_result.decomposition)
    add("proposed/area+balanced", area_result.decomposition, balanced=True)

    ops_result = synthesize(
        list(system.polys), system.signature, SynthesisOptions(objective="ops")
    )
    add("proposed/ops", ops_result.decomposition)
    return points


def improvement(before: float, after: float) -> float:
    """Percentage improvement, the paper's Table 14.3 convention.

    Positive = the proposed method is better (smaller); negative = worse.
    """
    if before == 0:
        return 0.0
    return (before - after) / before * 100.0
