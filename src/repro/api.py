"""One-call convenience API.

>>> from repro import synthesize_system, compare_methods
>>> from repro.suite import table_14_1_system
>>> result = synthesize_system(table_14_1_system())
>>> print(result.op_count)
8 MULT, 1 ADD
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines import (
    direct_decomposition,
    factor_cse_decomposition,
    horner_baseline,
)
from repro.core import SynthesisOptions, SynthesisResult, synthesize
from repro.cost import (
    DEFAULT_MODEL,
    HardwareReport,
    TechnologyModel,
    estimate_decomposition,
)
from repro.expr import Decomposition, OpCount
from repro.system import PolySystem


@dataclass(frozen=True)
class MethodOutcome:
    """One method's decomposition, operator count, and hardware estimate."""

    method: str
    decomposition: Decomposition
    op_count: OpCount
    hardware: HardwareReport


def synthesize_system(
    system: PolySystem, options: SynthesisOptions | None = None
) -> SynthesisResult:
    """Run the paper's integrated flow (Algorithm 7) on a PolySystem."""
    return synthesize(list(system.polys), system.signature, options)


def compare_methods(
    system: PolySystem,
    options: SynthesisOptions | None = None,
    model: TechnologyModel = DEFAULT_MODEL,
    methods: tuple[str, ...] = ("direct", "horner", "factor+cse", "proposed"),
) -> dict[str, MethodOutcome]:
    """Synthesize a system with every method and price the results.

    This drives the Table 14.1 and Table 14.3 reproductions: operator
    counts for the former, area/delay for the latter.
    """
    polys = list(system.polys)
    outcomes: dict[str, MethodOutcome] = {}

    def add(method: str, decomposition: Decomposition) -> None:
        outcomes[method] = MethodOutcome(
            method=method,
            decomposition=decomposition,
            op_count=decomposition.op_count(),
            hardware=estimate_decomposition(decomposition, system.signature, model),
        )

    if "direct" in methods:
        add("direct", direct_decomposition(polys))
    if "horner" in methods:
        add("horner", horner_baseline(polys))
    if "factor+cse" in methods:
        add("factor+cse", factor_cse_decomposition(polys))
    if "ted" in methods:
        from repro.ted import TedManager, ted_to_expression

        manager = TedManager(system.variables)
        roots = [manager.build(p) for p in polys]
        add("ted", ted_to_expression(manager, roots))
    if "proposed" in methods:
        result = synthesize_system(system, options)
        add("proposed", result.decomposition)
    return outcomes


@dataclass(frozen=True)
class TradeoffPoint:
    """One point of the area-delay exploration."""

    label: str
    area: float
    delay: float
    op_count: OpCount


def explore_tradeoffs(
    system: PolySystem,
    model: TechnologyModel = DEFAULT_MODEL,
) -> list[TradeoffPoint]:
    """Sweep the flow's area/delay knobs (the paper's central trade-off).

    Points produced:

    * ``baseline`` — factorization+CSE, chained lowering,
    * ``proposed/area`` — the integrated flow under the area objective,
    * ``proposed/ops`` — the integrated flow under the paper's op-count
      objective,
    * ``proposed/area+balanced`` — area objective with tree-height-reduced
      (delay-oriented) lowering of the winning decomposition.

    The points expose the knob the paper's Table 14.3 turns implicitly:
    buying area with delay and vice versa.
    """
    from repro.baselines import factor_cse_decomposition
    from repro.cost import estimate_graph
    from repro.dfg import build_dfg

    points: list[TradeoffPoint] = []

    def add(label: str, decomposition: Decomposition, balanced: bool = False) -> None:
        graph = build_dfg(decomposition, system.signature, balanced=balanced)
        report = estimate_graph(graph, model)
        points.append(
            TradeoffPoint(label, report.area, report.delay, decomposition.op_count())
        )

    baseline = factor_cse_decomposition(list(system.polys))
    add("baseline", baseline)

    area_result = synthesize(list(system.polys), system.signature)
    add("proposed/area", area_result.decomposition)
    add("proposed/area+balanced", area_result.decomposition, balanced=True)

    ops_result = synthesize(
        list(system.polys), system.signature, SynthesisOptions(objective="ops")
    )
    add("proposed/ops", ops_result.decomposition)
    return points


def improvement(before: float, after: float) -> float:
    """Percentage improvement, the paper's Table 14.3 convention.

    Positive = the proposed method is better (smaller); negative = worse.
    """
    if before == 0:
        return 0.0
    return (before - after) / before * 100.0
