"""Test-support utilities shipped with the package.

:mod:`repro.testing.faults` is the deterministic, env-gated fault
injection harness used by the fault-tolerance tests and the CI
fault-injection smoke job (see ``docs/ROBUSTNESS.md``).
"""

from .faults import (
    ENV_VAR,
    FaultSpec,
    InjectedFault,
    current_attempt,
    fault_point,
    parse_faults,
    use_attempt,
)

__all__ = [
    "ENV_VAR",
    "FaultSpec",
    "InjectedFault",
    "current_attempt",
    "fault_point",
    "parse_faults",
    "use_attempt",
]
