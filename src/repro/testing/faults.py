"""Deterministic, env-gated fault injection at named sites.

The fault-tolerance layer (budgets, retries, pool respawn; see
``docs/ROBUSTNESS.md``) is only trustworthy if every recovery path is
exercised in CI.  Real faults are flaky; this harness makes them
deterministic: production code calls :func:`fault_point` at named sites,
and the :data:`ENV_VAR` environment variable — inherited by pool
workers, so injection reaches child processes — selects which sites
misbehave and how.

Spec grammar (semicolon-separated)::

    action@site[:key=value[,key=value...]]

    REPRO_FAULTS="hang@job:batch-07;crash@job:batch-13:code=3"
    REPRO_FAULTS="raise@phase:search:message=boom"
    REPRO_FAULTS="delay@phase:cce:seconds=0.2,attempts=2"

``site`` is an :func:`fnmatch.fnmatch` pattern (``*`` matches any site),
and may itself contain ``:`` — trailing ``key=value`` segments are
parameters, everything before them is the site.

Actions:

``delay``
    ``time.sleep(seconds)`` (default 0.05) and continue.
``hang``
    ``time.sleep(seconds)`` with a default of 3600 s — long enough that
    only a hard per-job pool timeout gets the job back.
``raise``
    raise :class:`InjectedFault` (``message=`` overrides the text).
``crash``
    ``os._exit(code)`` (default 3) — kills the worker process without
    cleanup, exactly like a segfault in native code would.
``miscompile``
    a *query-only* action: :func:`fault_point` ignores it, but code that
    can deliberately corrupt its own output (the differential fuzz
    driver, :mod:`repro.fuzz.driver`) asks :func:`fault_flagged` whether
    a matching spec is active and, if so, injects a wrong-but-plausible
    result.  This is how CI proves the fuzzer actually catches
    miscompiles end to end.

Determinism comes from **attempt gating** rather than probabilities:
a spec fires while the ambient attempt number (:func:`current_attempt`,
set by the engine via :func:`use_attempt`) is below its ``attempts``
parameter (default 1).  So a default ``crash`` spec fires on attempt 0
and *not* on the retry — "worker crash, retry succeeds" is reproducible
run after run.

When :data:`ENV_VAR` is unset, :func:`fault_point` is a single dict
lookup — cheap enough for production call sites.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from fnmatch import fnmatch
from typing import Iterator

#: Environment variable holding the active fault specs.
ENV_VAR = "REPRO_FAULTS"


class InjectedFault(RuntimeError):
    """The exception a ``raise`` fault throws (retryable by policy)."""


@dataclass(frozen=True)
class FaultSpec:
    """One parsed fault: an action bound to a site pattern."""

    action: str  # "delay" | "hang" | "raise" | "crash"
    site: str    # fnmatch pattern, e.g. "phase:search" or "job:batch-*"
    params: tuple[tuple[str, str], ...] = ()

    def get(self, key: str, default: str | None = None) -> str | None:
        for name, value in self.params:
            if name == key:
                return value
        return default

    @property
    def attempts(self) -> int:
        """Fire while the ambient attempt number is below this (default 1)."""
        return int(self.get("attempts", "1") or 1)

    def __str__(self) -> str:
        extra = ",".join(f"{k}={v}" for k, v in self.params)
        return f"{self.action}@{self.site}" + (f":{extra}" if extra else "")


_VALID_ACTIONS = frozenset({"delay", "hang", "raise", "crash", "miscompile"})


def parse_faults(raw: str) -> tuple[FaultSpec, ...]:
    """Parse a semicolon-separated spec string (see module docstring)."""
    specs: list[FaultSpec] = []
    for chunk in raw.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        action, sep, rest = chunk.partition("@")
        action = action.strip()
        if not sep or not rest or action not in _VALID_ACTIONS:
            raise ValueError(
                f"bad fault spec {chunk!r}: expected "
                f"'action@site[:key=value,...]' with action in "
                f"{sorted(_VALID_ACTIONS)}"
            )
        # The site may contain ':'.  Trailing segments made entirely of
        # key=value pairs are parameters; everything before is the site.
        segments = rest.split(":")
        param_segments: list[str] = []
        while segments and all("=" in p for p in segments[-1].split(",")):
            if len(segments) == 1:
                break  # never consume the whole site
            param_segments.append(segments.pop())
        site = ":".join(segments)
        if not site:
            raise ValueError(f"bad fault spec {chunk!r}: empty site")
        params: list[tuple[str, str]] = []
        for segment in reversed(param_segments):  # restore textual order
            for pair in segment.split(","):
                key, _, value = pair.partition("=")
                params.append((key.strip(), value.strip()))
        specs.append(FaultSpec(action=action, site=site, params=tuple(params)))
    return tuple(specs)


# Parse results are cached on the raw string, so tests that flip the env
# var mid-process (monkeypatch.setenv) see the change immediately while
# steady-state calls never re-parse.
_cached_raw: str | None = None
_cached_specs: tuple[FaultSpec, ...] = ()


def active_faults() -> tuple[FaultSpec, ...]:
    """The specs currently selected by :data:`ENV_VAR` (cached parse)."""
    global _cached_raw, _cached_specs
    raw = os.environ.get(ENV_VAR, "")
    if raw != _cached_raw:
        _cached_specs = parse_faults(raw)
        _cached_raw = raw
    return _cached_specs


# ----------------------------------------------------------------------
# Attempt gating
# ----------------------------------------------------------------------

_attempt: ContextVar[int] = ContextVar("repro_fault_attempt", default=0)


def current_attempt() -> int:
    """The ambient attempt number (0 on the first try)."""
    return _attempt.get()


@contextmanager
def use_attempt(attempt: int) -> Iterator[None]:
    """Install ``attempt`` as the ambient attempt number.

    The batch engine wraps each job execution in this so retried work
    sees a higher attempt number and attempt-gated faults stop firing.
    """
    token = _attempt.set(attempt)
    try:
        yield
    finally:
        _attempt.reset(token)


# ----------------------------------------------------------------------
# The injection point
# ----------------------------------------------------------------------

def fault_point(site: str) -> None:
    """Fire any active fault matching ``site`` (no-op when none are set)."""
    if not os.environ.get(ENV_VAR):
        return
    attempt = _attempt.get()
    for spec in active_faults():
        if spec.action == "miscompile":
            continue  # query-only; see fault_flagged
        if attempt >= spec.attempts:
            continue
        if not fnmatch(site, spec.site):
            continue
        _fire(spec, site)


def fault_flagged(site: str, action: str = "miscompile") -> bool:
    """Is a query-only fault of ``action`` active for ``site``?

    Unlike :func:`fault_point` this never raises, sleeps, or exits — the
    caller decides what the fault means (e.g. the fuzz driver corrupting
    a decomposition on a ``miscompile`` spec).  Attempt gating applies
    as usual.
    """
    if not os.environ.get(ENV_VAR):
        return False
    attempt = _attempt.get()
    return any(
        spec.action == action
        and attempt < spec.attempts
        and fnmatch(site, spec.site)
        for spec in active_faults()
    )


def _fire(spec: FaultSpec, site: str) -> None:
    if spec.action == "delay":
        time.sleep(float(spec.get("seconds", "0.05") or 0.05))
    elif spec.action == "hang":
        time.sleep(float(spec.get("seconds", "3600") or 3600))
    elif spec.action == "raise":
        raise InjectedFault(
            spec.get("message") or f"injected fault at {site}"
        )
    elif spec.action == "crash":
        os._exit(int(spec.get("code", "3") or 3))
