"""Durable synthesis service: crash-safe job store, leases, admission.

The long-running front end over :class:`repro.engine.BatchEngine` —
``repro serve`` on the CLI, :class:`SynthesisService` in-process.  See
``docs/SERVICE.md`` for the architecture (WAL job store, lease-based
recovery, admission control, graceful drain).
"""

from .admission import (
    AdmissionController,
    AdmissionDecision,
    TenantPolicy,
    TokenBucket,
    uniform_controller,
)
from .server import ServerThread, ServiceServer, run_server
from .service import (
    AdmissionRejected,
    ServiceConfig,
    SynthesisService,
    result_fingerprint,
)
from .store import (
    TERMINAL_STATES,
    InvalidTransition,
    JobRecord,
    JobState,
    JobStore,
    LeaseLost,
    UnknownJob,
    load_store,
    replay_summary,
)

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionRejected",
    "InvalidTransition",
    "JobRecord",
    "JobState",
    "JobStore",
    "LeaseLost",
    "ServerThread",
    "ServiceConfig",
    "ServiceServer",
    "SynthesisService",
    "TERMINAL_STATES",
    "TenantPolicy",
    "TokenBucket",
    "UnknownJob",
    "load_store",
    "replay_summary",
    "result_fingerprint",
    "run_server",
    "uniform_controller",
]
