"""The durable synthesis service: job store + leases + BatchEngine.

:class:`SynthesisService` is the long-lived object behind ``repro
serve``.  It owns:

* a :class:`~repro.service.store.JobStore` (the crash-safe WAL job
  table),
* an :class:`~repro.service.admission.AdmissionController` (rate
  limits, queue-depth backpressure, tenant budget caps),
* one :class:`~repro.engine.BatchEngine` per distinct job budget (the
  engine's placement knobs — workers, cache — stay service-owned; only
  budgets vary per job), all sharing the service's on-disk result
  cache, so a re-delivered job re-reads the byte-identical payload the
  crashed run already computed instead of re-synthesizing,
* a worker thread (lease → run → complete), a heartbeat thread (lease
  extension while the engine is busy), and the reaper fold into the
  worker loop (requeue expired leases, dead-letter repeat orphans).

Everything observable flows through one :class:`~repro.obs.EventStream`:
the service emits the lifecycle kinds (``job_queued`` / ``job_leased``
/ ``job_requeued`` / ``job_dead_letter``), the engine contributes
``job_start`` / ``job_end`` / ``retry`` / ``timeout`` / ``heartbeat``,
and a callback sink routes every job-labelled event into the store's
live-progress tails for ``GET /jobs/{id}``.

Crash recovery contract (the tests SIGKILL this):

* every submission is durable before the HTTP 2xx goes out,
* on restart with ``resume=True`` the WAL replays and orphaned jobs
  requeue immediately (bounded redeliveries, then dead-letter),
* results are recorded as the engine's *canonical* payload (timings and
  worker identity stripped), fingerprinted with SHA-256 — an
  interrupted-and-resumed run is byte-identical to an uninterrupted
  one, and the shared disk cache means the work is not repeated.
"""

from __future__ import annotations

import hashlib
import json
import logging
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.baselines import available_methods
from repro.config import RunConfig, as_run_config
from repro.core import SynthesisOptions
from repro.core.budget import Budget
from repro.engine import (
    BatchEngine,
    BatchJob,
    BatchReport,
    CacheStats,
    JobResult,
    cache_key,
)
from repro.obs import (
    CallbackSink,
    Event,
    EventStream,
    JsonlSink,
    RingBufferSink,
    use_events,
)
from repro.serialize import system_from_dict
from repro.system import PolySystem

from .admission import AdmissionController, uniform_controller
from .store import JobRecord, JobState, JobStore, replay_summary

logger = logging.getLogger("repro.service")


class AdmissionRejected(RuntimeError):
    """A submission was refused by admission control (HTTP 429)."""

    def __init__(self, reason: str, retry_after: float) -> None:
        super().__init__(reason)
        self.reason = reason
        self.retry_after = retry_after


@dataclass(frozen=True)
class ServiceConfig:
    """Everything ``repro serve`` configures, as one object."""

    data_dir: str
    run_config: RunConfig = field(default_factory=RunConfig)
    lease_seconds: float = 30.0
    poll_seconds: float = 0.1
    batch_size: int | None = None     # leased per worker cycle (default: workers)
    max_redeliveries: int = 3
    segment_records: int = 512
    fsync: bool = False
    drain_seconds: float = 30.0
    max_queue_depth: int = 1024
    tenant_rate: float = 50.0         # submissions/second/tenant
    tenant_burst: int = 100
    max_job_seconds: float | None = None  # tenant budget cap
    events_out: str | None = None     # JSONL sink for the service stream

    def effective_run_config(self) -> RunConfig:
        """The engine config with the cache pinned under ``data_dir``.

        The on-disk cache is what makes redelivered work free and
        byte-identical, so the service always has one, defaulting to
        ``<data_dir>/cache`` unless the caller pinned a directory.
        """
        cfg = self.run_config
        if cfg.cache_dir is None:
            cfg = cfg.replace(cache_dir=str(Path(self.data_dir) / "cache"))
        return cfg


def result_fingerprint(canonical_payload: str) -> str:
    """SHA-256 of a canonical result payload (the byte-identity unit)."""
    return hashlib.sha256(canonical_payload.encode("utf-8")).hexdigest()


class SynthesisService:
    """The durable, recoverable synthesis backend (see module docstring)."""

    def __init__(
        self,
        config: ServiceConfig,
        *,
        admission: AdmissionController | None = None,
    ) -> None:
        self.config = config
        self.run_config = config.effective_run_config()
        self.store = JobStore(
            Path(config.data_dir) / "jobs",
            segment_records=config.segment_records,
            fsync=config.fsync,
            max_redeliveries=config.max_redeliveries,
        )
        self.admission = admission or uniform_controller(
            rate=config.tenant_rate,
            burst=config.tenant_burst,
            max_queue_depth=config.max_queue_depth,
            max_job_seconds=config.max_job_seconds,
        )
        sinks: list[Any] = [RingBufferSink(), CallbackSink(self._on_event)]
        if config.events_out:
            sinks.append(JsonlSink(config.events_out))
        self.events = EventStream(sinks=sinks)
        self._engines: dict[str, BatchEngine] = {}
        self._engines_lock = threading.Lock()
        self._running: dict[str, str] = {}  # job_id -> lease_id (in-flight)
        self._running_lock = threading.Lock()
        self._results: list[JobResult] = []
        self._stopping = threading.Event()
        self._drained = threading.Event()
        self._worker: threading.Thread | None = None
        self._heartbeat: threading.Thread | None = None
        self._started_wall = time.time()
        self.recovery: dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self, resume: bool = False) -> None:
        """Begin serving: optionally recover orphans, spin up the loops."""
        if resume:
            self.recovery = replay_summary(self.store)
            requeued, dead = self.store.recover_orphans()
            for record in requeued:
                self.events.emit(
                    "job_requeued", job=record.job_id,
                    redeliveries=record.redeliveries, reason="resume",
                )
            for record in dead:
                self.events.emit(
                    "job_dead_letter", job=record.job_id,
                    redeliveries=record.redeliveries,
                )
            self.recovery["requeued"] = len(requeued)
            self.recovery["dead_lettered"] = len(dead)
            if requeued or dead:
                logger.info(
                    "resume: requeued %d orphaned job(s), dead-lettered %d",
                    len(requeued), len(dead),
                )
        self._worker = threading.Thread(
            target=self._worker_loop, name="repro-service-worker", daemon=True
        )
        self._heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            name="repro-service-heartbeat",
            daemon=True,
        )
        self._worker.start()
        self._heartbeat.start()

    def stop(self, drain: bool = True) -> BatchReport:
        """Graceful shutdown: drain in-flight work, persist the rest.

        In-flight jobs get ``drain_seconds`` to finish; queued jobs stay
        ``queued`` in the WAL for the next process; anything the drain
        abandoned is voluntarily requeued.  The store is compacted (the
        durable flush) and the cumulative :class:`BatchReport` of
        everything this process executed is returned.
        """
        self._stopping.set()
        for engine in list(self._engines.values()):
            engine.request_stop()
        deadline = time.time() + (self.config.drain_seconds if drain else 0.0)
        for thread in (self._worker, self._heartbeat):
            if thread is not None and thread.is_alive():
                thread.join(timeout=max(deadline - time.time(), 0.1))
        # Whatever is still marked in-flight was abandoned by the drain:
        # hand it back to the queue explicitly rather than waiting for
        # the (next process's) lease reaper.
        with self._running_lock:
            abandoned = dict(self._running)
            self._running.clear()
        for job_id, lease_id in abandoned.items():
            try:
                self.store.requeue(job_id, lease_id, "drain abandoned")
                self.events.emit(
                    "job_requeued", job=job_id, reason="drain",
                )
            except Exception:  # noqa: BLE001 - completed concurrently
                pass
        report = self.final_report()
        self.store.close()
        self.events.close()
        self._drained.set()
        return report

    def final_report(self) -> BatchReport:
        """Everything this process executed, as one aggregate report."""
        results = list(self._results)
        stats = None
        hits = sum(1 for r in results if r.cache_hit)
        for engine in self._engines.values():
            stats = engine.cache.stats if stats is None else stats
        return BatchReport(
            results=results,
            workers=self.run_config.workers,
            seconds=time.time() - self._started_wall,
            cache_hits=hits,
            cache_misses=len(results) - hits,
            stats=stats or CacheStats(),
        )

    @property
    def healthy(self) -> bool:
        """Liveness: the process can answer (even while draining)."""
        return True

    @property
    def ready(self) -> bool:
        """Readiness: accepting work (worker up, not draining)."""
        return (
            not self._stopping.is_set()
            and self._worker is not None
            and self._worker.is_alive()
        )

    # ------------------------------------------------------------------
    # Submission (the HTTP front end calls these)
    # ------------------------------------------------------------------

    def submit(
        self,
        system_data: dict[str, Any],
        *,
        method: str = "proposed",
        tenant: str = "default",
        options_data: dict[str, Any] | None = None,
        config_data: dict[str, Any] | None = None,
        label: str | None = None,
    ) -> tuple[JobRecord, bool]:
        """Admit + durably enqueue one job; returns ``(record, created)``.

        Raises :class:`AdmissionRejected` (→ HTTP 429) when a gate
        refuses, :class:`ValueError` on a malformed payload.
        """
        if method != "proposed" and method not in available_methods():
            raise ValueError(
                f"unknown method {method!r}; registered: "
                f"{', '.join(available_methods())}"
            )
        system = system_from_dict(system_data)  # validates the payload
        options = (
            SynthesisOptions(**options_data)
            if options_data
            else self.run_config.options
        )
        requested = (
            as_run_config(config_data)
            if config_data
            else self.run_config
        )
        clamped = self.admission.clamp_config(tenant, requested)
        decision = self.admission.admit(
            tenant,
            queued_depth=self.store.queued_depth(),
            tenant_depth=self.store.queued_depth(tenant),
        )
        if not decision.allowed:
            raise AdmissionRejected(decision.reason, decision.retry_after)
        key = cache_key(system, options, method)
        record, created = self.store.submit(
            key=key,
            tenant=tenant,
            method=method,
            label=label or system.name,
            system=system_data,
            options=options_data,
            config=(
                {"kind": "budget-only", "budget": clamped.budget.as_dict()}
                if clamped.budget is not None
                else None
            ),
        )
        if created:
            self.events.emit(
                "job_queued", job=record.job_id, tenant=tenant, method=method
            )
        return record, created

    def cancel(self, job_id: str) -> JobRecord:
        record = self.store.cancel(job_id)
        self.events.emit("job_cancelled", job=record.job_id, reason="client")
        return record

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _engine_for(self, record: JobRecord) -> BatchEngine:
        """One engine per distinct job budget; all share the disk cache."""
        budget_data = (record.config or {}).get("budget")
        key = json.dumps(budget_data, sort_keys=True)
        with self._engines_lock:
            engine = self._engines.get(key)
            if engine is None:
                cfg = self.run_config
                if budget_data is not None:
                    cfg = cfg.replace(budget=Budget.from_dict(budget_data))
                engine = BatchEngine(cfg)
                self._engines[key] = engine
            return engine

    def _group_key(self, record: JobRecord) -> str:
        return json.dumps((record.config or {}).get("budget"), sort_keys=True)

    def _worker_loop(self) -> None:
        batch_size = self.config.batch_size or max(self.run_config.workers, 1)
        while not self._stopping.is_set():
            try:
                self._reap()
                leased = self.store.lease(
                    batch_size, self.config.lease_seconds
                )
                if not leased:
                    self._stopping.wait(self.config.poll_seconds)
                    continue
                for record in leased:
                    self.events.emit(
                        "job_leased", job=record.job_id,
                        lease=record.lease_id, tenant=record.tenant,
                    )
                runnable = self._reuse_idempotent(leased)
                groups: dict[str, list[JobRecord]] = {}
                for record in runnable:
                    groups.setdefault(self._group_key(record), []).append(record)
                for group in groups.values():
                    self._run_group(group)
            except Exception:  # noqa: BLE001 - the loop must survive anything
                logger.exception("service worker loop error")
                self._stopping.wait(self.config.poll_seconds)

    def _reap(self) -> None:
        requeued, dead = self.store.reap_expired()
        for record in requeued:
            self.events.emit(
                "job_requeued", job=record.job_id,
                redeliveries=record.redeliveries, reason="lease-expired",
            )
        for record in dead:
            self.events.emit(
                "job_dead_letter", job=record.job_id,
                redeliveries=record.redeliveries,
            )

    def _reuse_idempotent(self, leased: list[JobRecord]) -> list[JobRecord]:
        """Serve re-deliveries whose result already exists — never run a
        job's side effects twice."""
        runnable: list[JobRecord] = []
        for record in leased:
            donor = self.store.completed_result_for_key(
                record.key, exclude=record.job_id
            )
            if donor is None:
                runnable.append(record)
                continue
            assert record.lease_id is not None
            self.store.start(record.job_id, record.lease_id)
            self.store.complete(
                record.job_id,
                record.lease_id,
                JobState.DONE,
                result=donor.result,
                fingerprint=donor.fingerprint,
                reused_from=donor.job_id,
            )
            logger.info(
                "job %s: reused result of %s (idempotency key %s)",
                record.job_id, donor.job_id, record.key[:12],
            )
        return runnable

    def _run_group(self, group: list[JobRecord]) -> None:
        engine = self._engine_for(group[0])
        jobs: list[BatchJob] = []
        for record in group:
            assert record.lease_id is not None
            self.store.start(record.job_id, record.lease_id)
            with self._running_lock:
                self._running[record.job_id] = record.lease_id
            jobs.append(
                BatchJob(
                    system=_system_of(record),
                    options=(
                        SynthesisOptions(**record.options)
                        if record.options
                        else None
                    ),
                    method=record.method,
                    name=record.job_id,
                )
            )
        try:
            with use_events(self.events):
                report = engine.run(jobs)
        except Exception as exc:  # noqa: BLE001 - engine blew up wholesale
            logger.exception("engine failed for %d job(s)", len(group))
            for record in group:
                lease_id = self._pop_running(record.job_id)
                if lease_id is None:
                    continue
                try:
                    self.store.complete(
                        record.job_id, lease_id, JobState.FAILED,
                        error=f"engine failure: {type(exc).__name__}: {exc}",
                    )
                except Exception:  # noqa: BLE001 - lease was reaped meanwhile
                    pass
            return
        for record, result in zip(group, report.results):
            lease_id = self._pop_running(record.job_id)
            if lease_id is None:
                # The reaper took the lease mid-run (an extreme stall);
                # the redelivery will reuse the cached result.
                continue
            self._results.append(result)
            try:
                self._complete(record, lease_id, result)
            except Exception:  # noqa: BLE001
                logger.exception("completing %s failed", record.job_id)

    def _pop_running(self, job_id: str) -> str | None:
        with self._running_lock:
            return self._running.pop(job_id, None)

    def _complete(
        self, record: JobRecord, lease_id: str, result: JobResult
    ) -> None:
        if result.cancelled:
            # The drain cancelled it before execution: back to queued,
            # the next process picks it up.
            self.store.requeue(record.job_id, lease_id, "drain cancelled")
            self.events.emit(
                "job_requeued", job=record.job_id, reason="drain",
            )
            return
        if not result.ok:
            self.store.complete(
                record.job_id, lease_id, JobState.FAILED, error=result.error
            )
            return
        canonical = result.canonical_result()
        state = JobState.DEGRADED if result.degraded else JobState.DONE
        self.store.complete(
            record.job_id,
            lease_id,
            state,
            result=canonical,
            fingerprint=result_fingerprint(canonical),
        )

    def _heartbeat_loop(self) -> None:
        """Extend leases of in-flight jobs while the engine is busy."""
        interval = max(self.config.lease_seconds / 3.0, 0.05)
        while not self._stopping.wait(interval):
            with self._running_lock:
                running = dict(self._running)
            for job_id, lease_id in running.items():
                try:
                    self.store.heartbeat(
                        job_id, lease_id, self.config.lease_seconds
                    )
                except Exception:  # noqa: BLE001 - completed or reaped
                    continue

    # ------------------------------------------------------------------
    # Observability plumbing
    # ------------------------------------------------------------------

    def _on_event(self, event: Event) -> None:
        """Route job-labelled events into the store's live-progress tails."""
        job_id = event.data.get("job")
        if isinstance(job_id, str):
            self.store.record_event(job_id, event.to_dict())


def _system_of(record: JobRecord) -> PolySystem:
    return system_from_dict(record.system)


__all__ = [
    "AdmissionRejected",
    "ServiceConfig",
    "SynthesisService",
    "result_fingerprint",
]
