"""Admission control: per-tenant token buckets, queue-depth backpressure,
and tenant budget caps.

A service that accepts unbounded work does not survive heavy traffic —
it ties up memory and disk until everything degrades at once.  The
admission controller sits in front of the job store and answers one
question per submission: *take it, or tell the client when to retry*.
Three independent gates, checked in order:

1. **Queue depth** — a global cap on non-terminal jobs in the store
   (and a smaller per-tenant cap), so a single hot client cannot wedge
   the backlog for everyone.  Rejections carry ``Retry-After`` derived
   from the configured drain hint.
2. **Rate** — a classic token bucket per tenant (``burst`` capacity,
   ``rate`` tokens/second refill).  The clock is injectable, so tests
   are deterministic.
3. **Budgets** — a tenant's :class:`TenantPolicy` caps the
   :class:`~repro.config.RunConfig` budgets a job may request
   (``max_job_seconds`` / ``max_steps``); an over-budget submission is
   *clamped*, not rejected — the cap maps straight onto the engine's
   cooperative budget machinery (see ``docs/ROBUSTNESS.md``).

The controller is thread-safe and purely in-memory: rate state is
deliberately *not* durable (a restarted service forgives old bursts).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.config import RunConfig
from repro.core.budget import Budget


@dataclass(frozen=True)
class TenantPolicy:
    """What one tenant is allowed to do (the default applies to all)."""

    rate: float = 10.0            # sustained submissions per second
    burst: int = 20               # bucket capacity (instantaneous burst)
    max_queued: int = 256         # non-terminal jobs this tenant may hold
    max_job_seconds: float | None = None  # budget cap mapped onto RunConfig
    max_steps: int | None = None          # deterministic step-fuse cap

    def clamp(self, config: RunConfig) -> RunConfig:
        """Apply the tenant's budget caps to a submitted config."""
        if self.max_job_seconds is None and self.max_steps is None:
            return config
        budget = config.budget or Budget()
        job_seconds = budget.job_seconds
        if self.max_job_seconds is not None:
            job_seconds = (
                self.max_job_seconds
                if job_seconds is None
                else min(job_seconds, self.max_job_seconds)
            )
        max_steps = budget.max_steps
        if self.max_steps is not None:
            max_steps = (
                self.max_steps
                if max_steps is None
                else min(max_steps, self.max_steps)
            )
        return config.replace(
            budget=Budget(
                job_seconds=job_seconds,
                phase_seconds=budget.phase_seconds,
                max_steps=max_steps,
            )
        )


class TokenBucket:
    """The standard refill-on-read token bucket, with injectable clock."""

    def __init__(
        self,
        rate: float,
        burst: int,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0 or burst < 1:
            raise ValueError("rate must be > 0 and burst >= 1")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(
            float(self.burst), self._tokens + (now - self._stamp) * self.rate
        )
        self._stamp = now

    def try_acquire(self, tokens: float = 1.0) -> bool:
        self._refill()
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False

    def retry_after(self, tokens: float = 1.0) -> float:
        """Seconds until ``tokens`` will be available (0 when they are)."""
        self._refill()
        deficit = tokens - self._tokens
        return max(deficit / self.rate, 0.0)


@dataclass(frozen=True)
class AdmissionDecision:
    """The controller's verdict on one submission."""

    allowed: bool
    reason: str = ""
    retry_after: float = 0.0


class AdmissionController:
    """The three gates (depth, per-tenant depth, rate) behind one call."""

    def __init__(
        self,
        *,
        max_queue_depth: int = 1024,
        default_policy: TenantPolicy | None = None,
        tenant_policies: dict[str, TenantPolicy] | None = None,
        queue_retry_after: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.max_queue_depth = max_queue_depth
        self.default_policy = default_policy or TenantPolicy()
        self.tenant_policies = dict(tenant_policies or {})
        self.queue_retry_after = queue_retry_after
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self._lock = threading.Lock()

    def policy_for(self, tenant: str) -> TenantPolicy:
        return self.tenant_policies.get(tenant, self.default_policy)

    def _bucket_for(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            policy = self.policy_for(tenant)
            bucket = TokenBucket(policy.rate, policy.burst, clock=self._clock)
            self._buckets[tenant] = bucket
        return bucket

    def admit(
        self, tenant: str, *, queued_depth: int, tenant_depth: int
    ) -> AdmissionDecision:
        """Decide one submission given the store's current depths."""
        with self._lock:
            if queued_depth >= self.max_queue_depth:
                return AdmissionDecision(
                    allowed=False,
                    reason=(
                        f"queue full ({queued_depth}/{self.max_queue_depth} "
                        f"jobs pending)"
                    ),
                    retry_after=self.queue_retry_after,
                )
            policy = self.policy_for(tenant)
            if tenant_depth >= policy.max_queued:
                return AdmissionDecision(
                    allowed=False,
                    reason=(
                        f"tenant {tenant!r} queue full "
                        f"({tenant_depth}/{policy.max_queued} jobs pending)"
                    ),
                    retry_after=self.queue_retry_after,
                )
            bucket = self._bucket_for(tenant)
            if not bucket.try_acquire():
                return AdmissionDecision(
                    allowed=False,
                    reason=f"tenant {tenant!r} rate limit exceeded",
                    retry_after=max(bucket.retry_after(), 0.001),
                )
            return AdmissionDecision(allowed=True)

    def clamp_config(self, tenant: str, config: RunConfig) -> RunConfig:
        """Map the tenant's budget caps onto a submitted RunConfig."""
        return self.policy_for(tenant).clamp(config)

    def set_policy(self, tenant: str, policy: TenantPolicy) -> None:
        with self._lock:
            self.tenant_policies[tenant] = policy
            self._buckets.pop(tenant, None)  # rebuilt with the new rate


def uniform_controller(
    *,
    rate: float,
    burst: int,
    max_queue_depth: int,
    max_queued_per_tenant: int | None = None,
    max_job_seconds: float | None = None,
    clock: Callable[[], float] = time.monotonic,
) -> AdmissionController:
    """The CLI's shape: one policy applied to every tenant."""
    policy = TenantPolicy(
        rate=rate,
        burst=burst,
        max_queued=(
            max_queued_per_tenant
            if max_queued_per_tenant is not None
            else max_queue_depth
        ),
        max_job_seconds=max_job_seconds,
    )
    return AdmissionController(
        max_queue_depth=max_queue_depth,
        default_policy=policy,
        clock=clock,
    )


__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "TenantPolicy",
    "TokenBucket",
    "uniform_controller",
]
