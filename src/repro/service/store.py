"""Crash-safe, append-only job store for the synthesis service.

The store is the durability core of ``repro serve`` (see
``docs/SERVICE.md``): every submitted job — its full system payload,
options, and :class:`~repro.config.RunConfig` — lives in a write-ahead
log on disk, so a ``kill -9`` of the service at *any* instant loses
nothing.  Design:

* **Append-only WAL segments** (``wal-000001.jsonl`` ...): every state
  transition is one JSON line, appended and flushed.  A crash can only
  tear the final line; on load the torn tail is detected and truncated,
  and every complete record replays.  Records carry *absolute* state
  (never increments), so replaying a segment twice is idempotent — the
  compaction crash window needs exactly that.
* **Atomic snapshots** (``snapshot.json``): when the active segment
  reaches ``segment_records`` records, the entire job table is written
  through :func:`repro.ioutil.atomic_write_text` (temp file +
  ``os.replace``) and the covered segments are deleted.  Readers see
  the old snapshot or the new one, never a prefix.
* **State machine**: ``queued → leased → running →
  done|failed|degraded`` with ``cancelled`` reachable before execution
  and ``dead_letter`` parking jobs whose redelivery budget ran out.
  Transitions are validated; an illegal one raises
  :class:`InvalidTransition` instead of corrupting the table.
* **Leases**: a worker takes a time-bounded lease (:meth:`lease`); all
  mutating calls for the job must present the lease id, so a reaped
  worker whose lease was reassigned cannot complete a job it no longer
  owns (:class:`LeaseLost`).  :meth:`reap_expired` requeues expired
  leases with a bounded redelivery count, then dead-letters.
* **Idempotency**: jobs are keyed by the engine's content hash
  (:func:`repro.engine.cache_key`); resubmitting an identical job
  returns the existing record instead of enqueueing duplicate work.

The store is in-process (one service owns one directory) and
thread-safe; the HTTP front end and the worker/reaper threads share it
under one lock.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

from repro.ioutil import atomic_write_text

#: Record-kind tags of the WAL / snapshot payloads.
SUBMIT_KIND = "job-submit"
UPDATE_KIND = "job-update"
SNAPSHOT_KIND = "job-store-snapshot"


class JobState:
    """The explicit job state machine (string states, JSON-friendly)."""

    QUEUED = "queued"
    LEASED = "leased"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    DEGRADED = "degraded"
    CANCELLED = "cancelled"
    DEAD_LETTER = "dead_letter"


#: States a job can never leave.
TERMINAL_STATES = frozenset(
    {
        JobState.DONE,
        JobState.FAILED,
        JobState.DEGRADED,
        JobState.CANCELLED,
        JobState.DEAD_LETTER,
    }
)

#: Which state changes are legal; anything else is a programming error
#: (or corruption) and raises :class:`InvalidTransition`.
VALID_TRANSITIONS: dict[str, frozenset[str]] = {
    JobState.QUEUED: frozenset({JobState.LEASED, JobState.CANCELLED}),
    JobState.LEASED: frozenset(
        {JobState.RUNNING, JobState.QUEUED, JobState.CANCELLED,
         JobState.DEAD_LETTER}
    ),
    JobState.RUNNING: frozenset(
        {JobState.DONE, JobState.FAILED, JobState.DEGRADED,
         JobState.QUEUED, JobState.DEAD_LETTER}
    ),
    JobState.DONE: frozenset(),
    JobState.FAILED: frozenset(),
    JobState.DEGRADED: frozenset(),
    JobState.CANCELLED: frozenset(),
    JobState.DEAD_LETTER: frozenset(),
}


class InvalidTransition(RuntimeError):
    """An illegal state-machine edge was requested."""


class LeaseLost(RuntimeError):
    """A worker presented a lease the store no longer recognizes."""


class UnknownJob(KeyError):
    """No job with that id exists in the store."""


#: Fields an ``UPDATE_KIND`` WAL record may carry (everything mutable;
#: the immutable spec — system/options/config — rides the submit record
#: only, so transitions stay cheap no matter how large the system is).
_MUTABLE_FIELDS = (
    "state",
    "updated_wall",
    "lease_id",
    "lease_expires_wall",
    "redeliveries",
    "attempts",
    "result",
    "fingerprint",
    "error",
    "reused_from",
    "history",
)

#: Bounded per-job transition history kept in the record (audit trail).
_HISTORY_LIMIT = 32


@dataclass
class JobRecord:
    """One job: the immutable spec plus its mutable lifecycle state."""

    job_id: str
    key: str                      # content-hash idempotency key
    tenant: str
    method: str
    label: str
    system: dict[str, Any]        # serialized PolySystem payload
    options: dict[str, Any] | None
    config: dict[str, Any] | None  # RunConfig.as_dict payload (or None)
    state: str = JobState.QUEUED
    created_wall: float = 0.0
    updated_wall: float = 0.0
    lease_id: str | None = None
    lease_expires_wall: float | None = None
    redeliveries: int = 0
    max_redeliveries: int = 3
    attempts: int = 0
    result: str | None = None      # canonical result JSON (JobResult.canonical_result)
    fingerprint: str | None = None  # sha256 of the canonical result
    error: str | None = None
    reused_from: str | None = None  # job id whose result was reused (idempotency)
    history: list[dict[str, Any]] = field(default_factory=list)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def as_dict(self) -> dict[str, Any]:
        return {"kind": "job-record", **asdict(self)}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "JobRecord":
        if data.get("kind") != "job-record":
            raise ValueError(f"not a job-record payload: {data.get('kind')!r}")
        payload = {k: v for k, v in data.items() if k != "kind"}
        return cls(**payload)

    def public_dict(self) -> dict[str, Any]:
        """The API view: everything except the (potentially large) spec."""
        data = self.as_dict()
        data.pop("system", None)
        data.pop("options", None)
        data.pop("config", None)
        data.pop("result", None)  # served by its own endpoint
        return data


def _record_note(record: JobRecord, note: str, now: float) -> None:
    record.history.append(
        {"wall": now, "state": record.state, "note": note}
    )
    if len(record.history) > _HISTORY_LIMIT:
        del record.history[: len(record.history) - _HISTORY_LIMIT]


class JobStore:
    """The durable job table: WAL segments + atomic snapshots + leases."""

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        segment_records: int = 512,
        fsync: bool = False,
        max_redeliveries: int = 3,
    ) -> None:
        if segment_records < 1:
            raise ValueError("segment_records must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_records = segment_records
        self.fsync = fsync
        self.max_redeliveries = max_redeliveries
        self.torn_records = 0      # undecodable WAL lines dropped at load
        self._jobs: dict[str, JobRecord] = {}
        self._by_key: dict[str, str] = {}  # idempotency key -> job id
        self._events: dict[str, deque[dict[str, Any]]] = {}
        self._lock = threading.RLock()
        self._counter = 0
        self._lease_counter = 0
        self._segment = 1
        self._segment_count = 0    # records in the active segment
        self._handle = None
        self._load()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    @property
    def snapshot_path(self) -> Path:
        return self.directory / "snapshot.json"

    def _segment_path(self, index: int) -> Path:
        return self.directory / f"wal-{index:06d}.jsonl"

    def _segments_on_disk(self) -> list[tuple[int, Path]]:
        out = []
        for path in sorted(self.directory.glob("wal-*.jsonl")):
            try:
                out.append((int(path.stem.split("-")[1]), path))
            except (IndexError, ValueError):
                continue
        return sorted(out)

    def _load(self) -> None:
        base_segment = 0
        snapshot = None
        try:
            snapshot = json.loads(
                self.snapshot_path.read_text(encoding="utf-8")
            )
        except (OSError, ValueError):
            snapshot = None  # no snapshot yet (atomic writes: never torn)
        if isinstance(snapshot, dict) and snapshot.get("kind") == SNAPSHOT_KIND:
            base_segment = int(snapshot.get("segment", 0))
            self._counter = int(snapshot.get("next_job", 0))
            for data in snapshot.get("jobs", ()):
                record = JobRecord.from_dict(data)
                self._jobs[record.job_id] = record
                self._by_key.setdefault(record.key, record.job_id)

        segments = self._segments_on_disk()
        for index, path in segments:
            if index <= base_segment:
                # Covered by the snapshot; a crash between snapshot
                # write and segment deletion leaves these behind —
                # replay is idempotent, deletion is just tidy.
                path.unlink(missing_ok=True)
                continue
            self._replay_segment(path)
        live = [index for index, _ in self._segments_on_disk()]
        self._segment = max(live) if live else base_segment + 1
        active = self._segment_path(self._segment)
        self._truncate_torn_tail(active)
        self._segment_count = self._count_lines(active)
        self._handle = open(active, "a", encoding="utf-8")
        # Rebuild the idempotency index preferring completed jobs so a
        # resubmit reuses a finished result over a parked duplicate.
        for record in self._jobs.values():
            if record.state == JobState.DONE:
                self._by_key[record.key] = record.job_id

    def _replay_segment(self, path: Path) -> None:
        self._truncate_torn_tail(path)
        try:
            lines = path.read_text(encoding="utf-8").splitlines()
        except OSError:
            return
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except ValueError:
                self.torn_records += 1
                continue
            self._apply(data)

    def _truncate_torn_tail(self, path: Path) -> None:
        """Cut a half-written final line so appends stay line-framed."""
        try:
            raw = path.read_bytes()
        except OSError:
            return
        if not raw or raw.endswith(b"\n"):
            return
        keep = raw.rfind(b"\n") + 1  # 0 when no newline at all
        with open(path, "r+b") as handle:
            handle.truncate(keep)
        self.torn_records += 1

    @staticmethod
    def _count_lines(path: Path) -> int:
        try:
            return sum(1 for _ in open(path, encoding="utf-8"))
        except OSError:
            return 0

    def _apply(self, data: dict[str, Any]) -> None:
        """Apply one replayed WAL record to the in-memory table."""
        kind = data.get("kind")
        if kind == SUBMIT_KIND:
            record = JobRecord.from_dict(data["job"])
            self._jobs[record.job_id] = record
            self._by_key.setdefault(record.key, record.job_id)
            self._counter = max(
                self._counter, _counter_of(record.job_id) + 1
            )
        elif kind == UPDATE_KIND:
            record = self._jobs.get(str(data.get("id")))
            if record is None:
                self.torn_records += 1  # update for a job we never saw
                return
            for name, value in (data.get("fields") or {}).items():
                if name in _MUTABLE_FIELDS:
                    setattr(record, name, value)
        # Unknown kinds are skipped: forward compatibility over failure.

    def _append(self, payload: dict[str, Any]) -> None:
        assert self._handle is not None
        self._handle.write(
            json.dumps(payload, sort_keys=True, separators=(",", ":"))
        )
        self._handle.write("\n")
        self._handle.flush()
        if self.fsync:
            os.fsync(self._handle.fileno())
        self._segment_count += 1
        if self._segment_count >= self.segment_records:
            self._compact_locked()

    def _log_update(self, record: JobRecord) -> None:
        self._append(
            {
                "kind": UPDATE_KIND,
                "id": record.job_id,
                "fields": {
                    name: getattr(record, name) for name in _MUTABLE_FIELDS
                },
            }
        )

    def _compact_locked(self) -> None:
        """Snapshot the whole table atomically, then drop covered segments."""
        snapshot = {
            "kind": SNAPSHOT_KIND,
            "segment": self._segment,
            "next_job": self._counter,
            "jobs": [record.as_dict() for record in self._jobs.values()],
        }
        atomic_write_text(
            self.snapshot_path,
            json.dumps(snapshot, sort_keys=True, separators=(",", ":")) + "\n",
            fsync=self.fsync,
        )
        if self._handle is not None:
            self._handle.close()
        for index, path in self._segments_on_disk():
            if index <= self._segment:
                path.unlink(missing_ok=True)
        self._segment += 1
        self._segment_count = 0
        self._handle = open(
            self._segment_path(self._segment), "a", encoding="utf-8"
        )

    def compact(self) -> None:
        """Force a snapshot + segment rotation (also runs on close)."""
        with self._lock:
            self._compact_locked()

    def close(self) -> None:
        """Compact and release the WAL handle (safe to skip: that is the
        crash case the WAL exists for)."""
        with self._lock:
            if self._handle is None:
                return
            self._compact_locked()
            self._handle.close()
            self._handle = None

    # ------------------------------------------------------------------
    # Submission and lookup
    # ------------------------------------------------------------------

    def submit(
        self,
        *,
        key: str,
        tenant: str,
        method: str,
        label: str,
        system: dict[str, Any],
        options: dict[str, Any] | None = None,
        config: dict[str, Any] | None = None,
        max_redeliveries: int | None = None,
        now: float | None = None,
    ) -> tuple[JobRecord, bool]:
        """Enqueue a job; returns ``(record, created)``.

        ``created`` is False when the content-hash key already maps to a
        live or completed job — the resubmission is deduplicated onto
        it and no new work is enqueued (the idempotency contract).
        """
        now = time.time() if now is None else now
        with self._lock:
            existing_id = self._by_key.get(key)
            if existing_id is not None:
                existing = self._jobs[existing_id]
                # Dead-lettered / cancelled / failed duplicates do not
                # block a fresh attempt; queued, running, and done ones
                # deduplicate.
                if existing.state not in (
                    JobState.FAILED, JobState.CANCELLED, JobState.DEAD_LETTER
                ):
                    return existing, False
            self._counter += 1
            record = JobRecord(
                job_id=f"j{self._counter:06d}-{key[:8]}",
                key=key,
                tenant=tenant,
                method=method,
                label=label,
                system=system,
                options=options,
                config=config,
                state=JobState.QUEUED,
                created_wall=now,
                updated_wall=now,
                max_redeliveries=(
                    self.max_redeliveries
                    if max_redeliveries is None
                    else max_redeliveries
                ),
            )
            _record_note(record, "submitted", now)
            self._jobs[record.job_id] = record
            self._by_key[key] = record.job_id
            self._append({"kind": SUBMIT_KIND, "job": record.as_dict()})
            return record, True

    def get(self, job_id: str) -> JobRecord:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise UnknownJob(job_id) from None

    def find_by_key(self, key: str) -> JobRecord | None:
        with self._lock:
            job_id = self._by_key.get(key)
            return self._jobs.get(job_id) if job_id is not None else None

    def completed_result_for_key(
        self, key: str, exclude: str | None = None
    ) -> JobRecord | None:
        """A ``done`` job holding a result for this idempotency key."""
        with self._lock:
            for record in self._jobs.values():
                if (
                    record.key == key
                    and record.state == JobState.DONE
                    and record.result is not None
                    and record.job_id != exclude
                ):
                    return record
            return None

    def jobs(
        self, state: str | None = None, tenant: str | None = None
    ) -> list[JobRecord]:
        with self._lock:
            out = [
                record
                for record in self._jobs.values()
                if (state is None or record.state == state)
                and (tenant is None or record.tenant == tenant)
            ]
        return sorted(out, key=lambda record: record.job_id)

    def counts(self) -> dict[str, int]:
        with self._lock:
            out: dict[str, int] = {}
            for record in self._jobs.values():
                out[record.state] = out.get(record.state, 0) + 1
            return out

    def queued_depth(self, tenant: str | None = None) -> int:
        """Jobs admitted but not yet terminal (the backpressure signal)."""
        with self._lock:
            return sum(
                1
                for record in self._jobs.values()
                if not record.terminal
                and (tenant is None or record.tenant == tenant)
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)

    # ------------------------------------------------------------------
    # Leasing and the state machine
    # ------------------------------------------------------------------

    def _transition(
        self, record: JobRecord, state: str, note: str, now: float
    ) -> None:
        allowed = VALID_TRANSITIONS.get(record.state, frozenset())
        if state not in allowed:
            raise InvalidTransition(
                f"{record.job_id}: illegal transition "
                f"{record.state!r} -> {state!r}"
            )
        record.state = state
        record.updated_wall = now
        _record_note(record, note, now)

    def _check_lease(self, record: JobRecord, lease_id: str) -> None:
        if record.lease_id != lease_id:
            raise LeaseLost(
                f"{record.job_id}: lease {lease_id!r} is not current "
                f"(job is {record.state!r} under {record.lease_id!r})"
            )

    def lease(
        self,
        limit: int,
        lease_seconds: float,
        now: float | None = None,
    ) -> list[JobRecord]:
        """Move up to ``limit`` queued jobs to ``leased`` (FIFO order)."""
        now = time.time() if now is None else now
        with self._lock:
            taken: list[JobRecord] = []
            for record in sorted(
                self._jobs.values(), key=lambda r: r.job_id
            ):
                if len(taken) >= limit:
                    break
                if record.state != JobState.QUEUED:
                    continue
                self._lease_counter += 1
                record.lease_id = f"lease-{self._lease_counter:06d}"
                record.lease_expires_wall = now + lease_seconds
                self._transition(
                    record, JobState.LEASED,
                    f"leased for {lease_seconds:.1f}s", now,
                )
                self._log_update(record)
                taken.append(record)
            return taken

    def start(
        self, job_id: str, lease_id: str, now: float | None = None
    ) -> JobRecord:
        now = time.time() if now is None else now
        with self._lock:
            record = self.get(job_id)
            self._check_lease(record, lease_id)
            record.attempts += 1
            self._transition(
                record, JobState.RUNNING,
                f"execution attempt {record.attempts}", now,
            )
            self._log_update(record)
            return record

    def heartbeat(
        self,
        job_id: str,
        lease_id: str,
        lease_seconds: float,
        now: float | None = None,
    ) -> JobRecord:
        """Extend a live lease (the worker's liveness signal)."""
        now = time.time() if now is None else now
        with self._lock:
            record = self.get(job_id)
            self._check_lease(record, lease_id)
            if record.terminal:
                raise InvalidTransition(
                    f"{job_id}: heartbeat on terminal state {record.state!r}"
                )
            record.lease_expires_wall = now + lease_seconds
            record.updated_wall = now
            self._log_update(record)
            return record

    def complete(
        self,
        job_id: str,
        lease_id: str,
        state: str,
        *,
        result: str | None = None,
        fingerprint: str | None = None,
        error: str | None = None,
        reused_from: str | None = None,
        now: float | None = None,
    ) -> JobRecord:
        """Finish a running job: ``done``, ``failed``, or ``degraded``."""
        if state not in (JobState.DONE, JobState.FAILED, JobState.DEGRADED):
            raise InvalidTransition(f"complete() cannot set state {state!r}")
        now = time.time() if now is None else now
        with self._lock:
            record = self.get(job_id)
            self._check_lease(record, lease_id)
            record.result = result
            record.fingerprint = fingerprint
            record.error = error
            record.reused_from = reused_from
            record.lease_id = None
            record.lease_expires_wall = None
            self._transition(record, state, error or "completed", now)
            self._log_update(record)
            return record

    def requeue(
        self, job_id: str, lease_id: str, reason: str, now: float | None = None
    ) -> JobRecord:
        """Voluntarily hand a leased/running job back (drain path)."""
        now = time.time() if now is None else now
        with self._lock:
            record = self.get(job_id)
            self._check_lease(record, lease_id)
            record.lease_id = None
            record.lease_expires_wall = None
            self._transition(record, JobState.QUEUED, reason, now)
            self._log_update(record)
            return record

    def cancel(self, job_id: str, now: float | None = None) -> JobRecord:
        """Cancel a job that has not started running yet."""
        now = time.time() if now is None else now
        with self._lock:
            record = self.get(job_id)
            if record.state not in (JobState.QUEUED, JobState.LEASED):
                raise InvalidTransition(
                    f"{job_id}: cannot cancel in state {record.state!r}"
                )
            record.lease_id = None
            record.lease_expires_wall = None
            self._transition(
                record, JobState.CANCELLED, "cancelled by client", now
            )
            self._log_update(record)
            return record

    def reap_expired(
        self, now: float | None = None
    ) -> tuple[list[JobRecord], list[JobRecord]]:
        """Requeue jobs whose lease expired; dead-letter repeat orphans.

        Returns ``(requeued, dead_lettered)``.  Each requeue increments
        ``redeliveries``; a job that would exceed ``max_redeliveries``
        parks in ``dead_letter`` instead of looping forever.
        """
        now = time.time() if now is None else now
        requeued: list[JobRecord] = []
        dead: list[JobRecord] = []
        with self._lock:
            for record in self._jobs.values():
                if record.state not in (JobState.LEASED, JobState.RUNNING):
                    continue
                expires = record.lease_expires_wall
                if expires is None or expires > now:
                    continue
                record.lease_id = None
                record.lease_expires_wall = None
                record.redeliveries += 1
                if record.redeliveries > record.max_redeliveries:
                    record.error = (
                        f"dead-lettered after {record.redeliveries} "
                        f"redeliveries (max {record.max_redeliveries})"
                    )
                    self._transition(
                        record, JobState.DEAD_LETTER, record.error, now
                    )
                    dead.append(record)
                else:
                    self._transition(
                        record, JobState.QUEUED,
                        f"lease expired (redelivery "
                        f"{record.redeliveries}/{record.max_redeliveries})",
                        now,
                    )
                    requeued.append(record)
                self._log_update(record)
        return requeued, dead

    def recover_orphans(
        self, now: float | None = None
    ) -> tuple[list[JobRecord], list[JobRecord]]:
        """The ``--resume`` path: requeue every leased/running job *now*.

        After a crash the previous process's leases are meaningless;
        rather than waiting for them to expire, expire them immediately
        and let :meth:`reap_expired` apply the redelivery bookkeeping.
        """
        now = time.time() if now is None else now
        with self._lock:
            for record in self._jobs.values():
                if record.state in (JobState.LEASED, JobState.RUNNING):
                    record.lease_expires_wall = now - 1.0
        return self.reap_expired(now)

    # ------------------------------------------------------------------
    # Live progress events (in-memory tail; see docs/SERVICE.md)
    # ------------------------------------------------------------------

    def record_event(
        self, job_id: str, event: dict[str, Any], limit: int = 256
    ) -> None:
        """Attach one observability event to a job's live-progress tail.

        The tail is in-memory only — progress is ephemeral by design;
        durability belongs to the WAL-backed state machine above.
        """
        with self._lock:
            if job_id not in self._jobs:
                return
            tail = self._events.get(job_id)
            if tail is None or tail.maxlen != limit:
                tail = deque(tail or (), maxlen=limit)
                self._events[job_id] = tail
            tail.append(event)

    def events_for(self, job_id: str, since_seq: int = -1) -> list[dict[str, Any]]:
        with self._lock:
            return [
                event
                for event in self._events.get(job_id, ())
                if int(event.get("seq", 0)) > since_seq
            ]


def _counter_of(job_id: str) -> int:
    """The monotonically assigned counter embedded in a job id."""
    try:
        return int(job_id.split("-")[0].lstrip("j"))
    except (ValueError, AttributeError):
        return 0


def replay_summary(store: JobStore) -> dict[str, Any]:
    """What a fresh load of the directory recovered (for ``--resume`` logs)."""
    counts = store.counts()
    return {
        "jobs": len(store),
        "counts": counts,
        "torn_records": store.torn_records,
        "orphans": counts.get(JobState.LEASED, 0)
        + counts.get(JobState.RUNNING, 0),
    }


def load_store(
    directory: str | os.PathLike, **kwargs: Any
) -> tuple[JobStore, dict[str, Any]]:
    """Open (or create) a store and report what the WAL replay found."""
    store = JobStore(directory, **kwargs)
    return store, replay_summary(store)
