"""Async HTTP front end for the synthesis service (stdlib only).

A deliberately small HTTP/1.1 server on ``asyncio.start_server`` — no
framework, no dependency — exposing the durable job store over five
endpoints (see ``docs/SERVICE.md`` for the full reference):

* ``POST /jobs`` — admit + durably enqueue a job.  ``201`` on create,
  ``200`` when the idempotency key deduplicates onto an existing job,
  ``429`` + ``Retry-After`` when admission control refuses.
* ``GET /jobs`` — list jobs (``?state=``, ``?tenant=`` filters) plus
  the per-state counts.
* ``GET /jobs/{id}`` — one job's public record and its live-progress
  event tail (``?since=<seq>`` for incremental polls).
* ``GET /jobs/{id}/result`` — the canonical result payload once the
  job is terminal (``409`` while it is still in flight).
* ``POST /jobs/{id}/cancel`` — cancel a job that has not started.
* ``GET /healthz`` / ``GET /readyz`` — liveness vs. readiness;
  ``readyz`` turns ``503`` the moment a drain begins, so a load
  balancer stops routing before the listener goes away.

Request handling is synchronous inside the event loop: every endpoint
is a dictionary operation on the store (the actual synthesis runs on
the service's worker thread), so there is nothing to await.  Responses
always carry ``Connection: close`` — clients here are test harnesses
and ``repro submit``, not browsers, and one-shot connections keep the
protocol surface tiny.

Shutdown: SIGTERM/SIGINT (or :meth:`ServiceServer.request_shutdown`)
closes the listener, then the caller drains the service —
``run_server`` wires the whole arc and returns the final
:class:`~repro.engine.BatchReport`.
"""

from __future__ import annotations

import asyncio
import json
import logging
import signal
import threading
import urllib.parse
from typing import Any, Callable

from repro.engine import BatchReport

from .service import AdmissionRejected, SynthesisService
from .store import InvalidTransition, UnknownJob

logger = logging.getLogger("repro.service.http")

_REASONS = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

_MAX_BODY = 8 * 1024 * 1024  # a serialized system is KBs; 8 MiB is generous


class ServiceServer:
    """The asyncio HTTP listener in front of one :class:`SynthesisService`."""

    def __init__(
        self,
        service: SynthesisService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port  # 0 → ephemeral; rewritten once bound
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown: asyncio.Event | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def run(
        self,
        *,
        install_signals: bool = True,
        announce: Callable[[str], None] | None = None,
    ) -> None:
        """Bind, serve until shutdown is requested, close the listener."""
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]
        if install_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    self._loop.add_signal_handler(
                        signum, self._shutdown.set
                    )
                except (NotImplementedError, RuntimeError):
                    pass  # non-main thread or platform without support
        if announce is not None:
            announce(f"listening on http://{self.host}:{self.port}")
        try:
            await self._shutdown.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()

    def request_shutdown(self) -> None:
        """Thread-safe shutdown trigger (tests, embedders)."""
        loop, event = self._loop, self._shutdown
        if loop is not None and event is not None:
            loop.call_soon_threadsafe(event.set)

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        status, payload, extra_headers = 500, {"error": "internal error"}, {}
        try:
            request = await asyncio.wait_for(
                self._read_request(reader), timeout=30.0
            )
            if request is None:
                writer.close()
                return
            method, target, body = request
            status, payload, extra_headers = self._route(method, target, body)
        except asyncio.TimeoutError:
            status, payload = 400, {"error": "request timed out"}
        except (asyncio.IncompleteReadError, ConnectionError):
            writer.close()
            return
        except Exception:  # noqa: BLE001 - one bad request must not kill serving
            logger.exception("unhandled error serving request")
        try:
            self._write_response(writer, status, payload, extra_headers)
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()

    @staticmethod
    async def _read_request(
        reader: asyncio.StreamReader,
    ) -> tuple[str, str, bytes] | None:
        request_line = await reader.readline()
        if not request_line.strip():
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, target = parts[0].upper(), parts[1]
        length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    length = int(value.strip())
                except ValueError:
                    length = 0
        if length > _MAX_BODY:
            raise ConnectionError("request body too large")
        body = await reader.readexactly(length) if length > 0 else b""
        return method, target, body

    @staticmethod
    def _write_response(
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict[str, Any],
        extra_headers: dict[str, str],
    ) -> None:
        body = (
            json.dumps(payload, sort_keys=True) + "\n"
        ).encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        head = [
            f"HTTP/1.1 {status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        head += [f"{name}: {value}" for name, value in extra_headers.items()]
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def _route(
        self, method: str, target: str, body: bytes
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        path, _, query = target.partition("?")
        params = urllib.parse.parse_qs(query)
        segments = [s for s in path.split("/") if s]
        try:
            if path == "/healthz" and method == "GET":
                return 200, {"status": "ok"}, {}
            if path == "/readyz" and method == "GET":
                if self.service.ready:
                    return 200, {"status": "ready"}, {}
                return 503, {"status": "draining"}, {}
            if path == "/jobs" and method == "POST":
                return self._submit(body)
            if path == "/jobs" and method == "GET":
                return self._list(params)
            if len(segments) == 2 and segments[0] == "jobs":
                if method == "GET":
                    return self._job(segments[1], params)
            if (
                len(segments) == 3
                and segments[0] == "jobs"
                and segments[2] == "result"
                and method == "GET"
            ):
                return self._result(segments[1])
            if (
                len(segments) == 3
                and segments[0] == "jobs"
                and segments[2] == "cancel"
                and method == "POST"
            ):
                return self._cancel(segments[1])
        except UnknownJob as exc:
            return 404, {"error": f"unknown job {exc.args[0]!r}"}, {}
        except AdmissionRejected as exc:
            return (
                429,
                {"error": exc.reason, "retry_after": exc.retry_after},
                {"Retry-After": f"{max(exc.retry_after, 0.001):.3f}"},
            )
        except InvalidTransition as exc:
            return 409, {"error": str(exc)}, {}
        except (ValueError, TypeError, KeyError) as exc:
            return 400, {"error": f"{type(exc).__name__}: {exc}"}, {}
        return 404, {"error": f"no route for {method} {path}"}, {}

    def _submit(
        self, body: bytes
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        if not self.service.ready:
            return 503, {"error": "service is draining"}, {}
        try:
            data = json.loads(body.decode("utf-8") or "{}")
        except ValueError:
            return 400, {"error": "request body is not valid JSON"}, {}
        if not isinstance(data, dict) or "system" not in data:
            return 400, {"error": "body must be a JSON object with 'system'"}, {}
        record, created = self.service.submit(
            data["system"],
            method=data.get("method", "proposed"),
            tenant=str(data.get("tenant", "default")),
            options_data=data.get("options"),
            config_data=data.get("config"),
            label=data.get("label"),
        )
        return (
            201 if created else 200,
            {"job": record.public_dict(), "created": created},
            {},
        )

    def _list(
        self, params: dict[str, list[str]]
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        state = params.get("state", [None])[0]
        tenant = params.get("tenant", [None])[0]
        records = self.service.store.jobs(state=state, tenant=tenant)
        return (
            200,
            {
                "jobs": [record.public_dict() for record in records],
                "counts": self.service.store.counts(),
            },
            {},
        )

    def _job(
        self, job_id: str, params: dict[str, list[str]]
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        record = self.service.store.get(job_id)
        try:
            since = int(params.get("since", ["-1"])[0])
        except ValueError:
            since = -1
        events = self.service.store.events_for(job_id, since_seq=since)
        return 200, {"job": record.public_dict(), "events": events}, {}

    def _result(
        self, job_id: str
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        record = self.service.store.get(job_id)
        if not record.terminal:
            return (
                409,
                {
                    "error": f"job {job_id} is {record.state!r}, not terminal",
                    "state": record.state,
                },
                {},
            )
        payload: dict[str, Any] = {
            "job_id": record.job_id,
            "state": record.state,
            "fingerprint": record.fingerprint,
            "error": record.error,
            "reused_from": record.reused_from,
            "result": (
                json.loads(record.result) if record.result is not None else None
            ),
        }
        return 200, payload, {}

    def _cancel(
        self, job_id: str
    ) -> tuple[int, dict[str, Any], dict[str, str]]:
        record = self.service.cancel(job_id)
        return 200, {"job": record.public_dict()}, {}


def run_server(
    service: SynthesisService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    resume: bool = False,
    announce: Callable[[str], None] | None = None,
) -> BatchReport:
    """The ``repro serve`` arc: start, listen, drain on signal, report.

    Blocks until SIGTERM/SIGINT, then drains the service gracefully
    (in-flight jobs finish, queued jobs persist) and returns the final
    :class:`~repro.engine.BatchReport` of everything executed.
    """
    service.start(resume=resume)
    server = ServiceServer(service, host, port)
    try:
        asyncio.run(server.run(announce=announce))
    finally:
        report = service.stop(drain=True)
    return report


class ServerThread:
    """A server on a background thread (tests and embedders).

    Owns the whole lifecycle: ``start()`` returns once the port is
    bound; ``stop()`` closes the listener and drains the service.
    """

    def __init__(
        self,
        service: SynthesisService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.server = ServiceServer(service, host, port)
        self._thread: threading.Thread | None = None
        self._bound = threading.Event()
        self.report: BatchReport | None = None

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def address(self) -> str:
        return f"http://{self.server.host}:{self.server.port}"

    def start(self, resume: bool = False, timeout: float = 10.0) -> "ServerThread":
        self.service.start(resume=resume)

        def _main() -> None:
            asyncio.run(
                self.server.run(
                    install_signals=False,
                    announce=lambda _msg: self._bound.set(),
                )
            )

        self._thread = threading.Thread(
            target=_main, name="repro-service-http", daemon=True
        )
        self._thread.start()
        if not self._bound.wait(timeout):
            raise RuntimeError("HTTP server failed to bind in time")
        return self

    def stop(self, drain: bool = True) -> BatchReport:
        self.server.request_shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
        self.report = self.service.stop(drain=drain)
        return self.report


__all__ = ["ServerThread", "ServiceServer", "run_server"]
