"""TED-driven decomposition (Gomez-Prado et al. [9]).

A TED's structural sharing is hardware sharing waiting to happen: every
internal node referenced by more than one parent is a sub-function worth
implementing once.  This lowering walks the diagram, emits a Horner-style
expression per node (``c0 + var*(c1 + var*(...))``), and promotes every
multiply-referenced node to a named block of the resulting
:class:`~repro.expr.decomposition.Decomposition`.
"""

from __future__ import annotations

from repro.expr import Decomposition, Expr, make_add, make_mul
from repro.expr.ast import BlockRef, Const, Var

from .diagram import TedManager, TedNode


def _reference_counts(roots: list[TedNode]) -> dict[int, int]:
    counts: dict[int, int] = {}
    visited: set[int] = set()
    for root in roots:
        counts[id(root)] = counts.get(id(root), 0) + 1
    stack = list(roots)
    while stack:
        node = stack.pop()
        if id(node) in visited:
            continue
        visited.add(id(node))
        for child in node.children:
            counts[id(child)] = counts.get(id(child), 0) + 1
            stack.append(child)
    return counts


def ted_to_expression(
    manager: TedManager, roots: list[TedNode], method: str = "ted"
) -> Decomposition:
    """Lower TED roots to a decomposition with shared-node blocks."""
    counts = _reference_counts(roots)
    block_names: dict[int, str] = {}
    decomposition = Decomposition(method=method)
    counter = 0

    def node_expr(node: TedNode) -> Expr:
        """Horner form of one node's own structure (children as refs)."""
        if node.is_leaf:
            return Const(node.value)
        assert node.var is not None
        # c0 + v*(c1 + v*(c2 + ...)) built from the top power down.
        acc: Expr | None = None
        for power in range(len(node.children) - 1, -1, -1):
            child = resolve(node.children[power])
            if acc is None:
                acc = child
            else:
                acc = make_add(make_mul(Var(node.var), acc), child)
        assert acc is not None
        return acc

    def resolve(node: TedNode) -> Expr:
        if node.is_leaf:
            return Const(node.value)
        key = id(node)
        if counts.get(key, 0) >= 2:
            if key not in block_names:
                nonlocal counter
                counter += 1
                name = f"_t{counter}"
                block_names[key] = name
                decomposition.blocks[name] = node_expr(node)
            return BlockRef(block_names[key])
        return node_expr(node)

    for root in roots:
        decomposition.outputs.append(resolve(root))
    return decomposition
