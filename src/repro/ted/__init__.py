"""Taylor Expansion Diagrams (paper references [5], [9]).

A TED is a canonical, graph-based representation of a polynomial: each
node Taylor-expands in one variable (under a fixed variable order) and
points to the sub-functions multiplying each power.  With hash-consing
the DAG is canonical — two polynomials are equal iff their TEDs are the
same node — and shared sub-functions appear once, which is why
Gomez-Prado et al. [9] drive dataflow-graph optimization from TED cuts.

This subpackage provides construction from :class:`repro.poly`
polynomials, canonicity-based equality, structural statistics, and the
[9]-style lowering of a TED to a factored expression.
"""

from .diagram import TedManager, TedNode, ted_node_count
from .lower import ted_to_expression

__all__ = ["TedManager", "TedNode", "ted_node_count", "ted_to_expression"]
