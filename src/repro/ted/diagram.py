"""TED construction and canonicity.

Representation: a node is either the constant leaf ``Const(c)`` or an
internal node ``(var, children)`` where ``children[k]`` is the
sub-diagram of the coefficient of ``var^k`` (trailing zero children are
trimmed, and a node with only a ``k = 0`` child collapses to that child).
Nodes are hash-consed by a :class:`TedManager`, making the diagram
canonical for a fixed variable order:

    p == q  (as polynomials)   iff   build(p) is build(q)

which the tests verify against polynomial equality.  Sharing statistics
(`ted_node_count`) measure the structural compression the diagram
achieves over the expression tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from repro.poly import Polynomial


@dataclass(frozen=True)
class TedNode:
    """One hash-consed TED node.

    ``var`` is ``None`` for constant leaves (then ``value`` holds the
    integer); otherwise ``children[k]`` is the diagram of the coefficient
    of ``var^k``.
    """

    var: str | None
    value: int
    children: tuple["TedNode", ...]

    @property
    def is_leaf(self) -> bool:
        return self.var is None

    def __str__(self) -> str:
        if self.is_leaf:
            return str(self.value)
        inner = ", ".join(
            f"{self.var}^{k}: {child}" for k, child in enumerate(self.children)
        )
        return f"<{inner}>"


class TedManager:
    """Hash-consing factory for TED nodes under a fixed variable order."""

    def __init__(self, order: tuple[str, ...]):
        if len(set(order)) != len(order):
            raise ValueError(f"duplicate variables in TED order {order}")
        self.order = tuple(order)
        self._unique: dict[tuple, TedNode] = {}

    # ------------------------------------------------------------------

    def leaf(self, value: int) -> TedNode:
        key = ("leaf", value)
        node = self._unique.get(key)
        if node is None:
            node = TedNode(None, value, ())
            self._unique[key] = node
        return node

    def node(self, var: str, children: tuple[TedNode, ...]) -> TedNode:
        zero = self.leaf(0)
        trimmed = list(children)
        while trimmed and trimmed[-1] is zero:
            trimmed.pop()
        if not trimmed:
            return zero
        if len(trimmed) == 1:
            return trimmed[0]  # only the var^0 coefficient: var is absent
        key = (var, tuple(id(c) for c in trimmed))
        node = self._unique.get(key)
        if node is None:
            node = TedNode(var, 0, tuple(trimmed))
            self._unique[key] = node
        return node

    # ------------------------------------------------------------------

    def build(self, poly: Polynomial) -> TedNode:
        """Construct the canonical TED of a polynomial."""
        missing = set(poly.used_vars()) - set(self.order)
        if missing:
            raise KeyError(f"variables {sorted(missing)} not in TED order {self.order}")
        aligned = poly.trim()
        return self._build(aligned, 0)

    def _build(self, poly: Polynomial, depth: int) -> TedNode:
        if depth == len(self.order):
            return self.leaf(poly.constant_term if not poly.is_zero else 0)
        var = self.order[depth]
        if var not in poly.vars or poly.is_zero or poly.degree(var) < 1:
            return self._build_skip(poly, depth)
        coefficients = poly.as_univariate(var)
        top = max(coefficients)
        children = []
        for power in range(top + 1):
            child_poly = coefficients.get(power)
            if child_poly is None:
                children.append(self.leaf(0))
            else:
                children.append(self._build(child_poly, depth + 1))
        return self.node(var, tuple(children))

    def _build_skip(self, poly: Polynomial, depth: int) -> TedNode:
        return self._build(poly, depth + 1)

    # ------------------------------------------------------------------

    def to_polynomial(self, node: TedNode) -> Polynomial:
        """Expand a TED back into a polynomial (inverse of build)."""
        if node.is_leaf:
            return Polynomial.constant(node.value)
        assert node.var is not None
        x = Polynomial.variable(node.var)
        total = Polynomial.zero((node.var,))
        for power, child in enumerate(node.children):
            total = total + self.to_polynomial(child) * x ** power
        return total

    def equal(self, left: Polynomial, right: Polynomial) -> bool:
        """Canonicity-based equality: same node object iff same polynomial."""
        return self.build(left) is self.build(right)

    def size(self) -> int:
        """Number of distinct nodes interned so far."""
        return len(self._unique)


def ted_node_count(node: TedNode) -> int:
    """Distinct nodes reachable from a TED root (sharing counted once)."""
    seen: set[int] = set()

    def walk(current: TedNode) -> None:
        if id(current) in seen:
            return
        seen.add(id(current))
        for child in current.children:
            walk(child)

    walk(node)
    return len(seen)
