"""Typed, ordered, structured event stream for the synthesis flow.

Where spans (:mod:`repro.obs.tracer`) answer *where the time went* and
metrics (:mod:`repro.obs.metrics`) answer *how the system behaves across
runs*, events answer *what happened, in order*: every scored, memoized,
or pruned combination of the Algorithm-7 search, every kernel the CSE
extractor picked, every cache hit, retry, timeout, and degradation step
of the batch engine — as one monotonically-sequenced stream a consumer
can tail live (the ``--progress`` renderer, a future synthesis service)
or archive as JSONL for audit.

The stream follows the exact zero-cost-when-disabled discipline of
:data:`~repro.obs.tracer.NULL_TRACER`:

* the ambient default is :data:`NULL_EVENTS`, whose ``emit`` is a no-op
  — hot loops additionally hoist ``events.enabled`` so the disabled
  path allocates **zero** :class:`Event` objects (enforced by
  :func:`event_allocation_count` and the allocation-counter test),
* nothing ever reads an event back into an algorithm: results are
  bit-identical with events on or off,
* pool workers run under their own fresh :class:`EventStream`; the
  snapshot rides home inside the job payload and the parent re-emits it
  under its own stream via :meth:`EventStream.adopt` — once, from the
  accepted final payload only, so retried attempts never duplicate.

``REPRO_EVENTS`` mirrors ``REPRO_TRACE``: falsy values disable, truthy
values enable, any other value enables *and* names the JSONL file the
CLI streams events to (see :func:`env_events_settings`).
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from .tracer import env_toggle

#: Every event kind the instrumented code emits.  Consumers (the JSONL
#: validator, the progress renderer) treat unknown kinds as an error, so
#: new instrumentation must extend this taxonomy deliberately.
EVENT_KINDS = frozenset(
    {
        "phase_start",     # a flow phase opened (name)
        "phase_end",       # a flow phase closed (name, degraded?)
        "combo_scored",    # the search scored a fresh combination
        "combo_memo_hit",  # the search served a combination from a memo
        "combo_pruned",    # branch-and-bound skipped a combination
        "dag_finalist",    # dag mode assembled one shortlisted combination
        "dag_stats",       # dag mode's end-of-search interning statistics
        "kernel_chosen",   # the CSE extractor applied its best candidate
        "block_registered",  # cube/factor exposure registered a block
        "cache_hit",       # engine served a job from the result cache
        "cache_miss",      # engine had to execute a job
        "degradation",     # a budget overrun was absorbed somewhere
        "retry",           # the engine re-queued a failing job
        "timeout",         # a job hit the hard pool timeout
        "breaker",         # the circuit breaker refused a job
        "job_start",       # a job began executing (worker side)
        "job_end",         # a job finished executing (worker side)
        "job_cancelled",   # a job was cancelled before (or instead of) running
        "heartbeat",       # periodic liveness/progress pulse
        # -- durable-service lifecycle (src/repro/service/) -------------
        "job_queued",      # the job store accepted a submission
        "job_leased",      # a worker took a time-bounded lease on the job
        "job_requeued",    # lease expired / crash orphan went back to queued
        "job_dead_letter",  # redelivery budget exhausted; job parked
    }
)

#: Process-wide count of :class:`Event` objects allocated by live
#: streams.  Tests compare this across an instrumented region to prove
#: the disabled path (:data:`NULL_EVENTS`) allocates no event objects.
_event_allocations = 0


def event_allocation_count() -> int:
    """How many real events streams have allocated in this process."""
    return _event_allocations


@dataclass
class Event:
    """One entry of the stream: a kind, a timestamp, and free-form data.

    ``seq`` is the stream-local, strictly increasing sequence number (the
    total order consumers rely on); ``ts`` is seconds since the owning
    stream's epoch, so an adopted worker stream can be re-based exactly
    like a span tree.
    """

    seq: int
    ts: float
    kind: str
    data: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "event",
            "event": self.kind,
            "seq": self.seq,
            "ts": self.ts,
            "data": dict(self.data),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Event":
        if data.get("kind") != "event":
            raise ValueError(f"not an event payload: {data.get('kind')!r}")
        return cls(
            seq=int(data["seq"]),
            ts=float(data["ts"]),
            kind=str(data["event"]),
            data=dict(data.get("data", {})),
        )


@dataclass
class EventsSnapshot:
    """A stream's recorded events plus the epoch needed to re-base them."""

    epoch_wall: float
    events: list[Event] = field(default_factory=list)
    dropped: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "events",
            "epoch_wall": self.epoch_wall,
            "dropped": self.dropped,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "EventsSnapshot":
        if data.get("kind") != "events":
            raise ValueError(f"not an events payload: {data.get('kind')!r}")
        return cls(
            epoch_wall=float(data["epoch_wall"]),
            events=[Event.from_dict(e) for e in data.get("events", [])],
            dropped=int(data.get("dropped", 0)),
        )


# ----------------------------------------------------------------------
# Sinks
# ----------------------------------------------------------------------

class RingBufferSink:
    """Keeps the last ``capacity`` events in memory (the default sink)."""

    def __init__(self, capacity: int = 100_000) -> None:
        self._buffer: deque[Event] = deque(maxlen=capacity)

    def accept(self, event: Event) -> None:
        self._buffer.append(event)

    def close(self) -> None:
        pass

    @property
    def events(self) -> list[Event]:
        return list(self._buffer)


class JsonlSink:
    """Streams each event as one JSON line to a file (opened lazily)."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle = None
        self.written = 0

    def accept(self, event: Event) -> None:
        if self._handle is None:
            self._handle = open(self.path, "w", encoding="utf-8")
        self._handle.write(
            json.dumps(event.to_dict(), sort_keys=True, separators=(",", ":"))
        )
        self._handle.write("\n")
        self.written += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class CallbackSink:
    """Hands every event to a user callback (the live-progress consumer).

    A callback that raises would poison the instrumented flow, so
    exceptions are swallowed — observability must never change results.
    """

    def __init__(self, callback: Callable[[Event], None]) -> None:
        self._callback = callback

    def accept(self, event: Event) -> None:
        try:
            self._callback(event)
        except Exception:  # noqa: BLE001 - sinks must not poison the flow
            pass

    def close(self) -> None:
        closer = getattr(self._callback, "close", None)
        if callable(closer):
            try:
                closer()
            except Exception:  # noqa: BLE001
                pass


# ----------------------------------------------------------------------
# The no-op path
# ----------------------------------------------------------------------

class NullEventStream:
    """The disabled stream: every operation is a cheap no-op."""

    __slots__ = ()
    enabled = False
    dropped = 0

    def emit(self, kind: str, /, **data: Any) -> None:
        pass

    def adopt(self, snapshot: "EventsSnapshot | dict", job: str | None = None) -> None:
        pass

    def snapshot(self) -> EventsSnapshot:
        return EventsSnapshot(epoch_wall=time.time())

    @property
    def events(self) -> list[Event]:
        return []

    def close(self) -> None:
        pass


NULL_EVENTS = NullEventStream()


# ----------------------------------------------------------------------
# The real stream
# ----------------------------------------------------------------------

class EventStream:
    """Collects ordered events and fans them out to pluggable sinks.

    Thread-safe: the sequence number is assigned and the sinks invoked
    under one lock, so the per-stream total order is exact even when the
    engine's dispatch loop and a synthesis thread emit concurrently.
    ``max_events`` bounds memory/IO on pathological workloads — past the
    cap, events are counted in :attr:`dropped` instead of recorded.
    """

    enabled = True

    def __init__(
        self,
        sinks: "list[RingBufferSink | JsonlSink | CallbackSink] | None" = None,
        max_events: int = 1_000_000,
    ) -> None:
        self.epoch_wall = time.time()
        self._epoch_perf = time.perf_counter()
        self.sinks = list(sinks) if sinks is not None else [RingBufferSink()]
        self.max_events = max_events
        self.dropped = 0
        self._seq = 0
        self._lock = threading.Lock()

    def add_sink(self, sink: "RingBufferSink | JsonlSink | CallbackSink") -> None:
        self.sinks.append(sink)

    def emit(self, kind: str, /, **data: Any) -> None:
        """Record one event; ``kind`` must be in :data:`EVENT_KINDS`."""
        global _event_allocations
        ts = time.perf_counter() - self._epoch_perf
        with self._lock:
            if self._seq >= self.max_events:
                self.dropped += 1
                return
            _event_allocations += 1
            event = Event(seq=self._seq, ts=ts, kind=kind, data=data)
            self._seq += 1
            for sink in self.sinks:
                sink.accept(event)

    def adopt(
        self, snapshot: "EventsSnapshot | dict", job: str | None = None
    ) -> None:
        """Re-emit a (worker's) serialized event stream under this one.

        The adopted events keep their relative order, get fresh sequence
        numbers on this stream's timeline, and are re-based from the
        child stream's wall-clock epoch; ``job`` labels every adopted
        event so interleaved workers stay distinguishable.
        """
        global _event_allocations
        if isinstance(snapshot, dict):
            snapshot = EventsSnapshot.from_dict(snapshot)
        delta = snapshot.epoch_wall - self.epoch_wall
        with self._lock:
            self.dropped += snapshot.dropped
            for source in snapshot.events:
                if self._seq >= self.max_events:
                    self.dropped += 1
                    continue
                data = dict(source.data)
                if job is not None:
                    data.setdefault("job", job)
                _event_allocations += 1
                event = Event(
                    seq=self._seq,
                    ts=source.ts + delta,
                    kind=source.kind,
                    data=data,
                )
                self._seq += 1
                for sink in self.sinks:
                    sink.accept(event)

    def snapshot(self) -> EventsSnapshot:
        """The recorded events (from the first ring-buffer sink) + epoch."""
        with self._lock:
            return EventsSnapshot(
                epoch_wall=self.epoch_wall,
                events=list(self.events),
                dropped=self.dropped,
            )

    @property
    def events(self) -> list[Event]:
        """Events held by the first in-memory sink (empty if none)."""
        for sink in self.sinks:
            if isinstance(sink, RingBufferSink):
                return sink.events
        return []

    def close(self) -> None:
        """Close every sink (flushes the JSONL file sink)."""
        for sink in self.sinks:
            sink.close()


# ----------------------------------------------------------------------
# The ambient stream
# ----------------------------------------------------------------------

def env_events_settings() -> tuple[bool, str | None]:
    """Interpret ``REPRO_EVENTS``: (enabled, JSONL output path).

    Same grammar as ``REPRO_TRACE``: unset / falsy values disable the
    stream, truthy values enable it, and any other value enables it
    *and* names the JSONL file the CLI streams events to.
    """
    return env_toggle("REPRO_EVENTS")


def env_events_path() -> str | None:
    """The JSONL output path named by ``REPRO_EVENTS``, if any."""
    return env_events_settings()[1]


def _default_stream() -> "EventStream | NullEventStream":
    enabled, path = env_events_settings()
    if not enabled:
        return NULL_EVENTS
    sinks: list[RingBufferSink | JsonlSink | CallbackSink] = [RingBufferSink()]
    if path:
        sinks.append(JsonlSink(path))
    return EventStream(sinks=sinks)


_current: ContextVar["EventStream | NullEventStream"] = ContextVar(
    "repro_events", default=_default_stream()
)


def current_events() -> "EventStream | NullEventStream":
    """The ambient event stream (the no-op stream unless installed)."""
    return _current.get()


def set_events(stream: "EventStream | NullEventStream") -> None:
    """Install ``stream`` as the ambient event stream for this context."""
    _current.set(stream)


@contextmanager
def use_events(
    stream: "EventStream | NullEventStream",
) -> Iterator["EventStream | NullEventStream"]:
    """Temporarily install ``stream`` as the ambient event stream.

    >>> from repro.obs import EventStream, use_events
    >>> with use_events(EventStream()) as stream:
    ...     pass  # everything in here emits into `stream`
    """
    token = _current.set(stream)
    try:
        yield stream
    finally:
        _current.reset(token)
