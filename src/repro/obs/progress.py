"""Live progress rendering on top of the event stream.

:class:`ProgressRenderer` is an event-stream consumer (install it via
:class:`~repro.obs.events.CallbackSink`) that maintains a single
carriage-return status line on a terminal stream: combinations scored
against the search-space bound with an ETA during a synthesis run,
jobs finished against the batch size during ``repro batch``, and the
engine's heartbeats in between.  It is the reference consumer of the
streaming substrate the ROADMAP's synthesis-as-a-service item builds on.

The renderer only ever *reads* events — it cannot change results — and
rendering is throttled (default 10 Hz) so even an exhaustive search
emitting hundreds of ``combo_scored`` events stays cheap.
"""

from __future__ import annotations

import sys
import time
from typing import TextIO

from .events import Event


class ProgressRenderer:
    """Callback turning events into a throttled one-line status display.

    >>> from repro.obs import CallbackSink, EventStream, ProgressRenderer
    >>> stream = EventStream(sinks=[CallbackSink(ProgressRenderer())])
    """

    def __init__(
        self,
        out: TextIO | None = None,
        total_jobs: int | None = None,
        min_interval: float = 0.1,
        clock=time.monotonic,
    ) -> None:
        self.out = out if out is not None else sys.stderr
        self.total_jobs = total_jobs
        self.min_interval = min_interval
        self._clock = clock
        self._started = clock()
        self._last_render = 0.0
        self._line_open = False
        # -- accumulated state ------------------------------------------
        self.jobs_done = 0
        self.cache_hits = 0
        self.scored = 0
        self.bound = 0
        self.memo_hits = 0
        self.pruned = 0
        self.phase = ""
        self.last_job = ""

    # -- event intake ----------------------------------------------------

    def __call__(self, event: Event) -> None:
        kind = event.kind
        data = event.data
        if kind == "combo_scored":
            self.scored = int(data.get("scored", self.scored + 1))
            self.bound = int(data.get("bound", self.bound))
        elif kind == "combo_memo_hit":
            self.memo_hits += 1
        elif kind == "combo_pruned":
            self.pruned += 1
        elif kind == "phase_start":
            self.phase = str(data.get("name", ""))
        elif kind in ("job_end", "cache_hit"):
            self.jobs_done += 1
            if kind == "cache_hit":
                self.cache_hits += 1
            self.last_job = str(data.get("job", data.get("name", "")))
            self._render(force=True)
            return
        elif kind == "heartbeat":
            self._render(force=True)
            return
        self._render()

    # -- rendering -------------------------------------------------------

    def status_line(self) -> str:
        """The current one-line summary (without the carriage return)."""
        elapsed = self._clock() - self._started
        parts: list[str] = []
        if self.total_jobs:
            parts.append(f"jobs {self.jobs_done}/{self.total_jobs}")
            if self.cache_hits:
                parts.append(f"{self.cache_hits} cached")
            if self.last_job:
                parts.append(f"last={self.last_job}")
        if self.phase:
            parts.append(f"phase={self.phase}")
        if self.scored:
            if self.bound:
                parts.append(f"combos {self.scored}/{self.bound}")
                if 0 < self.scored < self.bound:
                    eta = elapsed * (self.bound / self.scored - 1.0)
                    parts.append(f"eta {eta:.0f}s")
            else:
                parts.append(f"combos {self.scored}")
            if self.memo_hits or self.pruned:
                parts.append(f"memo {self.memo_hits} pruned {self.pruned}")
        parts.append(f"{elapsed:.1f}s")
        return " | ".join(parts)

    def _render(self, force: bool = False) -> None:
        now = self._clock()
        if not force and now - self._last_render < self.min_interval:
            return
        self._last_render = now
        self.out.write("\r\x1b[K" + self.status_line())
        self.out.flush()
        self._line_open = True

    def close(self) -> None:
        """Finish the status line (called by the CallbackSink on close)."""
        if self._line_open:
            self.out.write("\r\x1b[K" + self.status_line() + "\n")
            self.out.flush()
            self._line_open = False
