"""Validators for the observability artifacts ``repro`` writes.

Used by the test suite, by ``scripts/check_trace.py`` (the CI smoke
check), and by ``repro trace`` before it reports success.  Two formats:

* **Chrome trace-event JSON** (:func:`validate_chrome_trace`) — the
  checks cover what Perfetto / ``chrome://tracing`` actually require to
  load a file: the JSON Object Format with a ``traceEvents`` array of
  well-typed events, non-negative microsecond timestamps, and durations
  present on complete (``"X"``) events.
* **Event-stream JSONL** (:func:`validate_event_jsonl`) — one
  :class:`~repro.obs.events.Event` object per line, kinds restricted to
  the :data:`~repro.obs.events.EVENT_KINDS` taxonomy, sequence numbers
  strictly increasing (the stream's total order is a contract).
* **Job lifecycles** (:func:`validate_job_lifecycles`) — per-job
  ordering of the ``job_*`` lifecycle events the engine and the durable
  service emit.  The rules are deliberately requeue-aware: a lease
  expiry or crash recovery legally re-runs a job, so a second
  ``job_start`` after a ``job_requeued``/``retry``/``timeout`` is a
  valid redelivery, **not** a duplicate — only an unexplained repeat is
  flagged.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

#: Event phases this repo emits or tolerates (the full spec has more).
_KNOWN_PHASES = frozenset({"X", "B", "E", "i", "C", "M", "b", "e"})


def validate_chrome_trace(document: Any) -> list[str]:
    """Return a list of schema violations (empty = valid).

    Accepts the JSON Object Format (``{"traceEvents": [...]}``) or the
    bare JSON Array Format (``[...]``).
    """
    errors: list[str] = []
    if isinstance(document, dict):
        events = document.get("traceEvents")
        if not isinstance(events, list):
            return ["top-level object lacks a 'traceEvents' array"]
    elif isinstance(document, list):
        events = document
    else:
        return [f"expected an object or array, got {type(document).__name__}"]

    for index, event in enumerate(events):
        where = f"event[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        name = event.get("name")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: missing or empty 'name'")
        phase = event.get("ph")
        if not isinstance(phase, str) or phase not in _KNOWN_PHASES:
            errors.append(f"{where}: unknown phase {phase!r}")
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            errors.append(f"{where}: 'ts' must be a non-negative number")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or isinstance(dur, bool) or dur < 0:
                errors.append(f"{where}: complete event needs non-negative 'dur'")
        for field in ("pid", "tid"):
            value = event.get(field)
            if value is not None and (
                not isinstance(value, int) or isinstance(value, bool)
            ):
                errors.append(f"{where}: '{field}' must be an integer")
        args = event.get("args")
        if args is not None and not isinstance(args, dict):
            errors.append(f"{where}: 'args' must be an object")
    return errors


def _events(document: Any) -> list[dict[str, Any]]:
    events = document.get("traceEvents", []) if isinstance(document, dict) else document
    return [e for e in events if isinstance(e, dict)]


def chrome_trace_depth(document: Any) -> int:
    """Maximum nesting depth of complete events, per (pid, tid) lane.

    Depth is computed by interval containment: within one lane, events
    are sorted by start time (ties: longer first) and pushed onto a
    stack that pops when an event starts at-or-after the top's end.
    Exactly-nested exporter output yields its true tree depth.
    """
    lanes: dict[tuple[int, int], list[tuple[float, float]]] = {}
    for event in _events(document):
        if event.get("ph") != "X":
            continue
        key = (int(event.get("pid", 0)), int(event.get("tid", 0)))
        start = float(event["ts"])
        lanes.setdefault(key, []).append((start, start + float(event.get("dur", 0))))

    deepest = 0
    for intervals in lanes.values():
        intervals.sort(key=lambda pair: (pair[0], -pair[1]))
        stack: list[float] = []
        for start, end in intervals:
            while stack and stack[-1] <= start:
                stack.pop()
            stack.append(end)
            deepest = max(deepest, len(stack))
    return deepest


def event_names(document: Any) -> list[str]:
    """Every event name, in file order (duplicates preserved)."""
    return [
        str(event.get("name", ""))
        for event in _events(document)
    ]


#: Events that legalize another ``job_start`` for the same job: the
#: engine's retry/timeout redelivery and the service's lease requeue.
_REDELIVERY_KINDS = frozenset({"job_requeued", "retry", "timeout"})


def validate_job_lifecycles(entries: Iterable[dict]) -> list[str]:
    """Per-job lifecycle violations over parsed event dicts (empty = valid).

    ``entries`` are event payloads (``Event.to_dict`` shape or parsed
    JSONL lines).  Events are grouped by ``data["job"]`` (events without
    a job label are ignored) and checked per job, in stream order:

    * ``job_end`` must close an open ``job_start``;
    * a second ``job_start`` needs an intervening redelivery event
      (``job_requeued`` / ``retry`` / ``timeout``) — redeliveries are a
      legal part of crash recovery and must not read as duplicates;
    * ``job_leased`` is illegal while an execution is open (a lease on a
      running job means two workers own it);
    * ``job_dead_letter`` requires at least one prior ``job_requeued``
      (a job cannot exhaust a redelivery budget it never consumed);
    * nothing may follow a terminal ``job_dead_letter``/``job_cancelled``.
    """
    errors: list[str] = []
    # Per-job state: "open" = a job_start with no job_end yet,
    # "ran" = completed at least one execution, "requeues" = count,
    # "terminal" = saw dead-letter/cancelled.
    state: dict[str, dict[str, Any]] = {}
    for entry in entries:
        if not isinstance(entry, dict):
            continue
        kind = entry.get("event")
        data = entry.get("data") or {}
        job = data.get("job")
        if not isinstance(job, str) or not isinstance(kind, str):
            continue
        if not (kind.startswith("job_") or kind in _REDELIVERY_KINDS):
            continue
        st = state.setdefault(
            job, {"open": False, "ran": False, "requeues": 0, "terminal": None}
        )
        if st["terminal"] is not None:
            errors.append(
                f"job {job!r}: {kind!r} after terminal {st['terminal']!r}"
            )
            continue
        if kind == "job_start":
            if st["open"]:
                errors.append(
                    f"job {job!r}: 'job_start' while an execution is "
                    f"already open (no intervening job_end)"
                )
            elif st["ran"] and st["requeues"] == 0:
                errors.append(
                    f"job {job!r}: duplicate 'job_start' without an "
                    f"intervening requeue/retry/timeout"
                )
            st["open"] = True
            st["requeues"] = 0
        elif kind == "job_end":
            if not st["open"]:
                errors.append(f"job {job!r}: 'job_end' without 'job_start'")
            st["open"] = False
            st["ran"] = True
        elif kind in _REDELIVERY_KINDS:
            # A requeue of an open execution is the crash-orphan path:
            # the job never emitted job_end, the lease reaper took it
            # back.  Close the execution and allow a fresh start.
            st["open"] = False
            st["requeues"] += 1
        elif kind == "job_leased":
            if st["open"]:
                errors.append(
                    f"job {job!r}: 'job_leased' while an execution is open"
                )
        elif kind == "job_dead_letter":
            if st["requeues"] == 0 and not st["ran"]:
                errors.append(
                    f"job {job!r}: 'job_dead_letter' without any "
                    f"prior delivery or requeue"
                )
            st["terminal"] = kind
        elif kind == "job_cancelled":
            st["terminal"] = kind
        # job_queued needs no checks: resubmission dedup never re-emits.
    for job, st in state.items():
        if st["open"]:
            errors.append(
                f"job {job!r}: execution left open (job_start without "
                f"job_end, requeue, or terminal state)"
            )
    return errors


def validate_event_jsonl(lines: "str | Iterable[str]") -> list[str]:
    """Schema + ordering violations of an event-stream JSONL (empty = valid).

    ``lines`` is the file content (one JSON object per line) or any
    iterable of lines.  Checks per line: parseable JSON object with
    ``kind == "event"``, an ``event`` field naming a kind from the
    :data:`~repro.obs.events.EVENT_KINDS` taxonomy, a strictly
    increasing integer ``seq``, a non-negative numeric ``ts``, and an
    object ``data``.
    """
    from .events import EVENT_KINDS

    if isinstance(lines, str):
        lines = lines.splitlines()
    errors: list[str] = []
    last_seq: int | None = None
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        where = f"line {number}"
        try:
            entry = json.loads(line)
        except ValueError as exc:
            errors.append(f"{where}: not valid JSON ({exc})")
            continue
        if not isinstance(entry, dict):
            errors.append(f"{where}: not a JSON object")
            continue
        if entry.get("kind") != "event":
            errors.append(f"{where}: 'kind' must be \"event\"")
        kind = entry.get("event")
        if not isinstance(kind, str) or kind not in EVENT_KINDS:
            errors.append(f"{where}: unknown event kind {kind!r}")
        seq = entry.get("seq")
        if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
            errors.append(f"{where}: 'seq' must be a non-negative integer")
        elif last_seq is not None and seq <= last_seq:
            errors.append(
                f"{where}: 'seq' {seq} does not increase over {last_seq}"
            )
        else:
            last_seq = seq
        ts = entry.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            errors.append(f"{where}: 'ts' must be a non-negative number")
        data = entry.get("data")
        if data is not None and not isinstance(data, dict):
            errors.append(f"{where}: 'data' must be an object")
    return errors
