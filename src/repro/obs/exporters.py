"""Exporters: JSONL span logs, Chrome trace-event JSON, Prometheus text.

Three formats, three audiences:

* :func:`spans_to_jsonl` / :func:`write_jsonl` — one JSON object per
  span, flat, grep-able; the archival event log.
* :func:`chrome_trace` / :func:`write_chrome_trace` — the Trace Event
  Format consumed by Perfetto (https://ui.perfetto.dev) and
  ``chrome://tracing``; complete (``"ph": "X"``) events with microsecond
  timestamps, one lane (``tid``) per stitched worker subtree.
* :func:`prometheus_text` / :func:`write_prometheus` — the Prometheus
  text exposition format (version 0.0.4) of a
  :class:`~repro.obs.metrics.MetricsRegistry`.

All exporters are pure readers — exporting never mutates the tracer or
the registry.
"""

from __future__ import annotations

import json
from typing import Any, Iterator

from .metrics import Histogram, MetricsRegistry
from .tracer import Span, Tracer, TraceSnapshot


def _roots(spans: "Tracer | TraceSnapshot | list[Span]") -> list[Span]:
    if isinstance(spans, Tracer):
        return spans.snapshot().spans
    if isinstance(spans, TraceSnapshot):
        return spans.spans
    return list(spans)


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------

def spans_to_jsonl(spans: "Tracer | TraceSnapshot | list[Span]") -> Iterator[str]:
    """One flat JSON line per span, depth-first, with the parent's name.

    Flat lines (rather than one nested document) keep the log append-
    friendly and usable with line tools: ``grep cce trace.jsonl | wc -l``.
    """

    def emit(span: Span, parent: str | None, path: str) -> Iterator[str]:
        record: dict[str, Any] = {
            "name": span.name,
            "path": path,
            "parent": parent,
            "start": span.start,
            "end": span.end,
            "duration": span.duration,
            "tid": span.tid,
        }
        if span.attrs:
            record["attrs"] = span.attrs
        if span.counters:
            record["counters"] = span.counters
        yield json.dumps(record, sort_keys=True)
        for child in span.children:
            yield from emit(child, span.name, f"{path}/{child.name}")

    for root in _roots(spans):
        yield from emit(root, None, root.name)


def write_jsonl(path: str, spans: "Tracer | TraceSnapshot | list[Span]") -> int:
    """Write the JSONL span log; returns the number of lines written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for line in spans_to_jsonl(spans):
            handle.write(line)
            handle.write("\n")
            count += 1
    return count


# ----------------------------------------------------------------------
# Chrome trace-event format
# ----------------------------------------------------------------------

def chrome_trace(
    spans: "Tracer | TraceSnapshot | list[Span]", pid: int = 0
) -> dict[str, Any]:
    """The span tree as a Trace Event Format document.

    Every span becomes a complete event (``"ph": "X"``) with ``ts`` and
    ``dur`` in microseconds; attributes and counters ride in ``args``.
    The category is the first path segment of the span name, so Perfetto
    can filter e.g. all ``cce/*`` sub-steps at once.
    """
    events: list[dict[str, Any]] = []

    def emit(span: Span) -> None:
        args: dict[str, Any] = {}
        args.update(span.attrs)
        args.update(span.counters)
        events.append(
            {
                "name": span.name,
                "cat": span.name.split("/", 1)[0],
                "ph": "X",
                "ts": round(span.start * 1e6, 3),
                "dur": round(max(span.duration, 0.0) * 1e6, 3),
                "pid": pid,
                "tid": span.tid,
                "args": args,
            }
        )
        for child in span.children:
            emit(child)

    for root in _roots(spans):
        emit(root)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str, spans: "Tracer | TraceSnapshot | list[Span]", pid: int = 0
) -> int:
    """Write a Chrome trace JSON; returns the number of events written."""
    document = chrome_trace(spans, pid=pid)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, sort_keys=True)
    return len(document["traceEvents"])


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------

def _format_labels(labels: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{key}="{_escape(value)}"' for key, value in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def _format_value(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def prometheus_text(registry: MetricsRegistry) -> str:
    """Prometheus text exposition (format 0.0.4) of a registry."""
    lines: list[str] = []
    seen_types: set[str] = set()
    for metric in registry.collect():
        if metric.name not in seen_types:
            seen_types.add(metric.name)
            lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, Histogram):
            cumulative = metric.cumulative_counts()
            for bound, count in zip(metric.buckets, cumulative):
                le = _format_labels(metric.labels, f'le="{_format_value(bound)}"')
                lines.append(f"{metric.name}_bucket{le} {count}")
            inf = _format_labels(metric.labels, 'le="+Inf"')
            lines.append(f"{metric.name}_bucket{inf} {cumulative[-1]}")
            labels = _format_labels(metric.labels)
            lines.append(f"{metric.name}_sum{labels} {_format_value(metric.sum)}")
            lines.append(f"{metric.name}_count{labels} {metric.count}")
        else:
            labels = _format_labels(metric.labels)
            lines.append(f"{metric.name}{labels} {_format_value(metric.value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(path: str, registry: MetricsRegistry) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(prometheus_text(registry))
