"""Unified observability: hierarchical spans, metrics, exporters.

The subsystem the ROADMAP's scaling PRs measure themselves against:

* :mod:`repro.obs.tracer` — hierarchical :class:`Span` trees behind a
  near-zero-overhead no-op default; ambient via :func:`current_tracer`
  / :func:`use_tracer`; cross-process stitching via
  :meth:`Tracer.adopt`; ``REPRO_TRACE`` turns the default on.
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` with counters,
  gauges, and fixed-bucket histograms; :func:`observe_timings` bridges
  the flow's per-phase :class:`~repro.core.metrics.Timings` into it.
* :mod:`repro.obs.exporters` — JSONL span logs, Chrome trace-event JSON
  (Perfetto / ``chrome://tracing``), Prometheus text exposition.
* :mod:`repro.obs.validate` — the bundled Chrome-trace checker used by
  tests, ``repro trace``, and CI.

See ``docs/OBSERVABILITY.md`` for the span taxonomy and formats.
"""

from .exporters import (
    chrome_trace,
    prometheus_text,
    spans_to_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    observe_timings,
)
from .tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    TraceSnapshot,
    current_tracer,
    env_trace_path,
    env_trace_settings,
    format_span_tree,
    set_tracer,
    span_allocation_count,
    use_tracer,
)
from .validate import chrome_trace_depth, event_names, validate_chrome_trace

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TraceSnapshot",
    "Tracer",
    "chrome_trace",
    "chrome_trace_depth",
    "current_tracer",
    "env_trace_path",
    "env_trace_settings",
    "event_names",
    "format_span_tree",
    "get_registry",
    "observe_timings",
    "prometheus_text",
    "set_tracer",
    "span_allocation_count",
    "spans_to_jsonl",
    "use_tracer",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "write_prometheus",
]
