"""Unified observability: hierarchical spans, events, metrics, exporters.

The subsystem the ROADMAP's scaling PRs measure themselves against:

* :mod:`repro.obs.tracer` — hierarchical :class:`Span` trees behind a
  near-zero-overhead no-op default; ambient via :func:`current_tracer`
  / :func:`use_tracer`; cross-process stitching via
  :meth:`Tracer.adopt`; ``REPRO_TRACE`` turns the default on.
* :mod:`repro.obs.events` — the typed, ordered :class:`EventStream`
  (phase boundaries, scored/memoized/pruned combinations, kernel
  choices, cache hits, retries, heartbeats) with pluggable sinks
  (:class:`RingBufferSink`, :class:`JsonlSink`, :class:`CallbackSink`)
  behind the same zero-cost no-op default; ``REPRO_EVENTS`` turns the
  default on.
* :mod:`repro.obs.progress` — :class:`ProgressRenderer`, the live
  status-line consumer of the event stream (``--progress``).
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` with counters,
  gauges, and fixed-bucket histograms; :func:`observe_timings` bridges
  the flow's per-phase :class:`~repro.core.metrics.Timings` into it.
* :mod:`repro.obs.exporters` — JSONL span logs, Chrome trace-event JSON
  (Perfetto / ``chrome://tracing``), Prometheus text exposition.
* :mod:`repro.obs.validate` — the bundled Chrome-trace and event-JSONL
  checkers used by tests, ``repro trace``, and CI.

See ``docs/OBSERVABILITY.md`` for the span taxonomy, the event
taxonomy, and the export formats.
"""

from .events import (
    EVENT_KINDS,
    NULL_EVENTS,
    CallbackSink,
    Event,
    EventsSnapshot,
    EventStream,
    JsonlSink,
    NullEventStream,
    RingBufferSink,
    current_events,
    env_events_path,
    env_events_settings,
    event_allocation_count,
    set_events,
    use_events,
)
from .exporters import (
    chrome_trace,
    prometheus_text,
    spans_to_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    observe_timings,
)
from .progress import ProgressRenderer
from .tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    TraceSnapshot,
    current_tracer,
    env_toggle,
    env_trace_path,
    env_trace_settings,
    format_span_tree,
    set_tracer,
    span_allocation_count,
    use_tracer,
)
from .validate import (
    chrome_trace_depth,
    event_names,
    validate_chrome_trace,
    validate_event_jsonl,
    validate_job_lifecycles,
)

__all__ = [
    "CallbackSink",
    "Counter",
    "DEFAULT_BUCKETS",
    "EVENT_KINDS",
    "Event",
    "EventStream",
    "EventsSnapshot",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MetricsRegistry",
    "NULL_EVENTS",
    "NULL_TRACER",
    "NullEventStream",
    "NullTracer",
    "ProgressRenderer",
    "RingBufferSink",
    "Span",
    "TraceSnapshot",
    "Tracer",
    "chrome_trace",
    "chrome_trace_depth",
    "current_events",
    "current_tracer",
    "env_events_path",
    "env_events_settings",
    "env_toggle",
    "env_trace_path",
    "env_trace_settings",
    "event_allocation_count",
    "event_names",
    "format_span_tree",
    "get_registry",
    "observe_timings",
    "prometheus_text",
    "set_events",
    "set_tracer",
    "span_allocation_count",
    "spans_to_jsonl",
    "use_events",
    "use_tracer",
    "validate_chrome_trace",
    "validate_event_jsonl",
    "validate_job_lifecycles",
    "write_chrome_trace",
    "write_jsonl",
    "write_prometheus",
]
