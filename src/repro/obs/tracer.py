"""Hierarchical span tracing for the synthesis flow and the batch engine.

A :class:`Span` is one timed, named region of work; spans nest
(``poly_synth`` > ``cce`` > ``cce/extract``), carry free-form attributes
and integer counters, and together form the tree the exporters
(:mod:`repro.obs.exporters`) serialize to JSONL, Chrome trace-event
JSON, or feed into metrics.

Design constraints, in order:

1. **Near-zero overhead when off.**  The ambient tracer defaults to
   :data:`NULL_TRACER`, whose ``span()`` returns one shared no-op
   context manager — entering a disabled span is two attribute-free
   method calls and no allocation.  Instrumentation can therefore stay
   unconditionally in the hot paths (the flow's results are required to
   be bit-identical and within a few percent of the uninstrumented
   runtime; tests enforce both).
2. **Results never depend on tracing.**  Nothing reads a span back into
   the flow; the tracer is write-only from the algorithm's perspective.
3. **Thread- and process-safe.**  Open-span stacks are per-thread;
   finished trees are appended under a lock.  Pool workers build their
   own :class:`Tracer` and ship a :class:`TraceSnapshot` home inside the
   job payload; :meth:`Tracer.adopt` stitches the worker tree under the
   parent's current span, re-basing timestamps via each tracer's
   wall-clock epoch.

The ``REPRO_TRACE`` environment variable turns the ambient default on:
``1``/``true``/``on``/``yes`` enable tracing, any other non-empty value
both enables it *and* names the Chrome-trace file the CLI writes on
exit (see :func:`env_trace_settings` and ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Iterator


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------

#: Process-wide count of :class:`Span` objects allocated by live tracers.
#: Tests compare this across an instrumented region to prove the disabled
#: path (``NULL_TRACER``) allocates no span objects at all.
_span_allocations = 0


def span_allocation_count() -> int:
    """How many real spans tracers have allocated in this process so far."""
    return _span_allocations


@dataclass
class Span:
    """One timed region of work; a node of the trace tree.

    ``start``/``end`` are seconds since the owning tracer's epoch (not
    absolute wall time), so a serialized tree can be re-based onto a
    different tracer's timeline with a single offset.  ``tid`` is a
    display lane for the Chrome-trace exporter — worker subtrees get a
    distinct lane per job when stitched.
    """

    name: str
    start: float = 0.0
    end: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)
    tid: int = 0

    # -- the API instrumented code sees --------------------------------

    def set(self, **attrs: Any) -> None:
        """Attach or overwrite attributes."""
        self.attrs.update(attrs)

    def count(self, **deltas: int) -> None:
        """Add integer counters (cumulative per key)."""
        for key, value in deltas.items():
            self.counters[key] = self.counters.get(key, 0) + int(value)

    # -- queries --------------------------------------------------------

    @property
    def duration(self) -> float:
        return (self.end if self.end is not None else self.start) - self.start

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first, in record order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def depth(self) -> int:
        """Height of the subtree rooted here (a leaf has depth 1)."""
        return 1 + max((child.depth() for child in self.children), default=0)

    def find(self, name: str) -> "Span | None":
        """First span (depth-first) whose name matches exactly."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def signature(self) -> tuple:
        """Timing-free structural identity: (name, child signatures).

        Children are kept in record order — within one thread the order
        is deterministic, and the cross-process stitching tests compare
        *sets* of job-subtree signatures to stay order-independent.
        """
        return (self.name, tuple(child.signature() for child in self.children))

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "kind": "span",
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "children": [child.to_dict() for child in self.children],
        }
        if self.attrs:
            data["attrs"] = dict(self.attrs)
        if self.counters:
            data["counters"] = dict(self.counters)
        if self.tid:
            data["tid"] = self.tid
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        if data.get("kind") != "span":
            raise ValueError(f"not a span payload: {data.get('kind')!r}")
        return cls(
            name=str(data["name"]),
            start=float(data["start"]),
            end=None if data.get("end") is None else float(data["end"]),
            attrs=dict(data.get("attrs", {})),
            counters={str(k): int(v) for k, v in data.get("counters", {}).items()},
            children=[cls.from_dict(c) for c in data.get("children", [])],
            tid=int(data.get("tid", 0)),
        )


@dataclass
class TraceSnapshot:
    """A tracer's finished span trees plus the epoch needed to re-base them."""

    epoch_wall: float
    spans: list[Span] = field(default_factory=list)
    dropped: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": "trace",
            "epoch_wall": self.epoch_wall,
            "dropped": self.dropped,
            "spans": [span.to_dict() for span in self.spans],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TraceSnapshot":
        if data.get("kind") != "trace":
            raise ValueError(f"not a trace payload: {data.get('kind')!r}")
        return cls(
            epoch_wall=float(data["epoch_wall"]),
            spans=[Span.from_dict(s) for s in data.get("spans", [])],
            dropped=int(data.get("dropped", 0)),
        )

    def walk(self) -> Iterator[Span]:
        for root in self.spans:
            yield from root.walk()

    def depth(self) -> int:
        return max((root.depth() for root in self.spans), default=0)


# ----------------------------------------------------------------------
# The no-op path
# ----------------------------------------------------------------------

class _NullSpan:
    """Shared do-nothing span handed out when tracing is off."""

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        pass

    def count(self, **deltas: int) -> None:
        pass


class _NullSpanContext:
    """Shared do-nothing context manager; one instance serves every call."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, *exc: object) -> bool:
        return False


NULL_SPAN = _NullSpan()
_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer:
    """The disabled tracer: every operation is a cheap no-op."""

    __slots__ = ()
    enabled = False
    dropped = 0

    @property
    def roots(self) -> list[Span]:
        return []

    def span(self, name: str, **attrs: Any) -> _NullSpanContext:
        return _NULL_SPAN_CONTEXT

    def adopt(self, tree: "TraceSnapshot | dict", tid: int = 0) -> None:
        pass

    def snapshot(self) -> TraceSnapshot:
        return TraceSnapshot(epoch_wall=time.time())


NULL_TRACER = NullTracer()


# ----------------------------------------------------------------------
# The real tracer
# ----------------------------------------------------------------------

class _SpanContext:
    """Context manager produced by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> Span | _NullSpan:
        self._span = self._tracer._enter(self._name, self._attrs)
        return self._span
    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._span is not NULL_SPAN:
            self._tracer._exit(self._span, exc_type)
        return False


class Tracer:
    """Collects hierarchical spans on one timeline.

    ``max_spans`` bounds memory on pathological workloads (the
    combination search can score hundreds of candidates, each opening a
    ``cse/extract`` span): past the cap new spans are dropped and
    counted in :attr:`dropped` instead of recorded.
    """

    enabled = True

    def __init__(self, max_spans: int = 200_000) -> None:
        self.epoch_wall = time.time()
        self._epoch_perf = time.perf_counter()
        self.max_spans = max_spans
        self.dropped = 0
        self.roots: list[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._recorded = 0

    # -- internals -------------------------------------------------------

    def _now(self) -> float:
        return time.perf_counter() - self._epoch_perf

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _enter(self, name: str, attrs: dict[str, Any]) -> Span | _NullSpan:
        global _span_allocations
        with self._lock:
            if self._recorded >= self.max_spans:
                self.dropped += 1
                return NULL_SPAN
            self._recorded += 1
        _span_allocations += 1
        span = Span(name=name, start=self._now(), attrs=dict(attrs))
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self.roots.append(span)
        stack.append(span)
        return span

    def _exit(self, span: Span, exc_type: type | None) -> None:
        span.end = self._now()
        if exc_type is not None:
            span.attrs.setdefault("error", exc_type.__name__)
        stack = self._stack()
        # Tolerate a corrupted stack (a span leaked across threads)
        # rather than poison the flow being traced.
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:
            while stack and stack[-1] is not span:
                stack.pop()
            if stack:
                stack.pop()

    # -- public API ------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> _SpanContext:
        """Open a nested span: ``with tracer.span("cce", polys=3) as s:``."""
        return _SpanContext(self, name, attrs)

    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def adopt(self, tree: "TraceSnapshot | dict", tid: int = 0) -> None:
        """Stitch a (worker's) serialized span tree under the current span.

        Timestamps are re-based from the child tracer's wall-clock epoch
        onto this tracer's timeline; ``tid`` tags the whole subtree so
        the Chrome-trace exporter renders it in its own lane.
        """
        snapshot = TraceSnapshot.from_dict(tree) if isinstance(tree, dict) else tree
        delta = snapshot.epoch_wall - self.epoch_wall
        self.dropped += snapshot.dropped
        stack = self._stack()
        parent = stack[-1] if stack else None
        for root in snapshot.spans:
            rebased = _rebase(root, delta, tid)
            if parent is not None:
                parent.children.append(rebased)
            else:
                with self._lock:
                    self.roots.append(rebased)

    def snapshot(self) -> TraceSnapshot:
        """An immutable copy-by-reference view suitable for serialization."""
        with self._lock:
            return TraceSnapshot(
                epoch_wall=self.epoch_wall,
                spans=list(self.roots),
                dropped=self.dropped,
            )

    def depth(self) -> int:
        return max((root.depth() for root in self.roots), default=0)

    def find(self, name: str) -> Span | None:
        for root in self.roots:
            found = root.find(name)
            if found is not None:
                return found
        return None


def _rebase(span: Span, delta: float, tid: int) -> Span:
    """A shifted, re-laned copy of a span tree (the original is untouched)."""
    return Span(
        name=span.name,
        start=span.start + delta,
        end=None if span.end is None else span.end + delta,
        attrs=dict(span.attrs),
        counters=dict(span.counters),
        children=[_rebase(child, delta, tid) for child in span.children],
        tid=tid,
    )


# ----------------------------------------------------------------------
# The ambient tracer
# ----------------------------------------------------------------------

_FALSY = frozenset({"", "0", "false", "off", "no", "none", "disabled"})
_TRUTHY = frozenset({"1", "true", "on", "yes"})


def env_toggle(var: str) -> tuple[bool, str | None]:
    """Interpret an on/off/path environment variable: (enabled, path).

    The shared grammar of ``REPRO_TRACE`` and ``REPRO_EVENTS``: unset or
    falsy values (``0``/``false``/``off``/``no``/``none``/``disabled``,
    any case, surrounding whitespace ignored) disable; truthy values
    (``1``/``true``/``on``/``yes``) enable; any other value enables
    *and* is taken as an output file path.  A falsy value must never be
    mistaken for a path — ``REPRO_TRACE=0`` used to produce a Chrome
    trace named ``0``.
    """
    raw = os.environ.get(var, "").strip()
    lowered = raw.lower()
    if lowered in _FALSY:
        return False, None
    if lowered in _TRUTHY:
        return True, None
    return True, raw


def env_trace_settings() -> tuple[bool, str | None]:
    """Interpret ``REPRO_TRACE``: (enabled, chrome-trace output path).

    Unset / falsy values disable tracing; truthy values enable it; any
    other value enables it *and* is taken as the file the CLI writes a
    Chrome trace to when the command finishes.
    """
    return env_toggle("REPRO_TRACE")


_env_enabled, _env_path = env_trace_settings()

_current: ContextVar["Tracer | NullTracer"] = ContextVar(
    "repro_tracer", default=Tracer() if _env_enabled else NULL_TRACER
)


def current_tracer() -> "Tracer | NullTracer":
    """The ambient tracer (the no-op tracer unless one was installed)."""
    return _current.get()


def set_tracer(tracer: "Tracer | NullTracer") -> None:
    """Install ``tracer`` as the ambient tracer for this context."""
    _current.set(tracer)


@contextmanager
def use_tracer(tracer: "Tracer | NullTracer") -> Iterator["Tracer | NullTracer"]:
    """Temporarily install ``tracer`` as the ambient tracer.

    >>> from repro.obs import Tracer, use_tracer
    >>> with use_tracer(Tracer()) as tracer:
    ...     pass  # everything in here records into `tracer`
    """
    token = _current.set(tracer)
    try:
        yield tracer
    finally:
        _current.reset(token)


def env_trace_path() -> str | None:
    """The Chrome-trace output path named by ``REPRO_TRACE``, if any."""
    return env_trace_settings()[1]


def format_span_tree(
    spans: "Tracer | TraceSnapshot | list[Span]",
    max_children: int = 12,
) -> str:
    """Indented text rendering of a span tree (CLI / debugging aid)."""
    if isinstance(spans, (Tracer, TraceSnapshot)):
        roots = spans.roots if isinstance(spans, Tracer) else spans.spans
    else:
        roots = spans
    lines: list[str] = []

    def render(span: Span, indent: int) -> None:
        extra = "".join(f" {k}={v}" for k, v in span.counters.items())
        lines.append(
            f"{'  ' * indent}{span.name}: {span.duration * 1000.0:.2f} ms{extra}"
        )
        for child in span.children[:max_children]:
            render(child, indent + 1)
        if len(span.children) > max_children:
            lines.append(
                f"{'  ' * (indent + 1)}... and "
                f"{len(span.children) - max_children} more"
            )

    for root in roots:
        render(root, 0)
    return "\n".join(lines)
