"""Counters, gauges, and fixed-bucket histograms for the whole system.

The :class:`MetricsRegistry` is the quantitative companion of the span
tracer: spans answer *where inside one run* time went, the registry
accumulates *how the system behaves across runs* — cache hit counters,
pool queue-wait histograms, per-phase second histograms fed from
:class:`~repro.core.metrics.Timings` via :func:`observe_timings`.

Metrics are identified by name plus an optional label set, mirroring the
Prometheus data model so :func:`repro.obs.exporters.prometheus_text` is
a straight transcription.  A process-wide default registry is available
via :func:`get_registry`; the flow and engine publish into it, and the
CLI's ``--stats`` flag prints it.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.metrics import Timings

#: Default histogram buckets (seconds) — spans sub-millisecond phase
#: steps up to multi-second whole-suite synthesis runs.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0,
)

Labels = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> Labels:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing value."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Labels) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += amount


class Gauge:
    """A value that can go up and down (worker utilization, pool size)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Labels) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with cumulative Prometheus semantics.

    ``buckets`` are upper bounds (an implicit ``+Inf`` bucket is always
    present); ``bucket_counts[i]`` is the number of observations at or
    under ``buckets[i]`` exclusive of earlier buckets — cumulated only
    at export time, matching the exposition format.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "buckets", "bucket_counts", "sum", "count")

    def __init__(self, name: str, labels: Labels, buckets: Iterable[float]) -> None:
        self.name = name
        self.labels = labels
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("a histogram needs at least one bucket bound")
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # + the +Inf bucket
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative_counts(self) -> list[int]:
        """Per-bucket cumulative counts, ending with the total (+Inf)."""
        out: list[int] = []
        running = 0
        for n in self.bucket_counts:
            running += n
            out.append(running)
        return out


Metric = Counter | Gauge | Histogram


class MetricsRegistry:
    """Get-or-create store of named metrics, thread-safe."""

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, str, Labels], Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, kind: str, name: str, labels: dict, factory) -> Metric:
        key = (kind, name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = factory(name, key[2])
                self._metrics[key] = metric
            return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get_or_create("counter", name, labels, Counter)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get_or_create("gauge", name, labels, Gauge)

    def histogram(
        self, name: str, buckets: Iterable[float] = DEFAULT_BUCKETS, **labels: Any
    ) -> Histogram:
        return self._get_or_create(
            "histogram", name, labels,
            lambda n, lbls: Histogram(n, lbls, buckets),
        )

    def collect(self) -> list[Metric]:
        """Every registered metric, sorted by (name, labels) for stable output."""
        with self._lock:
            return sorted(
                self._metrics.values(), key=lambda m: (m.name, m.labels)
            )

    def reset(self) -> None:
        """Drop every metric (tests; the CLI's per-run isolation)."""
        with self._lock:
            self._metrics.clear()

    def as_dict(self) -> dict[str, Any]:
        """JSON-able dump (the machine-readable sibling of the text format)."""
        out: list[dict[str, Any]] = []
        for metric in self.collect():
            entry: dict[str, Any] = {
                "name": metric.name,
                "kind": metric.kind,
                "labels": dict(metric.labels),
            }
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
                entry["counts"] = metric.cumulative_counts()
                entry["sum"] = metric.sum
                entry["count"] = metric.count
            else:
                entry["value"] = metric.value
            out.append(entry)
        return {"kind": "metrics", "metrics": out}


_GLOBAL = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _GLOBAL


def observe_timings(
    timings: "Timings",
    registry: MetricsRegistry | None = None,
    prefix: str = "repro",
) -> None:
    """Feed one run's per-phase :class:`Timings` into a registry.

    Each phase contributes an observation to the
    ``<prefix>_phase_seconds`` histogram and adds its integer counters
    to ``<prefix>_phase_<counter>_total`` counters, labelled by phase.
    """
    registry = registry if registry is not None else get_registry()
    for phase in timings.phases:
        registry.histogram(f"{prefix}_phase_seconds", phase=phase.phase).observe(
            phase.seconds
        )
        for key, value in phase.counters.items():
            registry.counter(f"{prefix}_phase_{key}_total", phase=phase.phase).inc(
                value
            )
