"""MULT/ADD operator counting for factored expressions.

This is the cost estimate Algorithm 7 uses to rank candidate
decompositions ("we estimate the cost using the number of adders and
multipliers required to implement the polynomial").  The counting rules
reproduce the paper's arithmetic in Table 14.1 / Table 14.2:

* an N-ary sum costs ``N - 1`` additions (subtraction is an adder too);
* an N-ary product costs ``N_effective - 1`` multiplications, where a
  constant factor of ``+-1`` is free (sign inversion is not a multiplier)
  and any other constant factor occupies one multiplier input;
* ``b^k`` costs ``k - 1`` multiplications (the naive chain — the paper
  counts ``x^2`` as one multiplier, ``x^3`` as two);
* a :class:`~repro.expr.ast.BlockRef` costs nothing at the point of use —
  the referenced block is implemented once and its cost is accounted for
  by :class:`~repro.expr.decomposition.Decomposition`.
"""

from __future__ import annotations

from dataclasses import dataclass

from .ast import Add, BlockRef, Const, Expr, Mul, Pow, Var


@dataclass(frozen=True)
class OpCount:
    """A multiplier/adder tally, the paper's cost unit.

    ``mul`` is the paper's MULT count, which includes multiplications by
    numeric coefficients; ``const_mul`` records how many of those ``mul``
    are by compile-time constants (implementable as cheap shift-add
    networks) so the weighted objective can price them realistically.
    """

    mul: int = 0
    add: int = 0
    const_mul: int = 0

    def __add__(self, other: "OpCount") -> "OpCount":
        return OpCount(
            self.mul + other.mul,
            self.add + other.add,
            self.const_mul + other.const_mul,
        )

    @property
    def variable_mul(self) -> int:
        """Multiplications with two non-constant operands."""
        return self.mul - self.const_mul

    def total(self) -> int:
        """Plain operator total (used only for quick comparisons)."""
        return self.mul + self.add

    def weighted(
        self, mul_weight: int = 20, cmul_weight: int = 2, add_weight: int = 1
    ) -> int:
        """Weighted cost approximating relative hardware area.

        Defaults reflect 16-bit datapaths: an array multiplier is about
        twenty ripple adders, a CSD constant multiplier about two.  Exact
        area comes from :mod:`repro.cost`; this is the fast surrogate.
        """
        return (
            self.variable_mul * mul_weight
            + self.const_mul * cmul_weight
            + self.add * add_weight
        )

    def __str__(self) -> str:
        return f"{self.mul} MULT, {self.add} ADD"


ZERO_COUNT = OpCount(0, 0, 0)


def expr_op_count(expr: Expr) -> OpCount:
    """Count the multipliers and adders needed by one expression tree."""
    if isinstance(expr, (Const, Var, BlockRef)):
        return ZERO_COUNT
    if isinstance(expr, Add):
        count = OpCount(0, len(expr.operands) - 1)
        for op in expr.operands:
            count = count + expr_op_count(op)
        return count
    if isinstance(expr, Mul):
        effective = 0
        has_const = False
        count = ZERO_COUNT
        for op in expr.operands:
            if isinstance(op, Const):
                if op.value in (1, -1):
                    continue
                has_const = True
            effective += 1
            count = count + expr_op_count(op)
        mults = max(effective - 1, 0)
        return count + OpCount(mults, 0, 1 if (has_const and mults) else 0)
    if isinstance(expr, Pow):
        return expr_op_count(expr.base) + OpCount(expr.exponent - 1, 0)
    raise TypeError(f"unknown expression node {expr!r}")
