"""Immutable expression nodes for factored polynomial forms.

The node kinds:

``Const(value)``
    Integer constant.
``Var(name)``
    Input bit-vector variable.
``Add(operands)`` / ``Mul(operands)``
    N-ary sum / product (operands are a tuple, at least two entries after
    normalization by the smart constructors).
``Pow(base, exponent)``
    Integer power with ``exponent >= 2`` (costed as a chain of
    ``exponent - 1`` multiplications, the counting the paper uses).
``BlockRef(name)``
    Reference to a shared building block defined in a
    :class:`~repro.expr.decomposition.Decomposition`; the block's own cost
    is paid once, each reference is free.

Use the smart constructors :func:`make_add`, :func:`make_mul`,
:func:`make_pow` rather than the raw dataclasses: they flatten nests, fold
constants, and drop identities, keeping cost counting honest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Union

from repro.poly import Polynomial


class Expr:
    """Base class for expression nodes (all subclasses are frozen)."""

    __slots__ = ()


@dataclass(frozen=True)
class Const(Expr):
    """An integer constant."""

    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Var(Expr):
    """An input variable (bit-vector operand)."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class BlockRef(Expr):
    """A reference to a shared building block by name."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Add(Expr):
    """N-ary addition."""

    operands: tuple[Expr, ...]

    def __str__(self) -> str:
        parts = [str(op) for op in self.operands]
        out = parts[0]
        for p in parts[1:]:
            out += f" - {p[1:]}" if p.startswith("-") else f" + {p}"
        return f"({out})"


@dataclass(frozen=True)
class Mul(Expr):
    """N-ary multiplication."""

    operands: tuple[Expr, ...]

    def __str__(self) -> str:
        operands = list(self.operands)
        prefix = ""
        if operands and isinstance(operands[0], Const) and operands[0].value == -1:
            prefix = "-"
            operands = operands[1:]
        body = "*".join(str(op) for op in operands)
        return f"{prefix}{body}" if body else f"{prefix}1"


@dataclass(frozen=True)
class Pow(Expr):
    """Integer power, exponent at least two."""

    base: Expr
    exponent: int

    def __str__(self) -> str:
        return f"{self.base}^{self.exponent}"


ExprLike = Union[Expr, int, str]


def _coerce(value: ExprLike) -> Expr:
    if isinstance(value, Expr):
        return value
    if isinstance(value, int):
        return Const(value)
    if isinstance(value, str):
        return Var(value)
    raise TypeError(f"cannot build an expression from {value!r}")


def make_add(*operands: ExprLike) -> Expr:
    """Sum with flattening and constant folding; empty sum is 0."""
    flat: list[Expr] = []
    const_total = 0
    for raw in operands:
        op = _coerce(raw)
        if isinstance(op, Add):
            for inner in op.operands:
                if isinstance(inner, Const):
                    const_total += inner.value
                else:
                    flat.append(inner)
        elif isinstance(op, Const):
            const_total += op.value
        else:
            flat.append(op)
    if const_total:
        flat.append(Const(const_total))
    if not flat:
        return Const(0)
    if len(flat) == 1:
        return flat[0]
    return Add(tuple(flat))


def make_mul(*operands: ExprLike) -> Expr:
    """Product with flattening and constant folding; empty product is 1.

    A zero factor collapses the whole product; unit factors are dropped
    (``-1`` merges into the constant)."""
    flat: list[Expr] = []
    const_total = 1
    for raw in operands:
        op = _coerce(raw)
        if isinstance(op, Mul):
            for inner in op.operands:
                if isinstance(inner, Const):
                    const_total *= inner.value
                else:
                    flat.append(inner)
        elif isinstance(op, Const):
            const_total *= op.value
        else:
            flat.append(op)
    if const_total == 0:
        return Const(0)
    if const_total != 1:
        flat.insert(0, Const(const_total))
    if not flat:
        return Const(1)
    if len(flat) == 1:
        return flat[0]
    return Mul(tuple(flat))


def make_pow(base: ExprLike, exponent: int) -> Expr:
    """Power with folding: ``x^0 = 1``, ``x^1 = x``, nested powers merge."""
    node = _coerce(base)
    if exponent < 0:
        raise ValueError(f"negative exponent {exponent} in expression")
    if exponent == 0:
        return Const(1)
    if exponent == 1:
        return node
    if isinstance(node, Const):
        return Const(node.value ** exponent)
    if isinstance(node, Pow):
        return Pow(node.base, node.exponent * exponent)
    return Pow(node, exponent)


def expr_from_polynomial(poly: Polynomial) -> Expr:
    """The direct (expanded sum-of-products) expression of a polynomial.

    This is the paper's "direct implementation": one product per term, one
    big sum — the starting point every optimization is measured against.
    """
    terms = []
    for exps, coeff in poly.sorted_terms("grlex"):
        factors: list[ExprLike] = []
        if coeff != 1 or not any(exps):
            factors.append(coeff)
        for var, e in zip(poly.vars, exps):
            if e:
                factors.append(make_pow(Var(var), e))
        terms.append(make_mul(*factors))
    return make_add(*terms)


def expr_to_polynomial(
    expr: Expr, blocks: Mapping[str, Expr] | None = None
) -> Polynomial:
    """Expand an expression (resolving block references) to a polynomial.

    This is the semantic ground truth used by validation: a decomposition
    is correct iff expansion returns the original polynomial.
    """
    blocks = blocks or {}

    def walk(node: Expr, active: tuple[str, ...]) -> Polynomial:
        if isinstance(node, Const):
            return Polynomial.constant(node.value)
        if isinstance(node, Var):
            return Polynomial.variable(node.name)
        if isinstance(node, BlockRef):
            if node.name in active:
                raise ValueError(f"cyclic block reference through {node.name!r}")
            if node.name not in blocks:
                raise KeyError(f"undefined block {node.name!r}")
            return walk(blocks[node.name], active + (node.name,))
        if isinstance(node, Add):
            total = Polynomial.zero()
            for op in node.operands:
                total = total + walk(op, active)
            return total
        if isinstance(node, Mul):
            total = Polynomial.constant(1)
            for op in node.operands:
                total = total * walk(op, active)
            return total
        if isinstance(node, Pow):
            return walk(node.base, active) ** node.exponent
        raise TypeError(f"unknown expression node {node!r}")

    return walk(expr, ())


def evaluate_expr(
    expr: Expr,
    env: Mapping[str, int],
    blocks: Mapping[str, Expr] | None = None,
    modulus: int | None = None,
) -> int:
    """Evaluate an expression at integer inputs (optionally mod ``modulus``)."""
    blocks = blocks or {}
    cache: dict[str, int] = {}

    def walk(node: Expr) -> int:
        if isinstance(node, Const):
            return node.value if modulus is None else node.value % modulus
        if isinstance(node, Var):
            value = env[node.name]
            return value if modulus is None else value % modulus
        if isinstance(node, BlockRef):
            if node.name not in cache:
                if node.name not in blocks:
                    raise KeyError(f"undefined block {node.name!r}")
                cache[node.name] = walk(blocks[node.name])
            return cache[node.name]
        if isinstance(node, Add):
            total = 0
            for op in node.operands:
                total += walk(op)
            return total if modulus is None else total % modulus
        if isinstance(node, Mul):
            total = 1
            for op in node.operands:
                total *= walk(op)
            return total if modulus is None else total % modulus
        if isinstance(node, Pow):
            base = walk(node.base)
            if modulus is None:
                return base ** node.exponent
            return pow(base, node.exponent, modulus)
        raise TypeError(f"unknown expression node {node!r}")

    return walk(expr)


def expr_block_refs(expr: Expr) -> set[str]:
    """Names of all blocks referenced (non-transitively) by an expression."""
    refs: set[str] = set()

    def walk(node: Expr) -> None:
        if isinstance(node, BlockRef):
            refs.add(node.name)
        elif isinstance(node, Add) or isinstance(node, Mul):
            for op in node.operands:
                walk(op)
        elif isinstance(node, Pow):
            walk(node.base)

    walk(expr)
    return refs
