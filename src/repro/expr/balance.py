"""Tree-height reduction (Nicolau & Potasman [18], paper Section 14.2).

Operator *count* is the paper's area story; operator tree *height* is the
delay story.  This module measures and reduces expression depth:

* :func:`expr_depth` — operator levels on the critical path of one
  expression (powers count as their chain length under naive lowering,
  or logarithmically under square-and-multiply),
* :func:`tree_height_reduction_gain` — levels saved by the balanced
  lowering (n-ary sums/products as logarithmic trees, powers by
  square-and-multiply; ``x^8`` needs 3 multiplies at depth 3 instead of a
  chain of 7).

The actual restructuring happens at DFG lowering
(:class:`repro.dfg.build.DfgBuilder` with ``balanced=True``), where the
region's structural hashing shares the repeated sub-powers that
square-and-multiply creates.
"""

from __future__ import annotations

from math import ceil, log2

from .ast import Add, BlockRef, Const, Expr, Mul, Pow, Var


def expr_depth(expr: Expr, balanced_pow: bool = False) -> int:
    """Operator depth of the expression tree (leaves at depth 0)."""
    if isinstance(expr, (Const, Var, BlockRef)):
        return 0
    if isinstance(expr, (Add, Mul)):
        operands = expr.operands
        inner = max(expr_depth(op, balanced_pow) for op in operands)
        effective = len(operands)
        return inner + max(ceil(log2(effective)) if effective > 1 else 0, 1)
    if isinstance(expr, Pow):
        inner = expr_depth(expr.base, balanced_pow)
        if balanced_pow:
            return inner + max(ceil(log2(expr.exponent)), 1)
        return inner + (expr.exponent - 1)
    raise TypeError(f"unknown expression node {expr!r}")


def tree_height_reduction_gain(expr: Expr) -> int:
    """Levels saved by balanced lowering vs. naive chains."""
    return expr_depth(expr, balanced_pow=False) - expr_depth(expr, balanced_pow=True)
