"""System-level decompositions: shared blocks + one expression per output.

A :class:`Decomposition` is the final product of every synthesis method in
this repository — the paper's Table 14.2 "final decomposition" row is one:

    d1 = x + y;  d2 = x - y;  d3 = x(x-1)y(y-1)
    P1 = 13*d1^2 + 7*d2 + 11;  P2 = 15*d2^2 + 11*d1 + 9;  ...

Blocks may reference earlier blocks (the definition order is topological);
each block's operators are paid once no matter how many outputs use it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.poly import Polynomial

from .ast import Expr, expr_block_refs, expr_to_polynomial
from .cost import OpCount, ZERO_COUNT, expr_op_count


@dataclass
class Decomposition:
    """Named building blocks plus one expression per output polynomial."""

    blocks: dict[str, Expr] = field(default_factory=dict)
    outputs: list[Expr] = field(default_factory=list)
    method: str = ""

    def define_block(self, name: str, expr: Expr) -> None:
        """Add a building block; names must be fresh and definitions acyclic."""
        if name in self.blocks:
            raise ValueError(f"block {name!r} already defined")
        self.blocks[name] = expr
        # Fail fast on cycles / forward references.
        expr_to_polynomial(expr, self.blocks)

    def live_blocks(self) -> list[str]:
        """Blocks reachable from the outputs, in definition order."""
        live: set[str] = set()
        frontier: list[str] = []
        for out in self.outputs:
            frontier.extend(expr_block_refs(out))
        while frontier:
            name = frontier.pop()
            if name in live:
                continue
            if name not in self.blocks:
                raise KeyError(f"undefined block {name!r}")
            live.add(name)
            frontier.extend(expr_block_refs(self.blocks[name]))
        return [name for name in self.blocks if name in live]

    def op_count(self) -> OpCount:
        """Total MULT/ADD count: each live block once, plus every output."""
        count = ZERO_COUNT
        for name in self.live_blocks():
            count = count + expr_op_count(self.blocks[name])
        for out in self.outputs:
            count = count + expr_op_count(out)
        return count

    def to_polynomials(self) -> list[Polynomial]:
        """Expand every output back to a flat polynomial."""
        return [expr_to_polynomial(out, self.blocks) for out in self.outputs]

    def validate(self, system: Sequence[Polynomial]) -> None:
        """Assert the decomposition computes exactly the given system.

        Raises ``ValueError`` on the first mismatch; this is the safety net
        every optimization result passes through in tests and in the
        synthesis driver.
        """
        expanded = self.to_polynomials()
        if len(expanded) != len(system):
            raise ValueError(
                f"decomposition has {len(expanded)} outputs, system has {len(system)}"
            )
        for index, (ours, reference) in enumerate(zip(expanded, system)):
            if ours != reference:
                raise ValueError(
                    f"output {index} expands to {ours}, expected {reference}"
                    + (f" (method {self.method})" if self.method else "")
                )

    def validate_mod(self, system: Sequence[Polynomial], modulus: int,
                     samples: Iterable[Mapping[str, int]]) -> None:
        """Check functional equality mod ``modulus`` at sample points.

        Canonical-form based decompositions are only equal *as functions
        over Z_2^m*, not as integer polynomials; those are validated
        pointwise (exhaustively for small widths in tests).
        """
        from .ast import evaluate_expr

        for point in samples:
            for index, (out, reference) in enumerate(zip(self.outputs, system)):
                got = evaluate_expr(out, point, self.blocks, modulus)
                want = reference.evaluate_mod(point, modulus)
                if got != want:
                    raise ValueError(
                        f"output {index} disagrees at {dict(point)}: "
                        f"{got} != {want} (mod {modulus})"
                    )

    def inline_trivial_blocks(self) -> int:
        """Inline alias blocks (definitions that are a bare leaf).

        A block defined as a single variable, block reference, or constant
        costs no operators; inlining it only tidies the decomposition.
        Returns the number of blocks inlined.  Cost and semantics are
        unchanged (tests enforce this).
        """
        from .ast import Add, BlockRef, Const, Mul, Pow, Var

        aliases = {
            name: expr
            for name, expr in self.blocks.items()
            if isinstance(expr, (Var, BlockRef, Const))
        }
        if not aliases:
            return 0

        def rewrite(node: Expr) -> Expr:
            if isinstance(node, BlockRef) and node.name in aliases:
                return rewrite(aliases[node.name])
            if isinstance(node, Add):
                return Add(tuple(rewrite(op) for op in node.operands))
            if isinstance(node, Mul):
                return Mul(tuple(rewrite(op) for op in node.operands))
            if isinstance(node, Pow):
                return Pow(rewrite(node.base), node.exponent)
            return node

        self.outputs = [rewrite(expr) for expr in self.outputs]
        self.blocks = {
            name: rewrite(expr)
            for name, expr in self.blocks.items()
            if name not in aliases
        }
        return len(aliases)

    def summary(self) -> str:
        """Human-readable listing, in the style of the paper's tables."""
        lines = []
        for name in self.live_blocks():
            lines.append(f"{name} = {self.blocks[name]}")
        for index, out in enumerate(self.outputs, start=1):
            lines.append(f"P{index} = {out}")
        ops = self.op_count()
        lines.append(f"cost: {ops}")
        return "\n".join(lines)
