"""Decomposition expressions: factored forms of polynomials.

A :class:`~repro.poly.polynomial.Polynomial` is a *flat* sum of products.
Every optimization in this repository (Horner forms, kernel CSE, the
paper's CCE / cube extraction / algebraic division) produces a *factored
form* instead — nested sums, products, powers, and references to shared
building blocks.  This subpackage defines that form:

* :mod:`repro.expr.ast` — the immutable expression nodes and smart
  constructors,
* :mod:`repro.expr.cost` — MULT/ADD operator counting, the paper's cost
  estimate (Algorithm 7, line 7),
* :mod:`repro.expr.decomposition` — a system-level decomposition: named
  building blocks plus one expression per output polynomial, with
  validation that expansion reproduces the original system.
"""

from .ast import (
    Add,
    BlockRef,
    Const,
    Expr,
    Mul,
    Pow,
    Var,
    evaluate_expr,
    expr_from_polynomial,
    expr_to_polynomial,
    make_add,
    make_mul,
    make_pow,
)
from .balance import expr_depth, tree_height_reduction_gain
from .cost import OpCount, expr_op_count
from .decomposition import Decomposition

__all__ = [
    "Add",
    "BlockRef",
    "Const",
    "Decomposition",
    "Expr",
    "Mul",
    "OpCount",
    "Pow",
    "Var",
    "evaluate_expr",
    "expr_depth",
    "expr_from_polynomial",
    "expr_op_count",
    "tree_height_reduction_gain",
    "expr_to_polynomial",
    "make_add",
    "make_mul",
    "make_pow",
]
