"""Lowering DAG sharing back to the repository's block representation.

:func:`lower_to_blocks` turns the reference-counted sharing of an
:class:`~repro.dag.graph.ExpressionDAG` into the same shape every other
CSE in the repository produces — a
:class:`~repro.cse.extract.CseResult`: rewritten polynomials over the
original variables plus one fresh variable per extracted block, and the
block definitions themselves.  Substituting every definition back
reproduces the input exactly (the repository-wide CSE invariant; tests
enforce the round trip through :func:`repro.cse.expand_blocks`).

The extraction here is the DAG-native one: whole product nodes used by
at least two distinct rows become blocks, largest first.  It is weaker
than the greedy kernel-intersection extractor (no multi-term kernels,
no sub-monomial GCDs) and exists as the public, deterministic lowering
of DAG sharing — the synthesis flow itself uses the DAG for *scoring*
and lowers its finalists through the exact extractor (see
``docs/DAG.md`` for the division of labour).

Determinism: block names are assigned in canonical payload order
(literal count descending, then name pairs) — never node-id order — so
two processes lowering the same system produce byte-identical results.
"""

from __future__ import annotations

from typing import Iterable

from repro.cse.extract import CseResult
from repro.poly import Polynomial

from .graph import ExpressionDAG


def _divisible(exps: tuple[int, ...], need: dict[int, int]) -> bool:
    return all(exps[i] >= e for i, e in need.items())


def lower_to_blocks(
    polys: Iterable[Polynomial],
    prefix: str = "_d",
    start_index: int = 0,
    dag: ExpressionDAG | None = None,
    min_refs: int = 2,
    min_literals: int = 2,
) -> CseResult:
    """Extract shared DAG products of ``polys`` into block variables.

    Every product node referenced by at least ``min_refs`` distinct rows
    (and worth at least ``min_literals`` literals) becomes a block; each
    occurrence — including repeated powers of the product inside one
    term — is divided out and replaced by the block variable.  Blocks
    are extracted largest first, and earlier block definitions are
    themselves rewritten through later ones, so nested sharing chains
    (``x*y*z`` inside ``w*x*y*z``) lower to block-over-block chains.
    """
    dag = dag or ExpressionDAG()
    rows = [p.trim() for p in polys]
    roots = [dag.intern(p) for p in rows]
    shared = dag.shared_subexpressions(
        roots, min_refs=min_refs, min_literals=min_literals
    )

    blocks: dict[str, Polynomial] = {}
    counter = start_index
    for item in shared:
        name = f"{prefix}{counter + 1}"
        mono = dict(item.pairs)  # var name -> exponent

        def rewrite(poly: Polynomial) -> Polynomial:
            variables = poly.vars
            where = {}
            for var, exp in mono.items():
                if var not in variables:
                    return poly
                where[variables.index(var)] = exp
            if not any(_divisible(e, where) for e in poly.terms):
                return poly
            new_vars = variables + (name,)
            slot = len(variables)
            terms: dict[tuple[int, ...], int] = {}
            for exps, coeff in poly.terms.items():
                power = 0
                reduced = list(exps)
                while _divisible(tuple(reduced), where):
                    for i, e in where.items():
                        reduced[i] -= e
                    power += 1
                new_exps = tuple(reduced) + (power,)
                terms[new_exps] = terms.get(new_exps, 0) + coeff
            return Polynomial(new_vars, terms).trim()

        rewritten_rows = [rewrite(p) for p in rows]
        touched = sum(
            1 for old, new in zip(rows, rewritten_rows) if old is not new
        )
        rewritten_blocks = {k: rewrite(v) for k, v in blocks.items()}
        touched += sum(
            1
            for k in blocks
            if blocks[k] is not rewritten_blocks[k]
        )
        if touched < min_refs:
            continue  # sharing collapsed under an earlier, larger block
        rows = rewritten_rows
        blocks = rewritten_blocks
        block_vars = sorted(mono)
        blocks[name] = Polynomial(
            tuple(block_vars),
            {tuple(mono[v] for v in block_vars): 1},
        )
        counter += 1

    return CseResult(
        polys=Polynomial.unify_all(rows) if rows else [],
        blocks=blocks,
        rounds=1 if blocks else 0,
    )
