"""Global expression DAG: interning, shared-subexpression refcounts, lowering.

Public surface (re-exported through :mod:`repro.api`):

* :class:`ExpressionDAG` — the hash-consing node store,
* :func:`intern` — intern a polynomial (default: the process DAG),
* :func:`shared_subexpressions` — refcounted shared products,
* :func:`lower_to_blocks` — lower DAG sharing to a
  :class:`~repro.cse.extract.CseResult` block list.

See ``docs/DAG.md`` for the design and the scoring/lowering split.
"""

from .graph import (
    DagNode,
    DagStats,
    ExpressionDAG,
    SharedSubexpression,
    default_dag,
    intern,
    shared_subexpressions,
)
from .lower import lower_to_blocks

__all__ = [
    "DagNode",
    "DagStats",
    "ExpressionDAG",
    "SharedSubexpression",
    "default_dag",
    "intern",
    "lower_to_blocks",
    "shared_subexpressions",
]
