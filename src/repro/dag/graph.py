"""Global expression DAG — hash-consed polynomial structure.

The combination search of Algorithm 7 scores many candidate
representations that are assembled from largely identical rows: block
definitions repeat verbatim, and neighbouring combinations differ in a
single polynomial's representation.  Re-running greedy rectangle CSE
from scratch on every combination re-discovers the same sharing over
and over — the classic argument for hash-consing (tree-hash CSE over
whole expression forests, as in SymPy-lineage ``cse`` and Chen & Yan's
matrix-vector CSE).

:class:`ExpressionDAG` is the interning node store: every variable,
monomial (power product), and polynomial (sum of coefficient-weighted
monomials) is stored **once**, keyed by a canonical structural hash.
Structurally equal subtrees always intern to the same node id — a
property the test suite pins down with a hypothesis invariant.  On top
of the store the DAG keeps

* reference counts — how many distinct sum nodes use each product node
  (:meth:`shared_subexpressions` surfaces the shared ones), and
* memoized per-node operator costs — so scoring a candidate combination
  is a union of already-priced node sets (*new nodes only*): each
  shared product is paid exactly once, which is precisely the operator
  count a DAG lowering of the combination realizes.

Node ids are process-local (interning order depends on what was
interned first) and therefore **never** used for any ordering decision
that reaches a result; canonical name-based payloads are.  Engine cache
keys exclude DAG state entirely (see ``docs/ENGINE.md``).

The module depends only on :mod:`repro.poly` — the core flow imports
*us*, never the other way around.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.poly import Polynomial

#: Node kinds of the store, in interning-dependency order.
KINDS = ("var", "mono", "sum")


@dataclass(frozen=True)
class DagNode:
    """One interned node (read-only view; identity is the ``id``)."""

    id: int
    kind: str                      # "var" | "mono" | "sum"
    name: str | None = None        # var: the variable name
    pairs: tuple = ()              # mono: ((var name, exponent), ...) sorted
    terms: tuple = ()              # sum: ((mono node id, coeff), ...) sorted
    literals: int = 0              # mono: total literal count (sum of exps)


@dataclass(frozen=True)
class DagStats:
    """Interning counters of one :class:`ExpressionDAG`.

    The integers a synthesis run copies into its
    :class:`~repro.core.provenance.Provenance` (and publishes as
    ``repro_search_dag_*`` metrics — the two views must agree exactly).
    """

    nodes: int            # interned nodes of any kind (store size)
    polys: int            # top-level polynomial interning requests
    intern_hits: int      # requests answered by an existing node
    shared_nodes: int     # product nodes used by >= 2 distinct sums

    def as_dict(self) -> dict[str, int]:
        return {
            "nodes": self.nodes,
            "polys": self.polys,
            "intern_hits": self.intern_hits,
            "shared_nodes": self.shared_nodes,
        }


@dataclass(frozen=True)
class SharedSubexpression:
    """One refcounted shared product node of the DAG."""

    node: int                       # the mono node id
    refs: int                       # distinct sum nodes using it
    literals: int                   # its literal count
    pairs: tuple                    # ((var name, exponent), ...) sorted


class ExpressionDAG:
    """Interning store for polynomial expression structure.

    ``intern`` accepts a :class:`~repro.poly.Polynomial` and returns the
    id of its sum node, creating variable and monomial nodes on the way.
    Interning is canonical: padding, variable order, and term-dict order
    do not matter — two structurally equal polynomials always map to the
    same node id within one DAG instance.
    """

    def __init__(self) -> None:
        self._nodes: list[DagNode] = []
        self._index: dict[tuple, int] = {}       # canonical key -> node id
        self._poly_memo: dict[tuple, int] = {}   # raw (vars, terms) -> sum id
        self._mono_refs: dict[int, int] = {}     # mono id -> distinct sum parents
        self._sum_products: dict[int, frozenset[int]] = {}
        self._sum_cmuls: dict[int, int] = {}
        self._sum_adds: dict[int, int] = {}
        self._polys = 0
        self._hits = 0

    # -- interning ------------------------------------------------------

    def _node(self, key: tuple, **payload) -> int:
        nid = self._index.get(key)
        if nid is not None:
            self._hits += 1
            return nid
        nid = len(self._nodes)
        self._nodes.append(DagNode(id=nid, kind=key[0], **payload))
        self._index[key] = nid
        return nid

    def intern_var(self, name: str) -> int:
        """Intern one variable; returns its node id."""
        return self._node(("var", name), name=name)

    def intern_mono(self, pairs: Iterable[tuple[str, int]]) -> int:
        """Intern a power product given as (variable name, exponent) pairs.

        Zero exponents are dropped and pairs are sorted by name, so any
        spelling of the same monomial interns to the same node.  The
        empty product (the constant monomial ``1``) is a valid node.
        """
        canonical = tuple(sorted((n, e) for n, e in pairs if e))
        nid = self._index.get(("mono", canonical))
        if nid is not None:
            self._hits += 1
            return nid
        for name, _ in canonical:
            self.intern_var(name)
        return self._node(
            ("mono", canonical),
            pairs=canonical,
            literals=sum(e for _, e in canonical),
        )

    def intern(self, poly: Polynomial) -> int:
        """Intern a polynomial; returns the id of its sum node.

        Memoized two ways: a fast path on the exact ``(vars, terms)``
        identity (the combination search re-interns identical rows
        constantly), and the canonical structural key underneath it.
        """
        self._polys += 1
        raw_key = (poly.vars, frozenset(poly.terms.items()))
        hit = self._poly_memo.get(raw_key)
        if hit is not None:
            self._hits += 1
            return hit
        variables = poly.vars
        items = []
        for exps, coeff in poly.terms.items():
            mid = self.intern_mono(
                (variables[i], e) for i, e in enumerate(exps) if e
            )
            items.append((mid, coeff))
        sid = self._intern_sum(items)
        self._poly_memo[raw_key] = sid
        return sid

    def _intern_sum(self, items: Sequence[tuple[int, int]]) -> int:
        key = ("sum", frozenset(items))
        nid = self._index.get(key)
        if nid is not None:
            self._hits += 1
            return nid
        terms = tuple(sorted(items))
        nid = self._node(key, terms=terms)
        products = []
        cmuls = 0
        for mid, coeff in terms:
            node = self._nodes[mid]
            if node.literals >= 2:
                products.append(mid)
            if node.literals >= 1 and abs(coeff) != 1:
                cmuls += 1
            count = self._mono_refs.get(mid, 0)
            self._mono_refs[mid] = count + 1
        self._sum_products[nid] = frozenset(products)
        self._sum_cmuls[nid] = cmuls
        self._sum_adds[nid] = max(len(terms) - 1, 0)
        return nid

    # -- inspection -----------------------------------------------------

    def node(self, nid: int) -> DagNode:
        """The read-only record of one node id."""
        return self._nodes[nid]

    def size(self) -> int:
        """Number of interned nodes (all kinds)."""
        return len(self._nodes)

    def stats(self) -> DagStats:
        shared = sum(
            1
            for mid, refs in self._mono_refs.items()
            if refs >= 2 and self._nodes[mid].literals >= 2
        )
        return DagStats(
            nodes=len(self._nodes),
            polys=self._polys,
            intern_hits=self._hits,
            shared_nodes=shared,
        )

    def clear(self) -> None:
        """Drop every node and counter (the interner is process state)."""
        self._nodes.clear()
        self._index.clear()
        self._poly_memo.clear()
        self._mono_refs.clear()
        self._sum_products.clear()
        self._sum_cmuls.clear()
        self._sum_adds.clear()
        self._polys = 0
        self._hits = 0

    # -- sharing / scoring ---------------------------------------------

    def shared_subexpressions(
        self,
        roots: Iterable[int] | None = None,
        min_refs: int = 2,
        min_literals: int = 2,
    ) -> tuple[SharedSubexpression, ...]:
        """Refcounted shared product nodes, most valuable first.

        Without ``roots``, reference counts are global (every interned
        sum counts).  With ``roots`` (sum node ids), only references
        from those sums count — the per-combination view the search
        scores.  Order is canonical (literal count descending, then the
        name-based payload), never node-id order: node ids depend on
        interning history, and anything derived from this list must be
        byte-identical across warm and cold processes.
        """
        if roots is None:
            counts = dict(self._mono_refs)
        else:
            counts = {}
            for sid in set(roots):
                for mid, _ in self._nodes[sid].terms:
                    counts[mid] = counts.get(mid, 0) + 1
        found = []
        for mid, refs in counts.items():
            node = self._nodes[mid]
            if refs >= min_refs and node.literals >= min_literals:
                found.append(
                    SharedSubexpression(
                        node=mid, refs=refs,
                        literals=node.literals, pairs=node.pairs,
                    )
                )
        found.sort(key=lambda s: (-s.literals, s.pairs))
        return tuple(found)

    def combination_cost(
        self,
        roots: Iterable[int],
        mul_weight: int = 20,
        cmul_weight: int = 2,
        add_weight: int = 1,
    ) -> int:
        """Weighted operator count of a set of rows, sharing included.

        Each distinct product node reachable from the rows is paid once
        (``literals - 1`` multiplies) — the cost a DAG lowering of the
        row set realizes.  Coefficient multiplies and joining adds are
        per-row, from the memoized per-sum deltas.  Duplicate rows (same
        sum node) are paid once, mirroring what CSE would collapse.
        """
        seen: set[int] = set()
        products: set[int] = set()
        cost = 0
        for sid in roots:
            if sid in seen:
                continue
            seen.add(sid)
            cost += (
                self._sum_cmuls[sid] * cmul_weight
                + self._sum_adds[sid] * add_weight
            )
            products |= self._sum_products[sid]
        nodes = self._nodes
        for mid in products:
            cost += (nodes[mid].literals - 1) * mul_weight
        return cost


#: The process-level default store behind the module-level convenience
#: functions and :func:`repro.api.clear_caches`.  The synthesis flow
#: deliberately uses a *fresh* DAG per run instead, so provenance
#: statistics never depend on what else the process interned.
_DEFAULT_DAG = ExpressionDAG()


def default_dag() -> ExpressionDAG:
    """The shared process-level DAG instance."""
    return _DEFAULT_DAG


def intern(poly: Polynomial, dag: ExpressionDAG | None = None) -> int:
    """Intern a polynomial into ``dag`` (default: the process DAG)."""
    return (dag or _DEFAULT_DAG).intern(poly)


def shared_subexpressions(
    polys: Iterable[Polynomial] | None = None,
    dag: ExpressionDAG | None = None,
    min_refs: int = 2,
    min_literals: int = 2,
) -> tuple[SharedSubexpression, ...]:
    """Shared products across ``polys`` (or the whole default DAG)."""
    target = dag or _DEFAULT_DAG
    roots = None
    if polys is not None:
        roots = [target.intern(p) for p in polys]
    return target.shared_subexpressions(
        roots, min_refs=min_refs, min_literals=min_literals
    )
