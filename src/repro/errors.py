"""Typed error taxonomy shared across the synthesis methods.

Synthesis methods must never return a *wrong* decomposition.  When a
class of inputs is legitimately out of a method's scope, the method
raises :class:`Unsupported` instead of silently producing garbage — the
differential fuzzing harness (:mod:`repro.fuzz`) treats it as an
explicit skip while any other exception counts as a crash finding.
"""

from __future__ import annotations


class Unsupported(ValueError):
    """An input a synthesis method deliberately does not handle.

    Carries the method name and a reason so fuzz reports and triage
    output can say *why* the case was skipped.
    """

    def __init__(self, method: str, reason: str) -> None:
        super().__init__(f"{method}: unsupported input: {reason}")
        self.method = method
        self.reason = reason
