"""Two-tier result cache for the batch synthesis engine.

Results are keyed by a **stable content hash** of everything that can
change the answer:

* the canonicalized polynomial system (``PolySystem`` unifies variable
  tuples on construction; ``polynomial_to_dict`` sorts terms),
* the bit-vector signature,
* the full :class:`~repro.core.synth.SynthesisOptions`,
* the method name,
* a code-version salt (bumped whenever the flow's output can change).

Two tiers:

* an in-memory LRU (:class:`LruCache`) — hot within one process,
* an optional on-disk store (:class:`DiskCache`) — survives processes,
  one JSON file per key, written atomically (tmp + rename) so concurrent
  writers can only ever race to an identical byte string.

Values are opaque *strings* (the engine stores canonical JSON payloads),
which keeps both tiers trivial and makes the serial-vs-parallel
byte-identity guarantee easy to state: whatever path produced the value,
the cached bytes are compared and returned verbatim.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.core import SynthesisOptions
from repro.ioutil import atomic_write_text
from repro.serialize import polynomial_to_dict, signature_to_dict
from repro.system import PolySystem

#: Code-version salt baked into every key.  Bump the trailing number in
#: any PR that changes what the flow produces for the same input, so
#: stale on-disk entries read as misses instead of wrong answers.
CACHE_SALT = "repro-engine-v4"


def cache_key(
    system: PolySystem,
    options: SynthesisOptions | None = None,
    method: str = "proposed",
    salt: str = CACHE_SALT,
) -> str:
    """Stable content hash identifying one synthesis job.

    The system's *name* and *description* are metadata and deliberately
    excluded: two systems with identical polynomials and signatures share
    a cache entry.
    """
    options = options or SynthesisOptions()
    payload = {
        "method": method,
        "polys": [polynomial_to_dict(p) for p in system.polys],
        "signature": signature_to_dict(system.signature),
        "options": asdict(options),
        "salt": salt,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class LruCache:
    """A tiny string->string LRU (no external dependencies)."""

    def __init__(self, maxsize: int = 256) -> None:
        if maxsize < 1:
            raise ValueError("LRU cache needs at least one slot")
        self.maxsize = maxsize
        self.evictions = 0
        self._data: OrderedDict[str, str] = OrderedDict()

    def get(self, key: str) -> str | None:
        try:
            self._data.move_to_end(key)
        except KeyError:
            return None
        return self._data[key]

    def put(self, key: str, value: str) -> int:
        """Store; returns how many entries were evicted to make room."""
        self._data[key] = value
        self._data.move_to_end(key)
        evicted = 0
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            evicted += 1
        self.evictions += evicted
        return evicted

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def clear(self) -> None:
        self._data.clear()


class DiskCache:
    """One file per key under a directory; corrupt entries read as misses."""

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, key: str) -> str | None:
        path = self._path(key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            json.loads(text)  # refuse truncated / corrupt entries
        except ValueError:
            return None
        return text

    def put(self, key: str, value: str) -> None:
        try:
            atomic_write_text(self._path(key), value)
        except OSError:
            pass  # a cache store that loses the race (or the disk) is a miss

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))


@dataclass
class CacheStats:
    """Hit/miss counters, split by tier, plus churn counters.

    ``evictions`` counts LRU entries displaced to make room;
    ``disk_reads`` counts disk-tier *probes* (whether or not they hit)
    and ``disk_writes`` counts files written — together the disk
    round-trips a batch performed.
    """

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    disk_reads: int = 0
    disk_writes: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from a cache tier (0.0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class ResultCache:
    """The two tiers glued together: memory first, then disk (promoting)."""

    memory: LruCache = field(default_factory=LruCache)
    disk: DiskCache | None = None
    stats: CacheStats = field(default_factory=CacheStats)

    @classmethod
    def create(
        cls, maxsize: int = 256, cache_dir: str | os.PathLike | None = None
    ) -> "ResultCache":
        return cls(
            memory=LruCache(maxsize),
            disk=DiskCache(cache_dir) if cache_dir is not None else None,
        )

    def get(self, key: str) -> str | None:
        value = self.memory.get(key)
        if value is not None:
            self.stats.memory_hits += 1
            return value
        if self.disk is not None:
            self.stats.disk_reads += 1
            value = self.disk.get(key)
            if value is not None:
                self.stats.disk_hits += 1
                self.stats.evictions += self.memory.put(key, value)
                return value
        self.stats.misses += 1
        return None

    def put(self, key: str, value: str) -> None:
        self.stats.evictions += self.memory.put(key, value)
        if self.disk is not None:
            self.disk.put(key, value)
            self.stats.disk_writes += 1
        self.stats.stores += 1
