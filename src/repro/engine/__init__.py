"""Batch synthesis engine: parallel fan-out, content-hash caching, metrics.

The scaling layer above :func:`repro.core.synth.synthesize` — see
``docs/ENGINE.md`` for the design and ``python -m repro batch`` for the
CLI front-end.
"""

from .cache import (
    CACHE_SALT,
    CacheStats,
    DiskCache,
    LruCache,
    ResultCache,
    cache_key,
)
from .engine import (
    BatchEngine,
    BatchJob,
    BatchReport,
    JobResult,
    PoolStats,
    graceful_shutdown,
)

__all__ = [
    "BatchEngine",
    "BatchJob",
    "BatchReport",
    "CACHE_SALT",
    "CacheStats",
    "DiskCache",
    "JobResult",
    "LruCache",
    "PoolStats",
    "ResultCache",
    "cache_key",
    "graceful_shutdown",
]
