"""BatchEngine — parallel, cached synthesis of many polynomial systems.

The paper evaluates Algorithm 7 over whole benchmark *suites* (the eight
Table 14.3 rows); this engine is the layer that makes such batches cheap:

* **fan-out** over a ``concurrent.futures.ProcessPoolExecutor`` with a
  configurable worker count — results are returned in input order and are
  byte-identical to serial execution (every job's result is reduced to a
  canonical JSON payload before it crosses the process boundary),
* **memoization** in a two-tier content-hash cache
  (:mod:`repro.engine.cache`): an in-memory LRU plus an optional on-disk
  store, so a warm rerun of a suite does zero synthesis work,
* **fault tolerance** (see ``docs/ROBUSTNESS.md``) — a hard per-job
  timeout kills hung workers and reruns the job down the in-process
  degraded path; failing jobs are retried with exponential backoff and
  deterministic jitter; a crashed worker (``BrokenProcessPool``) gets the
  pool respawned and the in-flight jobs retried; a circuit breaker stops
  repeat offenders from being offered to the pool at all.  Everything is
  governed by the :class:`~repro.config.RunConfig`'s
  :class:`~repro.config.RetryPolicy` and surfaced through
  :class:`PoolStats` (``retries``/``timeouts``/``degraded``) and the
  ``repro_pool_*`` metrics,
* **graceful degradation** — ``workers=1`` never spawns processes, and a
  pool that cannot even be created falls back to in-process execution
  (with a logged warning and ``PoolStats.fallbacks`` incremented) instead
  of failing the batch,
* **metrics** — each job carries the per-phase
  :class:`~repro.core.metrics.Timings` of its synthesis run, and the
  :class:`BatchReport` aggregates them across the batch.

Methods other than the paper's flow can be batched too: any name
registered in :mod:`repro.baselines.registry` is a valid ``BatchJob.method``.
"""

from __future__ import annotations

import json
import logging
import os
import signal as signal_module
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from contextlib import contextmanager, nullcontext
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Iterable, Iterator, Sequence

from repro.baselines import get_method
from repro.config import RunConfig, as_run_config
from repro.core import (
    Budget,
    Degradation,
    SynthesisOptions,
    Timings,
    direct_cost,
    synthesize,
)
from repro.obs import (
    EventStream,
    Tracer,
    current_events,
    current_tracer,
    get_registry,
    use_events,
    use_tracer,
)
from repro.expr import Decomposition, OpCount
from repro.testing.faults import fault_point, use_attempt
from repro.serialize import (
    decomposition_from_dict,
    decomposition_to_dict,
    op_count_from_dict,
    op_count_to_dict,
    system_from_dict,
    system_to_dict,
    timings_from_dict,
    timings_to_dict,
)
from repro.system import PolySystem

from .cache import CACHE_SALT, CacheStats, ResultCache, cache_key

logger = logging.getLogger("repro.engine")

#: How often the pool dispatch loop wakes to poll futures and timeouts.
_POLL_SECONDS = 0.05

#: Minimum gap between ``heartbeat`` events from the dispatch loops, so
#: even a quiet batch shows signs of life without flooding the stream.
_HEARTBEAT_SECONDS = 1.0

#: Attempt number used for degraded in-process reruns.  It exceeds any
#: realistic ``attempts`` gate, so injected faults never fire on the
#: engine's last-resort path — a job whose fault persists across every
#: pooled attempt still ends in a valid degraded result instead of
#: hanging the engine process itself.
_DEGRADED_ATTEMPT = 1 << 30


@dataclass(frozen=True)
class BatchJob:
    """One unit of work: a system, the options, and the method to run."""

    system: PolySystem
    options: SynthesisOptions | None = None
    method: str = "proposed"
    name: str | None = None  # display name; defaults to system.name

    @property
    def label(self) -> str:
        return self.name if self.name is not None else self.system.name


@dataclass
class JobResult:
    """One job's outcome, decoded from the canonical payload."""

    name: str
    method: str
    cache_hit: bool
    cache_key: str
    decomposition: Decomposition | None
    op_count: OpCount | None
    initial_op_count: OpCount | None
    timings: Timings
    payload: str  # canonical JSON of the whole outcome (incl. timings)
    error: str | None = None
    attempts: int = 1  # executions this result took (0 for a cache hit)
    timed_out: bool = False  # killed by the hard pool timeout, then degraded
    degradations: list[Degradation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def cancelled(self) -> bool:
        """Was the job cancelled by a drain before it could execute?"""
        return self.error is not None and self.error.startswith("cancelled:")

    @property
    def degraded(self) -> bool:
        """Did the job overrun a budget and fall back somewhere?"""
        return bool(self.degradations)

    def canonical_result(self) -> str:
        """Canonical JSON of the result alone — no timing measurements.

        This is the byte-identity unit: serial, parallel, and cached
        executions of the same job must produce identical strings.
        """
        data = json.loads(self.payload)
        return json.dumps(
            {
                "method": data["method"],
                "decomposition": data["decomposition"],
                "op_count": data["op_count"],
                "initial_op_count": data["initial_op_count"],
                "error": data["error"],
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    @property
    def seconds(self) -> float:
        """Synthesis wall time (of the original computation when cached)."""
        return self.timings.total_seconds()


@dataclass
class PoolStats:
    """How one batch actually executed: pooled, serial, or degraded.

    ``queue_wait_seconds`` is the summed wall-clock gap between a job's
    submission and the moment a worker started it; ``busy_seconds`` is
    the summed worker wall time, so ``utilization`` compares it to the
    pool's total capacity (``pool_seconds * workers``).
    """

    mode: str = "idle"  # "idle" | "serial" | "pool" | "fallback"
    workers: int = 1
    jobs_executed: int = 0
    pool_seconds: float = 0.0
    busy_seconds: float = 0.0
    queue_wait_seconds: float = 0.0
    max_queue_wait_seconds: float = 0.0
    fallbacks: int = 0
    fallback_reason: str = ""  # why the pool was abandoned for serial
    retries: int = 0     # re-executions after a failure or worker crash
    timeouts: int = 0    # jobs killed by the hard per-job pool timeout
    degraded: int = 0    # jobs rerouted to the in-process degraded path
    cancelled: int = 0   # jobs never started because a drain was requested

    @property
    def utilization(self) -> float:
        """Fraction of the pool's capacity spent executing jobs."""
        capacity = self.pool_seconds * max(self.workers, 1)
        return self.busy_seconds / capacity if capacity > 0 else 0.0


@dataclass
class BatchReport:
    """Everything one ``BatchEngine.run`` produced, in input order."""

    results: list[JobResult]
    workers: int
    seconds: float
    cache_hits: int
    cache_misses: int
    stats: CacheStats = field(default_factory=CacheStats)
    pool: PoolStats = field(default_factory=PoolStats)

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def errors(self) -> list[JobResult]:
        return [r for r in self.results if not r.ok]

    @property
    def retries(self) -> int:
        """Re-executions the batch needed (failures + worker crashes)."""
        return self.pool.retries

    @property
    def timeouts(self) -> int:
        """Jobs killed by the hard per-job pool timeout."""
        return self.pool.timeouts

    @property
    def degraded(self) -> list[JobResult]:
        """Results that overran a budget and carry degradations."""
        return [r for r in self.results if r.degraded]

    @property
    def cancelled(self) -> list[JobResult]:
        """Jobs a graceful drain cancelled before they executed."""
        return [r for r in self.results if r.cancelled]

    def phase_seconds(self) -> dict[str, float]:
        """Per-phase synthesis seconds aggregated over every job."""
        out: dict[str, float] = {}
        for result in self.results:
            for phase, seconds in result.timings.seconds_by_phase().items():
                out[phase] = out.get(phase, 0.0) + seconds
        return out

    def summary_table(self) -> str:
        from repro.report import batch_text_report

        return batch_text_report(self)


def _run_job_payload(
    system_data: dict[str, Any],
    options_data: dict[str, Any] | None,
    method: str,
    label: str = "",
    trace: bool = False,
    events: bool = False,
    config_data: dict[str, Any] | None = None,
    attempt: int = 0,
    degraded_reason: str | None = None,
) -> str:
    """Execute one job and reduce the result to canonical JSON.

    Runs identically in-process and inside pool workers — the payload is
    the single representation results take before reaching the caller, so
    serial and parallel execution cannot diverge.  With ``trace`` set the
    job runs under its own fresh :class:`~repro.obs.Tracer` (whichever
    process it lands in) and ships the resulting span tree home inside
    the payload for :meth:`~repro.obs.Tracer.adopt` to stitch; the
    caller strips it again before caching.  ``events`` does the same for
    the structured event stream (:meth:`~repro.obs.EventStream.adopt`):
    only the *accepted* payload's events are adopted, so the events of
    failed attempts that were retried are discarded, never duplicated.

    ``config_data`` is the engine's :class:`~repro.config.RunConfig`
    round-tripped through the payload; its budget bounds the synthesis
    cooperatively.  ``attempt`` gates the fault-injection harness
    (:mod:`repro.testing.faults`) so injected crashes stop firing on
    retries.  ``degraded_reason`` marks an in-process *degraded rerun*
    after a hard pool timeout: the proposed flow runs with an
    already-expired budget, taking the cheap fallback ladder immediately
    — and fault injection is disabled (see :data:`_DEGRADED_ATTEMPT`)
    because this path runs in the engine's own process and must complete.
    """
    payload: dict[str, Any] = {
        "kind": "job-result",
        "method": method,
        "decomposition": None,
        "op_count": None,
        "initial_op_count": None,
        "timings": Timings().as_dict(),
        "worker": None,
        "degradations": [],
        "error": None,
    }
    config = RunConfig.from_dict(config_data) if config_data else None
    budget = config.budget if config is not None else None
    if degraded_reason is not None:
        payload["degradations"].append(
            Degradation("pool", "degraded-rerun", degraded_reason).as_dict()
        )
        if method == "proposed":
            # Force the expired-at-start fast path: the job already spent
            # its wall-clock allowance inside the killed worker.
            budget = Budget(job_seconds=0.0)
    tracer = Tracer() if trace else None
    stream = EventStream() if events else None
    start_wall = time.time()
    with use_attempt(attempt if degraded_reason is None else _DEGRADED_ATTEMPT):
        if stream is not None:
            stream.emit("job_start", job=label or method, method=method)
        try:
            system = system_from_dict(system_data)
            options = SynthesisOptions(**options_data) if options_data else None
            fault_point(f"job:{label or method}")
            with use_events(stream) if stream is not None else nullcontext():
                with use_tracer(tracer) if tracer is not None else nullcontext():
                    job_span = (
                        tracer.span(f"job:{label or method}", method=method)
                        if tracer is not None
                        else nullcontext()
                    )
                    with job_span:
                        if method == "proposed":
                            result = synthesize(
                                list(system.polys), system.signature, options,
                                budget=budget,
                            )
                            decomposition = result.decomposition
                            op_count = result.op_count
                            initial = result.initial_op_count
                            timings = result.timings or Timings()
                            payload["degradations"].extend(
                                d.as_dict() for d in result.degradations
                            )
                        else:
                            fn = get_method(method)
                            timings = Timings()
                            with timings.phase(f"method:{method}"):
                                decomposition = fn(system, options)
                            op_count = decomposition.op_count()
                            initial = direct_cost(
                                list(system.polys), options or SynthesisOptions()
                            )
            payload.update(
                decomposition=decomposition_to_dict(decomposition),
                op_count=op_count_to_dict(op_count),
                initial_op_count=op_count_to_dict(initial),
                timings=timings_to_dict(timings),
            )
        except Exception as exc:  # noqa: BLE001 - one bad job must not kill the batch
            payload["error"] = f"{type(exc).__name__}: {exc}"
        if stream is not None:
            stream.emit(
                "job_end", job=label or method, error=payload["error"]
            )
    payload["worker"] = {
        "pid": os.getpid(),
        "start_wall": start_wall,
        "end_wall": time.time(),
    }
    if tracer is not None:
        payload["spans"] = tracer.snapshot().to_dict()
    if stream is not None:
        payload["events"] = stream.snapshot().to_dict()
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _error_payload(method: str, error: str) -> str:
    """A synthetic failure payload for jobs that never returned one.

    Used when the worker process died (crash, hard kill) so there is no
    worker-produced payload to decode, or when retries were exhausted
    engine-side.
    """
    return json.dumps(
        {
            "kind": "job-result",
            "method": method,
            "decomposition": None,
            "op_count": None,
            "initial_op_count": None,
            "timings": Timings().as_dict(),
            "worker": None,
            "degradations": [],
            "error": error,
        },
        sort_keys=True,
        separators=(",", ":"),
    )


def _pool_worker(args: tuple[int, str]) -> tuple[int, str]:
    """Top-level (picklable) pool entry point."""
    index, blob = args
    data = json.loads(blob)
    return index, _run_job_payload(
        data["system"],
        data["options"],
        data["method"],
        label=data.get("label", ""),
        trace=bool(data.get("trace")),
        events=bool(data.get("events")),
        config_data=data.get("config"),
        attempt=int(data.get("attempt", 0)),
    )


class BatchEngine:
    """Run many synthesis jobs with caching, parallelism, and metrics.

    Configuration is one :class:`~repro.config.RunConfig`::

        engine = BatchEngine(RunConfig(workers=4, budget=Budget(job_seconds=30)))

    The pre-PR-4 keyword arguments (``workers=``, ``cache_size=``,
    ``cache_dir=``) and the bare positional worker count completed their
    one-release deprecation cycle and are gone; passing them is now a
    :class:`TypeError`.  Use :meth:`RunConfig.replace` to derive a
    tweaked config instead.
    """

    def __init__(
        self,
        config: RunConfig | None = None,
        *,
        salt: str = CACHE_SALT,
    ) -> None:
        cfg = as_run_config(config)
        if cfg.workers < 1:
            raise ValueError("workers must be >= 1")
        self.config = cfg
        self.salt = salt
        self.cache = ResultCache.create(
            maxsize=cfg.cache_size, cache_dir=cfg.cache_dir
        )
        self.last_pool = PoolStats()
        # Consecutive-failure counts per job label; survives across run()
        # calls so repeat offenders eventually trip the circuit breaker.
        self._breaker: dict[str, int] = {}
        self._attempts: dict[int, int] = {}
        self._timed_out: set[int] = set()
        # Set by request_stop() (a signal handler or the service's
        # shutdown): the dispatch loops drain in-flight jobs and cancel
        # everything not yet started.  Checking a threading.Event per
        # dispatch iteration is the whole cost of the serving layer on
        # plain batch runs.
        self._stop = threading.Event()

    @property
    def workers(self) -> int:
        return self.config.workers

    def request_stop(self) -> None:
        """Ask the engine to drain: finish in-flight work, cancel the rest.

        Safe to call from a signal handler or another thread.  Jobs
        already executing run to completion (their own budgets and hard
        timeouts still apply); jobs not yet started come back as
        ``cancelled:`` error results so the caller can requeue them.
        """
        self._stop.set()

    def clear_stop(self) -> None:
        """Re-arm a drained engine (the service reuses one engine)."""
        self._stop.clear()

    @property
    def stop_requested(self) -> bool:
        return self._stop.is_set()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(self, jobs: Iterable[BatchJob | PolySystem]) -> BatchReport:
        """Execute a batch; results come back in input order."""
        batch = [self._coerce(job) for job in jobs]
        start = time.perf_counter()
        tracer = current_tracer()
        events = current_events()
        stats_before = replace(self.cache.stats)
        self._attempts = {}
        self._timed_out = set()
        with tracer.span("batch", workers=self.workers) as batch_span:
            keys = [
                cache_key(job.system, job.options, job.method, self.salt)
                for job in batch
            ]
            payloads: dict[int, str] = {}
            hits: dict[int, bool] = {}
            pending: list[int] = []
            for index, key in enumerate(keys):
                cached = self.cache.get(key)
                if cached is not None:
                    payloads[index] = cached
                    hits[index] = True
                    with tracer.span("cache_hit", job=batch[index].label):
                        pass
                    if events.enabled:
                        events.emit("cache_hit", job=batch[index].label)
                else:
                    pending.append(index)
                    if events.enabled:
                        events.emit("cache_miss", job=batch[index].label)

            for index, payload in self._execute(batch, pending).items():
                data = json.loads(payload)
                spans_data = data.pop("spans", None)
                events_data = data.pop("events", None)
                if spans_data is not None or events_data is not None:
                    # Span trees and event snapshots are transport-only:
                    # stitch them under the batch span / parent stream,
                    # then strip them so the cached payload (and
                    # JobResult.payload) is identical to an unobserved
                    # run's.
                    payload = json.dumps(
                        data, sort_keys=True, separators=(",", ":")
                    )
                if spans_data is not None:
                    tracer.adopt(spans_data, tid=index + 1)
                if events_data is not None:
                    events.adopt(events_data, job=batch[index].label)
                payloads[index] = payload
                hits[index] = False
                # Degraded results are wall-clock-dependent (a slower
                # machine degrades where a faster one would not), so they
                # must never poison the content-addressed cache.
                if data.get("error") is None and not data.get("degradations"):
                    self.cache.put(keys[index], payload)
            batch_span.count(
                jobs=len(batch),
                cache_hits=sum(1 for h in hits.values() if h),
                executed=len(pending),
            )

        results = [
            _decode_result(
                batch[i].label, batch[i].method, keys[i],
                payloads[i], hits[i],
                attempts=self._attempts.get(i, 0 if hits[i] else 1),
                timed_out=i in self._timed_out,
            )
            for i in range(len(batch))
        ]
        report = BatchReport(
            results=results,
            workers=self.workers if len(pending) > 1 else 1,
            seconds=time.perf_counter() - start,
            cache_hits=sum(1 for h in hits.values() if h),
            cache_misses=len(pending),
            stats=self.cache.stats,
            pool=self.last_pool,
        )
        self._publish_metrics(report, stats_before)
        return report

    def run_suite(
        self,
        names: Sequence[str] | None = None,
        options: SynthesisOptions | None = None,
        method: str = "proposed",
    ) -> BatchReport:
        """Batch the named benchmark systems (default: the Table 14.3 eight)."""
        from repro.suite import TABLE_14_3_SYSTEMS, get_system

        names = tuple(names) if names is not None else TABLE_14_3_SYSTEMS
        return self.run(
            BatchJob(system=get_system(name), options=options, method=method)
            for name in names
        )

    # ------------------------------------------------------------------
    # Execution strategies
    # ------------------------------------------------------------------

    def _coerce(self, job: BatchJob | PolySystem) -> BatchJob:
        if isinstance(job, PolySystem):
            job = BatchJob(system=job)
        if job.options is None:
            # Materialize the engine-wide options so the cache key, the
            # worker, and the serial path all see the same thing.
            job = replace(job, options=self.config.options)
        return job

    def _job_blob(self, job: BatchJob, attempt: int = 0) -> str:
        return json.dumps(
            {
                "system": system_to_dict(job.system),
                "options": asdict(job.options) if job.options else None,
                "method": job.method,
                "label": job.label,
                "trace": current_tracer().enabled,
                "events": current_events().enabled,
                "config": self.config.as_dict(),
                "attempt": attempt,
            }
        )

    def _execute(self, batch: list[BatchJob], pending: list[int]) -> dict[int, str]:
        stats = PoolStats()
        self.last_pool = stats
        if not pending:
            return {}
        out: dict[int, str] | None = None
        if self.workers > 1 and len(pending) > 1:
            stats.workers = min(self.workers, len(pending))
            started = time.perf_counter()
            try:
                out = self._execute_pool(batch, pending)
                stats.mode = "pool"
                stats.pool_seconds = time.perf_counter() - started
            except Exception as exc:
                # A pool that cannot even run (fork refusal, pickling
                # issue, broken executor beyond respawn): degrade to
                # in-process execution rather than fail the batch — but
                # never silently.
                stats.mode = "fallback"
                stats.workers = 1
                stats.fallbacks += 1
                stats.fallback_reason = f"{type(exc).__name__}: {exc}"
                logger.warning(
                    "process pool unavailable (%s); running %d job(s) "
                    "in-process instead",
                    stats.fallback_reason,
                    len(pending),
                )
                out = None
        if out is None:
            started = time.perf_counter()
            out = self._execute_serial(batch, pending)
            stats.pool_seconds = time.perf_counter() - started
            if stats.mode == "idle":
                stats.mode = "serial"
        stats.jobs_executed = len(out)
        for payload in out.values():
            worker = json.loads(payload).get("worker") or {}
            begin, finish = worker.get("start_wall"), worker.get("end_wall")
            if begin is not None and finish is not None:
                stats.busy_seconds += max(finish - begin, 0.0)
        return out

    # -- shared fault-handling helpers ---------------------------------

    def _cancelled_payload(self, index: int, job: BatchJob) -> str:
        """Mark one never-started job cancelled by the drain."""
        self.last_pool.cancelled += 1
        self._attempts[index] = 0
        events = current_events()
        with current_tracer().span("pool/cancelled", job=job.label):
            pass
        if events.enabled:
            events.emit("job_cancelled", job=job.label, reason="shutdown")
        return _error_payload(
            job.method, "cancelled: shutdown requested before execution"
        )

    def _breaker_open(self, job: BatchJob) -> bool:
        threshold = self.config.retry.breaker_threshold
        return threshold > 0 and self._breaker.get(job.label, 0) >= threshold

    def _note_failure(self, job: BatchJob) -> None:
        self._breaker[job.label] = self._breaker.get(job.label, 0) + 1

    def _note_success(self, job: BatchJob) -> None:
        self._breaker.pop(job.label, None)

    def _degraded_payload(self, job: BatchJob, attempt: int, reason: str) -> str:
        """Rerun one job in-process down the degraded path (see ROBUSTNESS)."""
        self.last_pool.degraded += 1
        events = current_events()
        if events.enabled:
            events.emit(
                "degradation", phase="pool", action="degraded-rerun",
                job=job.label, reason=reason,
            )
        with current_tracer().span(
            "pool/degraded", job=job.label, reason=reason
        ):
            return _run_job_payload(
                system_to_dict(job.system),
                asdict(job.options) if job.options else None,
                job.method,
                label=job.label,
                trace=current_tracer().enabled,
                events=events.enabled,
                config_data=self.config.as_dict(),
                attempt=attempt,
                degraded_reason=reason,
            )

    def _execute_serial(
        self, batch: list[BatchJob], pending: list[int]
    ) -> dict[int, str]:
        out: dict[int, str] = {}
        retry = self.config.retry
        stats = self.last_pool
        tracer = current_tracer()
        events = current_events()
        last_beat = time.monotonic()
        for index in pending:
            job = batch[index]
            if self._stop.is_set():
                out[index] = self._cancelled_payload(index, job)
                continue
            if events.enabled:
                now = time.monotonic()
                if now - last_beat >= _HEARTBEAT_SECONDS:
                    last_beat = now
                    events.emit(
                        "heartbeat", done=len(out), inflight=1,
                        pending=len(pending) - len(out),
                    )
            if self._breaker_open(job):
                with tracer.span("pool/breaker", job=job.label):
                    pass
                if events.enabled:
                    events.emit(
                        "breaker", job=job.label,
                        failures=self._breaker[job.label],
                    )
                self._attempts[index] = 1
                out[index] = self._degraded_payload(
                    job,
                    attempt=retry.max_retries + 1,
                    reason=(
                        f"circuit breaker open after "
                        f"{self._breaker[job.label]} consecutive failure(s)"
                    ),
                )
                continue
            attempt = 0
            while True:
                self._attempts[index] = attempt + 1
                _, payload = _pool_worker(
                    (index, self._job_blob(job, attempt))
                )
                if json.loads(payload).get("error") is None:
                    self._note_success(job)
                    break
                self._note_failure(job)
                if attempt >= retry.max_retries or self._stop.is_set():
                    break
                attempt += 1
                stats.retries += 1
                with tracer.span("pool/retry", job=job.label, attempt=attempt):
                    pass
                if events.enabled:
                    events.emit("retry", job=job.label, attempt=attempt)
                time.sleep(retry.delay(attempt, job.label))
            out[index] = payload
        return out

    def _execute_pool(
        self, batch: list[BatchJob], pending: list[int]
    ) -> dict[int, str]:
        """Pooled execution with timeouts, retries, respawn, and breaking.

        Submission uses a *sliding window* of at most ``max_workers``
        in-flight jobs, so a job's submit time is (within one poll tick)
        its start time and the hard per-job timeout can be measured from
        submission.  The loop:

        1. fills the window with eligible work (backoff delays gate
           re-submissions),
        2. waits briefly for completions; successful payloads are
           accepted, failing ones are requeued with backoff until
           ``max_retries`` is exhausted,
        3. a broken pool (a worker crashed hard) is respawned and every
           lost in-flight job retried at the next attempt,
        4. in-flight jobs over ``job_timeout_seconds`` get the pool's
           workers killed; the hung jobs are rerun in-process down the
           degraded path, innocent casualties are requeued at the *same*
           attempt.
        """
        out: dict[int, str] = {}
        stats = self.last_pool
        retry = self.config.retry
        tracer = current_tracer()
        events = current_events()
        wait_histogram = get_registry().histogram("repro_pool_queue_wait_seconds")
        max_workers = min(self.workers, len(pending))

        ready: list[tuple[int, int]] = []  # (job index, attempt)
        for index in pending:
            job = batch[index]
            if self._breaker_open(job):
                with tracer.span("pool/breaker", job=job.label):
                    pass
                if events.enabled:
                    events.emit(
                        "breaker", job=job.label,
                        failures=self._breaker[job.label],
                    )
                self._attempts[index] = 1
                out[index] = self._degraded_payload(
                    job,
                    attempt=retry.max_retries + 1,
                    reason=(
                        f"circuit breaker open after "
                        f"{self._breaker[job.label]} consecutive failure(s)"
                    ),
                )
                continue
            ready.append((index, 0))

        pool = ProcessPoolExecutor(max_workers=max_workers)
        inflight: dict[Any, tuple[int, int, float]] = {}
        not_before: dict[int, float] = {}
        last_beat = time.monotonic()
        try:
            while ready or inflight:
                if self._stop.is_set() and ready:
                    # Drain: cancel everything not yet submitted; the
                    # loop keeps waiting on the in-flight window below.
                    for index, _attempt in ready:
                        out[index] = self._cancelled_payload(
                            index, batch[index]
                        )
                    ready.clear()
                    if not inflight:
                        break
                if events.enabled:
                    beat_now = time.monotonic()
                    if beat_now - last_beat >= _HEARTBEAT_SECONDS:
                        last_beat = beat_now
                        events.emit(
                            "heartbeat", done=len(out),
                            inflight=len(inflight),
                            pending=len(ready),
                        )
                now = time.time()
                for item in list(ready):
                    if len(inflight) >= max_workers:
                        break
                    index, attempt = item
                    if not_before.get(index, 0.0) > now:
                        continue
                    ready.remove(item)
                    self._attempts[index] = attempt + 1
                    future = pool.submit(
                        _pool_worker, (index, self._job_blob(batch[index], attempt))
                    )
                    inflight[future] = (index, attempt, time.time())
                if not inflight:
                    # Everything runnable is backing off; sleep to the
                    # earliest eligibility and try again.
                    pause = min(
                        not_before.get(index, 0.0) for index, _ in ready
                    ) - time.time()
                    time.sleep(min(max(pause, 0.0), _POLL_SECONDS))
                    continue

                done, _ = futures_wait(
                    set(inflight), timeout=_POLL_SECONDS,
                    return_when=FIRST_COMPLETED,
                )
                broken: BaseException | None = None
                for future in done:
                    index, attempt, submit_wall = inflight.pop(future)
                    job = batch[index]
                    exc = future.exception()
                    if exc is not None:
                        # Worker died before returning (crash / hard
                        # kill); the whole pool is broken — handle below.
                        broken = exc
                        inflight[future] = (index, attempt, submit_wall)
                        continue
                    _, payload = future.result()
                    data = json.loads(payload)
                    if data.get("error") is not None:
                        self._note_failure(job)
                        if attempt < retry.max_retries:
                            stats.retries += 1
                            with tracer.span(
                                "pool/retry", job=job.label, attempt=attempt + 1
                            ):
                                pass
                            if events.enabled:
                                events.emit(
                                    "retry", job=job.label, attempt=attempt + 1
                                )
                            not_before[index] = time.time() + retry.delay(
                                attempt + 1, job.label
                            )
                            ready.append((index, attempt + 1))
                            continue
                    else:
                        self._note_success(job)
                    out[index] = payload
                    worker = data.get("worker") or {}
                    started_wall = worker.get("start_wall")
                    if started_wall is not None:
                        queue_wait = max(started_wall - submit_wall, 0.0)
                        stats.queue_wait_seconds += queue_wait
                        stats.max_queue_wait_seconds = max(
                            stats.max_queue_wait_seconds, queue_wait
                        )
                        wait_histogram.observe(queue_wait)

                if broken is not None:
                    # Crash: which in-flight job segfaulted cannot be
                    # recovered from a broken executor, so respawn the
                    # pool and retry them all at the next attempt (fault
                    # injection is attempt-gated, synthesis is
                    # deterministic — innocent jobs simply rerun).
                    logger.warning(
                        "pool worker crashed (%s); respawning pool and "
                        "retrying %d in-flight job(s)",
                        f"{type(broken).__name__}: {broken}",
                        len(inflight),
                    )
                    pool = self._respawn(pool, max_workers)
                    for index, attempt, _ in inflight.values():
                        job = batch[index]
                        self._note_failure(job)
                        if attempt < retry.max_retries:
                            stats.retries += 1
                            with tracer.span(
                                "pool/retry", job=job.label, attempt=attempt + 1
                            ):
                                pass
                            if events.enabled:
                                events.emit(
                                    "retry", job=job.label,
                                    attempt=attempt + 1, crashed=True,
                                )
                            not_before[index] = time.time() + retry.delay(
                                attempt + 1, job.label
                            )
                            ready.append((index, attempt + 1))
                        else:
                            out[index] = _error_payload(
                                job.method,
                                f"worker crashed "
                                f"({type(broken).__name__}: {broken}); "
                                f"retries exhausted after "
                                f"{attempt + 1} attempt(s)",
                            )
                    inflight.clear()
                    continue

                if retry.job_timeout_seconds is not None and inflight:
                    now = time.time()
                    hung = {
                        future: meta
                        for future, meta in inflight.items()
                        if now - meta[2] > retry.job_timeout_seconds
                    }
                    if hung:
                        # The hung worker cannot be preempted
                        # individually: kill the pool's processes and
                        # respawn.  Hung jobs degrade in-process;
                        # innocent in-flight casualties requeue at the
                        # same attempt (their faults, if any, must still
                        # fire deterministically) and are not counted as
                        # retries.
                        stats.timeouts += len(hung)
                        hung_indices = {meta[0] for meta in hung.values()}
                        logger.warning(
                            "killing pool: job(s) %s exceeded the hard "
                            "timeout of %.1fs",
                            sorted(batch[i].label for i in hung_indices),
                            retry.job_timeout_seconds,
                        )
                        pool = self._respawn(pool, max_workers, kill=True)
                        for index, attempt, _ in inflight.values():
                            job = batch[index]
                            if index in hung_indices:
                                with tracer.span(
                                    "pool/timeout", job=job.label
                                ):
                                    pass
                                if events.enabled:
                                    events.emit(
                                        "timeout", job=job.label,
                                        seconds=retry.job_timeout_seconds,
                                    )
                                self._note_failure(job)
                                self._timed_out.add(index)
                                self._attempts[index] = attempt + 2
                                out[index] = self._degraded_payload(
                                    job,
                                    attempt=attempt + 1,
                                    reason=(
                                        f"hard pool timeout of "
                                        f"{retry.job_timeout_seconds}s "
                                        f"exceeded; worker killed"
                                    ),
                                )
                            else:
                                ready.append((index, attempt))
                        inflight.clear()
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        return out

    @staticmethod
    def _respawn(
        pool: ProcessPoolExecutor, max_workers: int, kill: bool = False
    ) -> ProcessPoolExecutor:
        """Replace a broken (or deliberately killed) pool with a fresh one."""
        if kill:
            for process in list(getattr(pool, "_processes", {}).values()):
                process.terminate()
        pool.shutdown(wait=False, cancel_futures=True)
        return ProcessPoolExecutor(max_workers=max_workers)

    def _publish_metrics(
        self, report: BatchReport, stats_before: CacheStats
    ) -> None:
        """Publish one run's cache / pool deltas to the global registry."""
        registry = get_registry()
        for name in (
            "memory_hits", "disk_hits", "misses", "stores",
            "evictions", "disk_reads", "disk_writes",
        ):
            delta = getattr(report.stats, name) - getattr(stats_before, name)
            if delta:
                registry.counter(f"repro_cache_{name}_total").inc(delta)
        pool = report.pool
        if pool.jobs_executed:
            registry.counter(
                "repro_pool_jobs_total", mode=pool.mode
            ).inc(pool.jobs_executed)
        if pool.fallbacks:
            registry.counter("repro_pool_fallbacks_total").inc(pool.fallbacks)
        if pool.retries:
            registry.counter("repro_pool_retries_total").inc(pool.retries)
        if pool.timeouts:
            registry.counter("repro_pool_timeouts_total").inc(pool.timeouts)
        if pool.degraded:
            registry.counter("repro_pool_degraded_total").inc(pool.degraded)
        if pool.cancelled:
            registry.counter("repro_pool_cancelled_total").inc(pool.cancelled)
        degraded_results = len(report.degraded)
        if degraded_results:
            registry.counter("repro_jobs_degraded_total").inc(degraded_results)
        if pool.mode == "pool":
            registry.gauge("repro_pool_utilization").set(pool.utilization)
        registry.histogram("repro_batch_seconds").observe(report.seconds)


@contextmanager
def graceful_shutdown(
    engine: BatchEngine,
    signals: Sequence[int] = (signal_module.SIGINT, signal_module.SIGTERM),
) -> Iterator[BatchEngine]:
    """Drain ``engine`` on SIGINT/SIGTERM instead of dying mid-report.

    The first signal requests a drain (in-flight jobs finish, queued
    jobs come back as ``cancelled:`` results, the partial
    :class:`BatchReport` is still produced and the disk cache keeps
    every completed result); a second signal raises
    :class:`KeyboardInterrupt` for a hard abort.  Handlers are restored
    on exit.  Signal handlers can only be installed from the main
    thread — elsewhere (the service's worker thread, pytest-xdist) this
    is a transparent no-op and the caller's own shutdown path governs.
    """
    if threading.current_thread() is not threading.main_thread():
        yield engine
        return

    def _handle(signum: int, _frame: Any) -> None:
        if engine.stop_requested:
            raise KeyboardInterrupt
        logger.warning(
            "received %s: draining batch (signal again to abort hard)",
            signal_module.Signals(signum).name,
        )
        engine.request_stop()

    previous = {}
    for sig in signals:
        previous[sig] = signal_module.signal(sig, _handle)
    try:
        yield engine
    finally:
        for sig, handler in previous.items():
            signal_module.signal(sig, handler)


def _decode_result(
    name: str,
    method: str,
    key: str,
    payload: str,
    cache_hit: bool,
    attempts: int = 1,
    timed_out: bool = False,
) -> JobResult:
    data = json.loads(payload)
    decomposition = (
        decomposition_from_dict(data["decomposition"])
        if data.get("decomposition") is not None
        else None
    )
    return JobResult(
        name=name,
        method=method,
        cache_hit=cache_hit,
        cache_key=key,
        decomposition=decomposition,
        op_count=(
            op_count_from_dict(data["op_count"])
            if data.get("op_count") is not None
            else None
        ),
        initial_op_count=(
            op_count_from_dict(data["initial_op_count"])
            if data.get("initial_op_count") is not None
            else None
        ),
        timings=timings_from_dict(data["timings"]),
        payload=payload,
        error=data.get("error"),
        attempts=attempts,
        timed_out=timed_out,
        degradations=[
            Degradation.from_dict(d) for d in data.get("degradations") or ()
        ],
    )
