"""BatchEngine — parallel, cached synthesis of many polynomial systems.

The paper evaluates Algorithm 7 over whole benchmark *suites* (the eight
Table 14.3 rows); this engine is the layer that makes such batches cheap:

* **fan-out** over a ``concurrent.futures.ProcessPoolExecutor`` with a
  configurable worker count — results are returned in input order and are
  byte-identical to serial execution (every job's result is reduced to a
  canonical JSON payload before it crosses the process boundary),
* **memoization** in a two-tier content-hash cache
  (:mod:`repro.engine.cache`): an in-memory LRU plus an optional on-disk
  store, so a warm rerun of a suite does zero synthesis work,
* **graceful degradation** — ``workers=1`` never spawns processes, and a
  broken pool (pickling failure, dead worker, fork refusal) falls back to
  in-process execution instead of failing the batch,
* **metrics** — each job carries the per-phase
  :class:`~repro.core.metrics.Timings` of its synthesis run, and the
  :class:`BatchReport` aggregates them across the batch.

Methods other than the paper's flow can be batched too: any name
registered in :mod:`repro.baselines.registry` is a valid ``BatchJob.method``.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from contextlib import nullcontext
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Iterable, Sequence

from repro.baselines import get_method
from repro.core import SynthesisOptions, Timings, direct_cost, synthesize
from repro.expr import Decomposition, OpCount
from repro.obs import Tracer, current_tracer, get_registry, use_tracer
from repro.serialize import (
    decomposition_from_dict,
    decomposition_to_dict,
    op_count_from_dict,
    op_count_to_dict,
    system_from_dict,
    system_to_dict,
    timings_from_dict,
    timings_to_dict,
)
from repro.system import PolySystem

from .cache import CACHE_SALT, CacheStats, ResultCache, cache_key


@dataclass(frozen=True)
class BatchJob:
    """One unit of work: a system, the options, and the method to run."""

    system: PolySystem
    options: SynthesisOptions | None = None
    method: str = "proposed"
    name: str | None = None  # display name; defaults to system.name

    @property
    def label(self) -> str:
        return self.name if self.name is not None else self.system.name


@dataclass
class JobResult:
    """One job's outcome, decoded from the canonical payload."""

    name: str
    method: str
    cache_hit: bool
    cache_key: str
    decomposition: Decomposition | None
    op_count: OpCount | None
    initial_op_count: OpCount | None
    timings: Timings
    payload: str  # canonical JSON of the whole outcome (incl. timings)
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def canonical_result(self) -> str:
        """Canonical JSON of the result alone — no timing measurements.

        This is the byte-identity unit: serial, parallel, and cached
        executions of the same job must produce identical strings.
        """
        data = json.loads(self.payload)
        return json.dumps(
            {
                "method": data["method"],
                "decomposition": data["decomposition"],
                "op_count": data["op_count"],
                "initial_op_count": data["initial_op_count"],
                "error": data["error"],
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    @property
    def seconds(self) -> float:
        """Synthesis wall time (of the original computation when cached)."""
        return self.timings.total_seconds()


@dataclass
class PoolStats:
    """How one batch actually executed: pooled, serial, or degraded.

    ``queue_wait_seconds`` is the summed wall-clock gap between a job's
    submission and the moment a worker started it; ``busy_seconds`` is
    the summed worker wall time, so ``utilization`` compares it to the
    pool's total capacity (``pool_seconds * workers``).
    """

    mode: str = "idle"  # "idle" | "serial" | "pool" | "fallback"
    workers: int = 1
    jobs_executed: int = 0
    pool_seconds: float = 0.0
    busy_seconds: float = 0.0
    queue_wait_seconds: float = 0.0
    max_queue_wait_seconds: float = 0.0
    fallbacks: int = 0

    @property
    def utilization(self) -> float:
        """Fraction of the pool's capacity spent executing jobs."""
        capacity = self.pool_seconds * max(self.workers, 1)
        return self.busy_seconds / capacity if capacity > 0 else 0.0


@dataclass
class BatchReport:
    """Everything one ``BatchEngine.run`` produced, in input order."""

    results: list[JobResult]
    workers: int
    seconds: float
    cache_hits: int
    cache_misses: int
    stats: CacheStats = field(default_factory=CacheStats)
    pool: PoolStats = field(default_factory=PoolStats)

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def errors(self) -> list[JobResult]:
        return [r for r in self.results if not r.ok]

    def phase_seconds(self) -> dict[str, float]:
        """Per-phase synthesis seconds aggregated over every job."""
        out: dict[str, float] = {}
        for result in self.results:
            for phase, seconds in result.timings.seconds_by_phase().items():
                out[phase] = out.get(phase, 0.0) + seconds
        return out

    def summary_table(self) -> str:
        from repro.report import batch_text_report

        return batch_text_report(self)


def _run_job_payload(
    system_data: dict[str, Any],
    options_data: dict[str, Any] | None,
    method: str,
    label: str = "",
    trace: bool = False,
) -> str:
    """Execute one job and reduce the result to canonical JSON.

    Runs identically in-process and inside pool workers — the payload is
    the single representation results take before reaching the caller, so
    serial and parallel execution cannot diverge.  With ``trace`` set the
    job runs under its own fresh :class:`~repro.obs.Tracer` (whichever
    process it lands in) and ships the resulting span tree home inside
    the payload for :meth:`~repro.obs.Tracer.adopt` to stitch; the
    caller strips it again before caching.
    """
    payload: dict[str, Any] = {
        "kind": "job-result",
        "method": method,
        "decomposition": None,
        "op_count": None,
        "initial_op_count": None,
        "timings": Timings().as_dict(),
        "worker": None,
        "error": None,
    }
    tracer = Tracer() if trace else None
    start_wall = time.time()
    try:
        system = system_from_dict(system_data)
        options = SynthesisOptions(**options_data) if options_data else None
        with use_tracer(tracer) if tracer is not None else nullcontext():
            job_span = (
                tracer.span(f"job:{label or method}", method=method)
                if tracer is not None
                else nullcontext()
            )
            with job_span:
                if method == "proposed":
                    result = synthesize(
                        list(system.polys), system.signature, options
                    )
                    decomposition = result.decomposition
                    op_count = result.op_count
                    initial = result.initial_op_count
                    timings = result.timings or Timings()
                else:
                    fn = get_method(method)
                    timings = Timings()
                    with timings.phase(f"method:{method}"):
                        decomposition = fn(system, options)
                    op_count = decomposition.op_count()
                    initial = direct_cost(
                        list(system.polys), options or SynthesisOptions()
                    )
        payload.update(
            decomposition=decomposition_to_dict(decomposition),
            op_count=op_count_to_dict(op_count),
            initial_op_count=op_count_to_dict(initial),
            timings=timings_to_dict(timings),
        )
    except Exception as exc:  # noqa: BLE001 - one bad job must not kill the batch
        payload["error"] = f"{type(exc).__name__}: {exc}"
    payload["worker"] = {
        "pid": os.getpid(),
        "start_wall": start_wall,
        "end_wall": time.time(),
    }
    if tracer is not None:
        payload["spans"] = tracer.snapshot().to_dict()
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _pool_worker(args: tuple[int, str]) -> tuple[int, str]:
    """Top-level (picklable) pool entry point."""
    index, blob = args
    data = json.loads(blob)
    return index, _run_job_payload(
        data["system"],
        data["options"],
        data["method"],
        label=data.get("label", ""),
        trace=bool(data.get("trace")),
    )


class BatchEngine:
    """Run many synthesis jobs with caching, parallelism, and metrics."""

    def __init__(
        self,
        workers: int = 1,
        cache_size: int = 256,
        cache_dir: str | None = None,
        salt: str = CACHE_SALT,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.salt = salt
        self.cache = ResultCache.create(maxsize=cache_size, cache_dir=cache_dir)
        self.last_pool = PoolStats()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def run(self, jobs: Iterable[BatchJob | PolySystem]) -> BatchReport:
        """Execute a batch; results come back in input order."""
        batch = [self._coerce(job) for job in jobs]
        start = time.perf_counter()
        tracer = current_tracer()
        stats_before = replace(self.cache.stats)
        with tracer.span("batch", workers=self.workers) as batch_span:
            keys = [
                cache_key(job.system, job.options, job.method, self.salt)
                for job in batch
            ]
            payloads: dict[int, str] = {}
            hits: dict[int, bool] = {}
            pending: list[int] = []
            for index, key in enumerate(keys):
                cached = self.cache.get(key)
                if cached is not None:
                    payloads[index] = cached
                    hits[index] = True
                    with tracer.span("cache_hit", job=batch[index].label):
                        pass
                else:
                    pending.append(index)

            for index, payload in self._execute(batch, pending).items():
                data = json.loads(payload)
                spans_data = data.pop("spans", None)
                if spans_data is not None:
                    # Span trees are transport-only: stitch them under the
                    # batch span, then strip them so the cached payload
                    # (and JobResult.payload) is identical to an untraced
                    # run's.
                    payload = json.dumps(
                        data, sort_keys=True, separators=(",", ":")
                    )
                    tracer.adopt(spans_data, tid=index + 1)
                payloads[index] = payload
                hits[index] = False
                if data.get("error") is None:
                    self.cache.put(keys[index], payload)
            batch_span.count(
                jobs=len(batch),
                cache_hits=sum(1 for h in hits.values() if h),
                executed=len(pending),
            )

        results = [
            _decode_result(batch[i].label, batch[i].method, keys[i],
                           payloads[i], hits[i])
            for i in range(len(batch))
        ]
        report = BatchReport(
            results=results,
            workers=self.workers if len(pending) > 1 else 1,
            seconds=time.perf_counter() - start,
            cache_hits=sum(1 for h in hits.values() if h),
            cache_misses=len(pending),
            stats=self.cache.stats,
            pool=self.last_pool,
        )
        self._publish_metrics(report, stats_before)
        return report

    def run_suite(
        self,
        names: Sequence[str] | None = None,
        options: SynthesisOptions | None = None,
        method: str = "proposed",
    ) -> BatchReport:
        """Batch the named benchmark systems (default: the Table 14.3 eight)."""
        from repro.suite import TABLE_14_3_SYSTEMS, get_system

        names = tuple(names) if names is not None else TABLE_14_3_SYSTEMS
        return self.run(
            BatchJob(system=get_system(name), options=options, method=method)
            for name in names
        )

    # ------------------------------------------------------------------
    # Execution strategies
    # ------------------------------------------------------------------

    def _coerce(self, job: BatchJob | PolySystem) -> BatchJob:
        if isinstance(job, PolySystem):
            return BatchJob(system=job)
        return job

    def _job_blob(self, job: BatchJob) -> str:
        return json.dumps(
            {
                "system": system_to_dict(job.system),
                "options": asdict(job.options) if job.options else None,
                "method": job.method,
                "label": job.label,
                "trace": current_tracer().enabled,
            }
        )

    def _execute(self, batch: list[BatchJob], pending: list[int]) -> dict[int, str]:
        stats = PoolStats()
        self.last_pool = stats
        if not pending:
            return {}
        out: dict[int, str] | None = None
        if self.workers > 1 and len(pending) > 1:
            stats.workers = min(self.workers, len(pending))
            started = time.perf_counter()
            try:
                out = self._execute_pool(batch, pending)
                stats.mode = "pool"
                stats.pool_seconds = time.perf_counter() - started
            except Exception:
                # Broken pool (fork refusal, dead worker, pickling issue):
                # degrade to in-process execution rather than fail the batch.
                stats.mode = "fallback"
                stats.workers = 1
                stats.fallbacks += 1
                out = None
        if out is None:
            started = time.perf_counter()
            out = self._execute_serial(batch, pending)
            stats.pool_seconds = time.perf_counter() - started
            if stats.mode == "idle":
                stats.mode = "serial"
        stats.jobs_executed = len(out)
        for payload in out.values():
            worker = json.loads(payload).get("worker") or {}
            begin, finish = worker.get("start_wall"), worker.get("end_wall")
            if begin is not None and finish is not None:
                stats.busy_seconds += max(finish - begin, 0.0)
        return out

    def _execute_serial(
        self, batch: list[BatchJob], pending: list[int]
    ) -> dict[int, str]:
        out: dict[int, str] = {}
        for index in pending:
            _, payload = _pool_worker((index, self._job_blob(batch[index])))
            out[index] = payload
        return out

    def _execute_pool(
        self, batch: list[BatchJob], pending: list[int]
    ) -> dict[int, str]:
        out: dict[int, str] = {}
        stats = self.last_pool
        wait_histogram = get_registry().histogram("repro_pool_queue_wait_seconds")
        max_workers = min(self.workers, len(pending))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            submitted: list[tuple[Any, float]] = []
            for index in pending:
                submitted.append(
                    (
                        pool.submit(
                            _pool_worker, (index, self._job_blob(batch[index]))
                        ),
                        time.time(),
                    )
                )
            for future, submit_wall in submitted:
                index, payload = future.result()
                out[index] = payload
                worker = json.loads(payload).get("worker") or {}
                started_wall = worker.get("start_wall")
                if started_wall is not None:
                    wait = max(started_wall - submit_wall, 0.0)
                    stats.queue_wait_seconds += wait
                    stats.max_queue_wait_seconds = max(
                        stats.max_queue_wait_seconds, wait
                    )
                    wait_histogram.observe(wait)
        return out

    def _publish_metrics(
        self, report: BatchReport, stats_before: CacheStats
    ) -> None:
        """Publish one run's cache / pool deltas to the global registry."""
        registry = get_registry()
        for name in (
            "memory_hits", "disk_hits", "misses", "stores",
            "evictions", "disk_reads", "disk_writes",
        ):
            delta = getattr(report.stats, name) - getattr(stats_before, name)
            if delta:
                registry.counter(f"repro_cache_{name}_total").inc(delta)
        pool = report.pool
        if pool.jobs_executed:
            registry.counter(
                "repro_pool_jobs_total", mode=pool.mode
            ).inc(pool.jobs_executed)
        if pool.fallbacks:
            registry.counter("repro_pool_fallbacks_total").inc(pool.fallbacks)
        if pool.mode == "pool":
            registry.gauge("repro_pool_utilization").set(pool.utilization)
        registry.histogram("repro_batch_seconds").observe(report.seconds)


def _decode_result(
    name: str, method: str, key: str, payload: str, cache_hit: bool
) -> JobResult:
    data = json.loads(payload)
    decomposition = (
        decomposition_from_dict(data["decomposition"])
        if data.get("decomposition") is not None
        else None
    )
    return JobResult(
        name=name,
        method=method,
        cache_hit=cache_hit,
        cache_key=key,
        decomposition=decomposition,
        op_count=(
            op_count_from_dict(data["op_count"])
            if data.get("op_count") is not None
            else None
        ),
        initial_op_count=(
            op_count_from_dict(data["initial_op_count"])
            if data.get("initial_op_count") is not None
            else None
        ),
        timings=timings_from_dict(data["timings"]),
        payload=payload,
        error=data.get("error"),
    )
