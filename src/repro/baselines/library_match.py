"""Groebner-basis library matching (Peymandoust & De Micheli [19]).

The alternative decomposition technique the paper's related-work section
discusses: given a *component library* of polynomial building blocks
(e.g. ``L1 = x + 3y``, ``L2 = x*y``), rewrite a datapath polynomial in
terms of library outputs by Groebner reduction.

Method: in the extended ring ``Q[x_1..x_d, u_1..u_k]`` with an
elimination order (datapath variables larger than library variables),
compute a Groebner basis of ``{ u_i - L_i(x) }`` and take the normal form
of the target.  Monomials expressible through library outputs get
rewritten into the ``u`` variables; whatever remains stays in ``x``.

The result is packaged as a :class:`~repro.expr.decomposition.Decomposition`
with one block per *used* library element, so it plugs into the same cost
model and benchmarks as every other method.  Compared to the paper's flow
this baseline needs the library to be *given* — the whole point of the
paper is discovering the blocks automatically.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.synth import refactored_expression
from repro.expr import Decomposition
from repro.poly import Polynomial
from repro.rings.groebner import (
    buchberger,
    from_integer_polynomial,
    reduce_polynomial,
    to_integer_polynomial,
)


def _library_variable(index: int) -> str:
    return f"_u{index + 1}"


def match_library(
    poly: Polynomial,
    library: Sequence[Polynomial],
    order: str = "lex",
) -> Polynomial:
    """Rewrite ``poly`` over library-output variables where possible.

    Returns an integer polynomial over the original variables plus
    ``_u1.._uk``; substituting each ``_ui`` by its library polynomial
    reproduces the input exactly (tests enforce it).  Raises
    ``ValueError`` when the normal form has non-integer coefficients
    (possible for libraries with non-unit leading coefficients; such
    rewrites are not implementable as integer datapaths and are refused).
    """
    if not library:
        return poly
    datapath_vars = sorted(
        set(poly.used_vars())
        | {v for block in library for v in block.used_vars()}
    )
    lib_vars = [_library_variable(i) for i in range(len(library))]
    # Elimination order: datapath variables must be *larger*, so they are
    # rewritten away first.  Our lex key compares left-to-right, so put
    # the datapath variables first in the variable tuple.
    variables = tuple(datapath_vars) + tuple(lib_vars)

    generators = []
    for index, block in enumerate(library):
        u = Polynomial.variable(lib_vars[index], variables)
        generators.append(
            from_integer_polynomial(u - block.with_vars(variables), variables)
        )
    basis = buchberger(generators, order)
    normal_form = reduce_polynomial(
        from_integer_polynomial(poly, variables), basis, order
    )
    return to_integer_polynomial(normal_form).trim()


def library_match_decomposition(
    system: Sequence[Polynomial],
    library: Sequence[Polynomial],
) -> Decomposition:
    """Decompose a whole system against a component library."""
    decomposition = Decomposition(method="library-match")
    block_names: set[str] = set()
    used: set[int] = set()
    rewritten: list[Polynomial] = []
    for poly in system:
        result = match_library(poly, library)
        rewritten.append(result)
        for index in range(len(library)):
            if _library_variable(index) in result.used_vars():
                used.add(index)
    for index in sorted(used):
        name = _library_variable(index)
        block_names.add(name)
    for index in sorted(used):
        name = _library_variable(index)
        decomposition.blocks[name] = refactored_expression(
            library[index], block_names
        )
    for result in rewritten:
        decomposition.outputs.append(refactored_expression(result, block_names))
    decomposition.validate(list(Polynomial.unify_all(list(system))))
    return decomposition
