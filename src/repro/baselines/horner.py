"""Horner-form baseline (Table 14.1, column "Horner form")."""

from __future__ import annotations

from typing import Sequence

from repro.expr import Decomposition
from repro.factor import horner_decomposition
from repro.poly import Polynomial


def horner_baseline(
    system: Sequence[Polynomial], mode: str = "univariate", var: str | None = None
) -> Decomposition:
    """Per-polynomial Horner decomposition, no cross-polynomial sharing.

    ``mode="univariate"`` nests in a single main variable (the flavour
    whose counts match the paper's Table 14.1: 15 MULT / 4 ADD);
    ``mode="greedy"`` recursively Horners every sub-expression.
    """
    return horner_decomposition(list(system), mode=mode, var=var)
