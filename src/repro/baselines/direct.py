"""The direct (expanded sum-of-products) implementation.

No sharing, no factoring: one multiplier chain per term, one adder tree
per polynomial.  This is the paper's "direct implementation" reference
point (17 multipliers / 4 adders on the Table 14.1 system).
"""

from __future__ import annotations

from typing import Sequence

from repro.expr import Decomposition, expr_from_polynomial
from repro.poly import Polynomial


def direct_decomposition(system: Sequence[Polynomial]) -> Decomposition:
    """Implement every polynomial as its expanded SOP, nothing shared."""
    decomposition = Decomposition(method="direct")
    for poly in system:
        decomposition.outputs.append(expr_from_polynomial(poly))
    decomposition.validate(list(system))
    return decomposition
