"""Comparison methods: direct, Horner, factorization+CSE [13], and
Groebner library matching [19]."""

from .direct import direct_decomposition
from .factor_cse import factor_cse_decomposition
from .horner import horner_baseline
from .library_match import library_match_decomposition, match_library

__all__ = [
    "direct_decomposition",
    "factor_cse_decomposition",
    "horner_baseline",
    "library_match_decomposition",
    "match_library",
]
