"""Comparison methods: direct, Horner, factorization+CSE [13], and
Groebner library matching [19]."""

from .direct import direct_decomposition
from .factor_cse import factor_cse_decomposition
from .horner import horner_baseline
from .library_match import library_match_decomposition, match_library
from .registry import (
    MethodFn,
    available_methods,
    get_method,
    is_registered,
    register_method,
    unregister_method,
)

__all__ = [
    "MethodFn",
    "available_methods",
    "direct_decomposition",
    "factor_cse_decomposition",
    "get_method",
    "horner_baseline",
    "is_registered",
    "library_match_decomposition",
    "match_library",
    "register_method",
    "unregister_method",
]
