"""Factorization + CSE — the paper's main comparison method ([13], [14]).

Kernel/co-kernel based common sub-expression extraction applied directly
to the system as written, with coefficients treated as opaque literals
(matched only when numerically identical) and per-polynomial algebraic
refactoring of what remains.  This reproduces the behaviour of the
JuanCSE flow the paper compares against: strong on shared cubes and
kernels, blind to coefficient structure (``8x+16y+24z``), blind to
symbolic identities (``x^2+2xy+y^2 = (x+y)^2``), and blind to
finite-ring structure.
"""

from __future__ import annotations

from typing import Sequence

from repro.cse import eliminate_common_subexpressions
from repro.core.synth import refactored_expression
from repro.expr import Decomposition
from repro.poly import Polynomial


def factor_cse_decomposition(
    system: Sequence[Polynomial], max_rounds: int = 200
) -> Decomposition:
    """Kernel-intersection CSE plus per-output refactoring."""
    polys = Polynomial.unify_all(list(system))
    result = eliminate_common_subexpressions(polys, prefix="_f", max_rounds=max_rounds)
    block_names = set(result.blocks)
    decomposition = Decomposition(method="factor+cse")
    for name, definition in result.blocks.items():
        decomposition.blocks[name] = refactored_expression(definition, block_names)
    for poly in result.polys:
        decomposition.outputs.append(refactored_expression(poly, block_names))
    decomposition.validate(list(system))
    return decomposition
