"""Method registry — the single catalogue of synthesis methods.

Every way this repository can turn a :class:`~repro.system.PolySystem`
into a :class:`~repro.expr.decomposition.Decomposition` is registered
here under a stable name.  :func:`repro.api.compare_methods`, the batch
engine, and the CLI all enumerate methods from this one registry, so a
third-party method registered with :func:`register_method` immediately
shows up everywhere:

>>> from repro.baselines.registry import register_method
>>> @register_method("my-method")
... def my_method(system, options=None, *, dag=None):
...     ...  # return a Decomposition

A method is a callable ``fn(system, options=None, *, dag=None) ->
Decomposition``.  ``options`` is a
:class:`~repro.core.synth.SynthesisOptions` (or ``None`` for defaults);
``dag`` is a shared :class:`~repro.dag.ExpressionDAG` handle the caller
may pass so several methods run against one interning store (e.g.
:func:`repro.api.compare_methods` scores every method of one comparison
on one DAG).  Baseline methods are free to ignore either.

Methods written against the pre-DAG signature ``fn(system, options)``
no longer register: the one-release compatibility adapter (which
wrapped them with a ``DeprecationWarning``) has completed its cycle,
and registration now raises a ``TypeError`` naming the required
signature.
"""

from __future__ import annotations

import inspect
from typing import Callable, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core import SynthesisOptions
    from repro.dag import ExpressionDAG
    from repro.expr import Decomposition
    from repro.system import PolySystem

#: A synthesis method: PolySystem (+ optional options, shared DAG handle)
#: -> Decomposition.
MethodFn = Callable[..., "Decomposition"]

_METHODS: dict[str, MethodFn] = {}


def _accepts_dag(fn: Callable) -> bool:
    """True when ``fn`` can be called with a ``dag=`` keyword."""
    try:
        signature = inspect.signature(fn)
    except (TypeError, ValueError):  # builtins / C callables: assume modern
        return True
    for parameter in signature.parameters.values():
        if parameter.kind is inspect.Parameter.VAR_KEYWORD:
            return True
        if parameter.name == "dag" and parameter.kind in (
            inspect.Parameter.KEYWORD_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
        ):
            return True
    return False


def register_method(
    name: str, fn: MethodFn | None = None, *, replace: bool = False
):
    """Register a synthesis method under ``name``.

    Usable directly (``register_method("x", fn)``) or as a decorator
    (``@register_method("x")``).  Re-registering an existing name raises
    unless ``replace=True`` — accidental shadowing of a built-in method
    should be loud.  Methods must accept the ``dag=`` keyword; the
    pre-DAG two-argument signature is no longer adapted.
    """
    def _register(fn: MethodFn) -> MethodFn:
        if not replace and name in _METHODS:
            raise ValueError(f"method {name!r} is already registered")
        if not _accepts_dag(fn):
            raise TypeError(
                f"method {name!r} uses the removed legacy signature "
                "fn(system, options); declare "
                "fn(system, options=None, *, dag=None)"
            )
        _METHODS[name] = fn
        return fn

    if fn is None:
        return _register
    return _register(fn)


def unregister_method(name: str) -> None:
    """Remove a method (mainly for tests); unknown names are ignored."""
    _METHODS.pop(name, None)


def available_methods() -> tuple[str, ...]:
    """All registered method names, in registration order."""
    return tuple(_METHODS)


def get_method(name: str) -> MethodFn:
    """Look up a method; raises ``KeyError`` listing known names."""
    try:
        return _METHODS[name]
    except KeyError:
        known = ", ".join(sorted(_METHODS))
        raise KeyError(f"unknown method {name!r}; known: {known}") from None


def is_registered(name: str) -> bool:
    return name in _METHODS


# ----------------------------------------------------------------------
# Built-in methods.  Registration order drives default display order.
# ----------------------------------------------------------------------

@register_method("direct")
def _direct(system: "PolySystem", options=None, *, dag=None) -> "Decomposition":
    """Expanded sum-of-products, no sharing (the paper's C_initial)."""
    from .direct import direct_decomposition

    return direct_decomposition(list(system.polys))


@register_method("horner")
def _horner(system: "PolySystem", options=None, *, dag=None) -> "Decomposition":
    """Greedy multivariate Horner forms, per polynomial."""
    from .horner import horner_baseline

    return horner_baseline(list(system.polys))


@register_method("factor+cse")
def _factor_cse(
    system: "PolySystem", options=None, *, dag=None
) -> "Decomposition":
    """Square-free factorization followed by multi-polynomial CSE [13]."""
    from .factor_cse import factor_cse_decomposition

    result = factor_cse_decomposition(list(system.polys))
    if dag is not None:
        # Feed the comparison's shared DAG: the baseline's rows intern
        # here so later methods on the same DAG see the sharing.
        for poly in system.polys:
            dag.intern(poly)
    return result


@register_method("ted")
def _ted(system: "PolySystem", options=None, *, dag=None) -> "Decomposition":
    """Taylor expansion diagram lowering (the TED-based related work)."""
    from repro.ted import TedManager, ted_to_expression

    manager = TedManager(system.variables)
    roots = [manager.build(p) for p in system.polys]
    return ted_to_expression(manager, roots)


@register_method("proposed")
def _proposed(
    system: "PolySystem", options=None, *, dag=None
) -> "Decomposition":
    """The paper's integrated flow (Algorithm 7)."""
    from repro.core import synthesize

    return synthesize(
        list(system.polys), system.signature, options, dag=dag
    ).decomposition
