"""Method registry — the single catalogue of synthesis methods.

Every way this repository can turn a :class:`~repro.system.PolySystem`
into a :class:`~repro.expr.decomposition.Decomposition` is registered
here under a stable name.  :func:`repro.api.compare_methods`, the batch
engine, and the CLI all enumerate methods from this one registry, so a
third-party method registered with :func:`register_method` immediately
shows up everywhere:

>>> from repro.baselines.registry import register_method
>>> @register_method("my-method")
... def my_method(system, options=None):
...     ...  # return a Decomposition

A method is a callable ``fn(system, options=None) -> Decomposition``.
``options`` is a :class:`~repro.core.synth.SynthesisOptions` (or ``None``
for defaults); baseline methods are free to ignore it.
"""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core import SynthesisOptions
    from repro.expr import Decomposition
    from repro.system import PolySystem

#: A synthesis method: PolySystem (+ optional options) -> Decomposition.
MethodFn = Callable[["PolySystem", "Optional[SynthesisOptions]"], "Decomposition"]

_METHODS: dict[str, MethodFn] = {}


def register_method(
    name: str, fn: MethodFn | None = None, *, replace: bool = False
):
    """Register a synthesis method under ``name``.

    Usable directly (``register_method("x", fn)``) or as a decorator
    (``@register_method("x")``).  Re-registering an existing name raises
    unless ``replace=True`` — accidental shadowing of a built-in method
    should be loud.
    """
    def _register(fn: MethodFn) -> MethodFn:
        if not replace and name in _METHODS:
            raise ValueError(f"method {name!r} is already registered")
        _METHODS[name] = fn
        return fn

    if fn is None:
        return _register
    return _register(fn)


def unregister_method(name: str) -> None:
    """Remove a method (mainly for tests); unknown names are ignored."""
    _METHODS.pop(name, None)


def available_methods() -> tuple[str, ...]:
    """All registered method names, in registration order."""
    return tuple(_METHODS)


def get_method(name: str) -> MethodFn:
    """Look up a method; raises ``KeyError`` listing known names."""
    try:
        return _METHODS[name]
    except KeyError:
        known = ", ".join(sorted(_METHODS))
        raise KeyError(f"unknown method {name!r}; known: {known}") from None


def is_registered(name: str) -> bool:
    return name in _METHODS


# ----------------------------------------------------------------------
# Built-in methods.  Registration order drives default display order.
# ----------------------------------------------------------------------

@register_method("direct")
def _direct(system: "PolySystem", options=None) -> "Decomposition":
    """Expanded sum-of-products, no sharing (the paper's C_initial)."""
    from .direct import direct_decomposition

    return direct_decomposition(list(system.polys))


@register_method("horner")
def _horner(system: "PolySystem", options=None) -> "Decomposition":
    """Greedy multivariate Horner forms, per polynomial."""
    from .horner import horner_baseline

    return horner_baseline(list(system.polys))


@register_method("factor+cse")
def _factor_cse(system: "PolySystem", options=None) -> "Decomposition":
    """Square-free factorization followed by multi-polynomial CSE [13]."""
    from .factor_cse import factor_cse_decomposition

    return factor_cse_decomposition(list(system.polys))


@register_method("ted")
def _ted(system: "PolySystem", options=None) -> "Decomposition":
    """Taylor expansion diagram lowering (the TED-based related work)."""
    from repro.ted import TedManager, ted_to_expression

    manager = TedManager(system.variables)
    roots = [manager.build(p) for p in system.polys]
    return ted_to_expression(manager, roots)


@register_method("proposed")
def _proposed(system: "PolySystem", options=None) -> "Decomposition":
    """The paper's integrated flow (Algorithm 7)."""
    from repro.core import synthesize

    return synthesize(list(system.polys), system.signature, options).decomposition
