"""Crash-safe filesystem primitives shared by every on-disk writer.

Anything ``repro`` persists — result-cache entries, the service job
store's WAL snapshots, fuzz-corpus reproducers, benchmark baselines —
must survive a ``kill -9`` (or a crash-mid-write) without ever exposing
a torn file to a later reader.  The rule is one primitive, used
everywhere: write the full content to a temporary file *in the target
directory* (so the rename cannot cross filesystems), then publish it
with :func:`os.replace`, which POSIX guarantees to be atomic.  A reader
therefore sees either the old content, the new content, or no file —
never a prefix.

``fsync=True`` additionally flushes the file (and, where the platform
allows, the directory entry) to stable storage before the rename, which
extends the guarantee from "survives process death" to "survives power
loss".  Process death is the threat model of the durable synthesis
service's tests, so callers default to the cheap variant.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path


def atomic_write_text(
    path: str | os.PathLike,
    text: str,
    *,
    encoding: str = "utf-8",
    fsync: bool = False,
) -> Path:
    """Atomically replace ``path`` with ``text``; returns the path.

    The temporary file is created next to the target and renamed over
    it, so concurrent writers can only ever race to a *complete* file
    and a crash at any point leaves either the old file or the new one.
    The temp file is removed on failure.
    """
    target = Path(path)
    fd, tmp = tempfile.mkstemp(
        prefix=f".{target.name[:24]}-", suffix=".tmp", dir=target.parent
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(text)
            if fsync:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp, target)
        if fsync:
            fsync_dir(target.parent)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return target


def fsync_dir(directory: str | os.PathLike) -> None:
    """Flush a directory entry to disk (best-effort on platforms without)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)
