"""PolySystem — a named polynomial datapath with its bit-vector signature."""

from __future__ import annotations

from dataclasses import dataclass

from repro.poly import Polynomial
from repro.rings import BitVectorSignature


@dataclass(frozen=True)
class PolySystem:
    """A system of polynomials plus the I/O widths it computes over.

    This is the unit every benchmark, baseline, and the synthesis flow
    operate on — the "Systems" column of the paper's Table 14.3.
    """

    name: str
    polys: tuple[Polynomial, ...]
    signature: BitVectorSignature
    description: str = ""

    def __post_init__(self):
        unified = tuple(Polynomial.unify_all(list(self.polys)))
        object.__setattr__(self, "polys", unified)

    @property
    def num_polys(self) -> int:
        return len(self.polys)

    @property
    def variables(self) -> tuple[str, ...]:
        return self.signature.variables

    @property
    def degree(self) -> int:
        """Highest total degree across the system (the paper's "Deg")."""
        return max(p.total_degree() for p in self.polys)

    @property
    def output_width(self) -> int:
        return self.signature.output_width

    def characteristics(self) -> str:
        """The paper's ``Var/Deg/m`` triple, e.g. ``2/2/16``."""
        return f"{len(self.variables)}/{self.degree}/{self.output_width}"

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.num_polys} polynomial(s), "
            f"{self.characteristics()}"
        )
