"""RunConfig — the one configuration object for a synthesis run.

PR 4's resource-governance knobs (budgets, retries, timeouts, circuit
breaking) would have tripled the keyword sprawl across
:func:`repro.api.synthesize_system`, :class:`repro.engine.BatchEngine`,
and the CLI.  Instead there is exactly one frozen, serializable object:

>>> from repro.config import RunConfig, RetryPolicy
>>> from repro.core import Budget, SynthesisOptions
>>> cfg = RunConfig(
...     options=SynthesisOptions(objective="ops"),
...     budget=Budget(job_seconds=30.0),
...     retry=RetryPolicy(max_retries=2, job_timeout_seconds=60.0),
...     workers=4,
... )

Everything that runs synthesis accepts it: ``synthesize_system(system,
cfg)``, ``BatchEngine(cfg)``, and every CLI subcommand (via the shared
``--job-seconds``/``--max-retries``/... flags and ``--config file.json``).
The pre-PR-4 scattered keyword arguments finished their one-release
deprecation window and were removed; :func:`as_run_config` still coerces
``None``, a bare :class:`~repro.core.SynthesisOptions`, or an
``as_dict`` payload, and :meth:`RunConfig.replace` derives tweaked
copies.

The object is a *policy*, not runtime state: it round-trips through
:meth:`RunConfig.as_dict`/:meth:`RunConfig.from_dict` so the batch
engine can ship it to pool workers unchanged.  Budgets deliberately stay
**out of the result-cache key** — a budget can only change a result by
degrading it, and degraded results are never cached (see
``docs/ROBUSTNESS.md``).

New :class:`~repro.core.SynthesisOptions` fields need no wiring here:
``as_dict`` serializes the options via :func:`dataclasses.asdict`, so a
field like ``cse_mode`` (the DAG-vs-rectangle scorer switch, see
``docs/DAG.md``) automatically round-trips to pool workers *and* lands
in the engine's result-cache key.
"""

from __future__ import annotations

import zlib
from dataclasses import asdict, dataclass, field, fields
from dataclasses import replace as dc_replace
from typing import Any

from repro.core import SynthesisOptions
from repro.core.budget import Budget


@dataclass(frozen=True)
class RetryPolicy:
    """How the batch engine treats failing, crashing, or hung jobs.

    * ``max_retries`` — additional attempts after the first (0 disables
      retrying).
    * ``backoff_seconds`` / ``backoff_factor`` — exponential backoff:
      attempt ``n`` waits ``backoff_seconds * backoff_factor**n``.
    * ``jitter`` — fraction of the backoff added as *deterministic*
      jitter derived from the job label (reproducible batches stay
      reproducible; see :meth:`delay`).
    * ``job_timeout_seconds`` — hard wall-clock ceiling per pooled job;
      on expiry the worker is killed, the pool respawned, and the job
      rerun in-process down the degraded path.  ``None`` disables hard
      timeouts (cooperative budgets still apply).
    * ``breaker_threshold`` — consecutive failures of the *same* job
      label before the circuit opens and the engine stops offering that
      job to the pool, routing it straight to the serial degraded path.
    """

    max_retries: int = 2
    backoff_seconds: float = 0.05
    backoff_factor: float = 2.0
    jitter: float = 0.25
    job_timeout_seconds: float | None = None
    breaker_threshold: int = 3

    def delay(self, attempt: int, key: str = "") -> float:
        """Backoff before retry number ``attempt`` (1-based), with jitter.

        The jitter term is a hash of ``(key, attempt)`` — deterministic
        for a given job, decorrelated across jobs, so retries of many
        failed jobs do not stampede the pool in lockstep while batch
        wall times stay reproducible.
        """
        base = self.backoff_seconds * self.backoff_factor ** max(attempt - 1, 0)
        spread = zlib.crc32(f"{key}:{attempt}".encode()) % 1000 / 1000.0
        return base * (1.0 + self.jitter * spread)

    def as_dict(self) -> dict[str, Any]:
        return {"kind": "retry-policy", **asdict(self)}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RetryPolicy":
        if data.get("kind") != "retry-policy":
            raise ValueError(f"not a retry-policy payload: {data.get('kind')!r}")
        names = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in names})


@dataclass(frozen=True)
class RunConfig:
    """Everything one synthesis run (or batch) is allowed to do.

    Composition of the existing :class:`~repro.core.SynthesisOptions`
    (what the flow computes), a :class:`~repro.core.Budget` (how much it
    may spend), a :class:`RetryPolicy` (how the engine handles failures),
    and the engine placement knobs that used to be ``BatchEngine``
    keyword arguments.
    """

    options: SynthesisOptions = field(default_factory=SynthesisOptions)
    budget: Budget | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    workers: int = 1
    cache_size: int = 256
    cache_dir: str | None = None

    def replace(self, **overrides: Any) -> "RunConfig":
        """A copy with the given fields swapped out (the config is frozen).

        >>> RunConfig(workers=4).replace(cache_size=64).workers
        4
        """
        names = {f.name for f in fields(self)}
        unknown = sorted(set(overrides) - names)
        if unknown:
            raise TypeError(f"RunConfig has no field(s) {unknown}")
        return dc_replace(self, **overrides)

    def as_dict(self) -> dict[str, Any]:
        """JSON-safe representation (the worker-payload round-trip unit)."""
        return {
            "kind": "run-config",
            "options": asdict(self.options),
            "budget": self.budget.as_dict() if self.budget else None,
            "retry": self.retry.as_dict(),
            "workers": self.workers,
            "cache_size": self.cache_size,
            "cache_dir": str(self.cache_dir) if self.cache_dir is not None else None,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunConfig":
        if data.get("kind") != "run-config":
            raise ValueError(f"not a run-config payload: {data.get('kind')!r}")
        return cls(
            options=SynthesisOptions(**(data.get("options") or {})),
            budget=(
                Budget.from_dict(data["budget"]) if data.get("budget") else None
            ),
            retry=(
                RetryPolicy.from_dict(data["retry"])
                if data.get("retry")
                else RetryPolicy()
            ),
            workers=int(data.get("workers", 1)),
            cache_size=int(data.get("cache_size", 256)),
            cache_dir=data.get("cache_dir"),
        )


def as_run_config(value: "RunConfig | SynthesisOptions | None") -> RunConfig:
    """Coerce the accepted legacy types into a :class:`RunConfig`.

    ``None`` means all defaults; a bare :class:`SynthesisOptions` is
    wrapped (this is the one-release compatibility path for every caller
    that used to pass ``options=``).  Anything else is a type error —
    better loud than a silently ignored config.
    """
    if value is None:
        return RunConfig()
    if isinstance(value, RunConfig):
        return value
    if isinstance(value, SynthesisOptions):
        return RunConfig(options=value)
    if isinstance(value, dict):
        return RunConfig.from_dict(value)
    raise TypeError(
        f"expected RunConfig, SynthesisOptions, or None, got {type(value).__name__}"
    )
