"""Self-checking Verilog testbench generation.

Closes the verification loop at the RTL level: the testbench drives the
emitted :mod:`repro.rtl.verilog` module with deterministic pseudo-random
vectors, compares each output against the *polynomial* semantics
(computed in Python, mod ``2^m``), and reports PASS/FAIL per vector.  Any
Verilog simulator can run the pair; no tool is needed to *generate* it.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.poly import Polynomial
from repro.rings import BitVectorSignature

from .verilog import _sanitize


def generate_vectors(
    signature: BitVectorSignature, count: int, seed: int = 0xBEEF
) -> list[dict[str, int]]:
    """Deterministic pseudo-random input vectors for a signature."""
    rng = random.Random(seed)
    vectors = []
    for _ in range(count):
        vectors.append(
            {
                var: rng.randrange(1 << signature.width_of(var))
                for var in signature.variables
            }
        )
    return vectors


def testbench_for_system(
    system: Sequence[Polynomial],
    signature: BitVectorSignature,
    module_name: str = "datapath",
    vectors: int = 20,
    seed: int = 0xBEEF,
) -> str:
    """A self-checking testbench for the module emitted for ``system``.

    Expected values come from the polynomial semantics mod ``2^m`` — the
    same oracle :func:`repro.dfg.simulate` is tested against, so a
    simulator disagreement isolates the RTL emission.
    """
    width = signature.output_width
    modulus = signature.modulus
    inputs = [_sanitize(v) for v in signature.variables]
    outputs = [f"p{i}" for i in range(len(system))]
    stimuli = generate_vectors(signature, vectors, seed)

    lines: list[str] = []
    lines.append("`timescale 1ns/1ps")
    lines.append(f"module {module_name}_tb;")
    for name in inputs:
        lines.append(f"  reg  [{width - 1}:0] {name};")
    for name in outputs:
        lines.append(f"  wire [{width - 1}:0] {name};")
    lines.append("  integer errors;")
    lines.append("")
    ports = ", ".join(
        [f".{n}({n})" for n in inputs] + [f".{n}({n})" for n in outputs]
    )
    lines.append(f"  {module_name} dut({ports});")
    lines.append("")
    lines.append("  initial begin")
    lines.append("    errors = 0;")
    for index, env in enumerate(stimuli):
        for var, name in zip(signature.variables, inputs):
            lines.append(f"    {name} = {width}'d{env[var]};")
        lines.append("    #1;")
        for out_index, poly in enumerate(system):
            expected = poly.evaluate_mod(env, modulus)
            lines.append(
                f"    if (p{out_index} !== {width}'d{expected}) begin "
                f'$display("FAIL vector {index} output {out_index}: '
                f'got %0d want {expected}", p{out_index}); '
                f"errors = errors + 1; end"
            )
    lines.append('    if (errors == 0) $display("PASS: all vectors matched");')
    lines.append('    else $display("FAIL: %0d mismatches", errors);')
    lines.append("    $finish;")
    lines.append("  end")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"
