"""Verilog emission for synthesized polynomial datapaths.

The module computes every output polynomial combinationally; all buses are
``m`` bits wide (the datapath width — truncation mod ``2^m`` is the
bit-vector semantics of the paper, and keeping a uniform width makes the
emitted text simulate exactly like :func:`repro.dfg.simulate`).  Constant
multiplications are emitted as plain ``*`` and left to the downstream
synthesis tool's constant propagation, matching how the paper hands
blocks to Design Compiler.

The emitter is deterministic: equal decompositions produce byte-identical
text, so golden tests are stable.
"""

from __future__ import annotations

import re

from repro.dfg import DataFlowGraph, NodeKind, build_dfg
from repro.expr import Decomposition
from repro.rings import BitVectorSignature

_IDENT_RE = re.compile(r"[^A-Za-z0-9_]")


def _sanitize(name: str) -> str:
    """Turn an arbitrary variable name into a Verilog identifier."""
    clean = _IDENT_RE.sub("_", name)
    if not clean or clean[0].isdigit():
        clean = f"v_{clean}"
    return clean


def graph_to_verilog(
    graph: DataFlowGraph, module_name: str = "datapath"
) -> str:
    """Emit a combinational Verilog module for a dataflow graph."""
    width = graph.output_width
    inputs = [node for node in graph.nodes if node.kind == NodeKind.INPUT]
    port_names = [_sanitize(node.name or f"in{node.index}") for node in inputs]
    if len(set(port_names)) != len(port_names):
        raise ValueError(f"input names collide after sanitizing: {port_names}")
    output_ports = [f"p{index}" for index in range(len(graph.outputs))]

    lines: list[str] = []
    ports = ", ".join(port_names + output_ports)
    lines.append(f"module {module_name}({ports});")
    for name in port_names:
        lines.append(f"  input  [{width - 1}:0] {name};")
    for name in output_ports:
        lines.append(f"  output [{width - 1}:0] {name};")
    lines.append("")

    signal: dict[int, str] = {}
    assigns: list[str] = []
    wires: list[str] = []
    for node in graph.nodes:
        if node.kind == NodeKind.INPUT:
            signal[node.index] = _sanitize(node.name or f"in{node.index}")
            continue
        if node.kind == NodeKind.CONST:
            assert node.value is not None
            value = node.value % (1 << width)
            signal[node.index] = f"{width}'d{value}"
            continue
        name = f"n{node.index}"
        signal[node.index] = name
        wires.append(f"  wire [{width - 1}:0] {name};")
        if node.kind == NodeKind.ADD:
            a, b = node.operands
            expression = f"{signal[a]} + {signal[b]}"
        elif node.kind == NodeKind.SUB:
            a, b = node.operands
            expression = f"{signal[a]} - {signal[b]}"
        elif node.kind == NodeKind.MUL:
            a, b = node.operands
            expression = f"{signal[a]} * {signal[b]}"
        elif node.kind == NodeKind.CMUL:
            (a,) = node.operands
            assert node.value is not None
            constant = node.value % (1 << width)
            expression = f"{signal[a]} * {width}'d{constant}"
        else:  # pragma: no cover - exhaustive over NodeKind
            raise TypeError(f"unknown node kind {node.kind}")
        assigns.append(f"  assign {name} = {expression};")

    lines.extend(wires)
    lines.append("")
    lines.extend(assigns)
    lines.append("")
    for port, index in zip(output_ports, graph.outputs):
        lines.append(f"  assign {port} = {signal[index]};")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def decomposition_to_verilog(
    decomposition: Decomposition,
    signature: BitVectorSignature,
    module_name: str = "datapath",
) -> str:
    """Lower a decomposition to a DFG and emit Verilog."""
    return graph_to_verilog(build_dfg(decomposition, signature), module_name)
