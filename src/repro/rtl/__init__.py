"""RTL generation: emit synthesizable Verilog from decompositions.

The final product of the paper's flow is hardware; this subpackage closes
the loop by emitting a combinational Verilog module for any
:class:`~repro.expr.decomposition.Decomposition` under a bit-vector
signature — one wire per dataflow node, shared blocks shared by
construction.
"""

from .testbench import generate_vectors, testbench_for_system
from .verilog import decomposition_to_verilog, graph_to_verilog

__all__ = [
    "decomposition_to_verilog",
    "generate_vectors",
    "graph_to_verilog",
    "testbench_for_system",
]
