"""Command-line interface: ``python -m repro <command> ...``.

Commands:

``synthesize``
    Run the integrated flow on polynomials given on the command line and
    print the decomposition, operator counts, and hardware estimate.
``compare``
    Compare all methods (direct / Horner / factorization+CSE / proposed)
    on a named benchmark system or on given polynomials.
``canon``
    Print the canonical falling-factorial form of a polynomial over a
    bit-vector signature.
``factor``
    Factor a polynomial over Z.
``verilog``
    Synthesize and emit a Verilog module.
``systems``
    List the built-in benchmark systems.
``methods``
    List the registered synthesis methods (the method registry).
``batch``
    Run many benchmark systems through the batch engine (parallel
    workers, content-hash cache) and print per-phase timings.
``trace``
    Run the integrated flow under the span tracer and write the
    hierarchical trace (Chrome trace-event JSON, optionally JSONL and
    Prometheus metrics) — see ``docs/OBSERVABILITY.md``.
``fuzz``
    Differential fuzzing: generate adversarial systems, run every
    registered method plus the flow's strategy matrix, verify each
    result against the exact canonical-form oracle, shrink failures to
    minimal reproducers — see ``docs/VERIFY.md``.
``serve``
    Run the durable synthesis service: a crash-safe WAL job store,
    lease-based recovery (``--resume`` after a crash), admission
    control, and a stdlib HTTP API in front of the batch engine — see
    ``docs/SERVICE.md``.
``submit``
    Submit one system to a running ``repro serve`` over HTTP
    (``--wait`` polls until the job is terminal).
``jobs``
    List the jobs of a running ``repro serve`` (``--state``/``--tenant``
    filters).

``synthesize`` and ``batch`` additionally accept ``--trace-out FILE``
(write a Chrome trace of the run) and ``--stats`` (print the metrics
registry in Prometheus text format).  Setting ``REPRO_TRACE`` to a file
name traces any command and writes the Chrome trace there on exit.

Every synthesis-running subcommand shares the resource-governance flags
(``--job-seconds``, ``--phase-seconds``, ``--max-steps``,
``--job-timeout``, ``--max-retries``) plus ``--config FILE`` — a JSON
:meth:`repro.config.RunConfig.as_dict` payload that seeds the whole
config, with explicit flags overriding individual fields.  The flags are
declared once on shared argparse parent parsers and assemble into one
:class:`repro.config.RunConfig` — see ``docs/ROBUSTNESS.md``.
"""

from __future__ import annotations

import argparse
import sys

from repro import (
    BitVectorSignature,
    PolySystem,
    compare_methods,
    parse_system,
    synthesize_system,
)
from repro.config import RunConfig
from repro.core import Budget
from repro.cost import estimate_decomposition
from repro.factor import factor_polynomial
from repro.poly import parse_polynomial
from repro.rings import to_canonical
from repro.suite import available_systems, get_system


def _system_from_args(args: argparse.Namespace) -> PolySystem:
    if getattr(args, "system", None):
        return get_system(args.system)
    polys = parse_system(args.polynomials)
    variables = tuple(sorted({v for p in polys for v in p.used_vars()}))
    polys = [p.with_vars(variables) for p in polys]
    signature = BitVectorSignature.uniform(variables, args.width)
    return PolySystem("cli", tuple(polys), signature)


def run_config_from_args(args: argparse.Namespace) -> RunConfig:
    """Build the :class:`RunConfig` the shared CLI flags describe.

    ``--config FILE`` seeds the config from a JSON
    :meth:`RunConfig.as_dict` payload; every explicit flag then overrides
    the matching field on top of it.
    """
    import json
    from dataclasses import replace as dc_replace

    cfg = RunConfig()
    path = getattr(args, "config", None)
    if path:
        with open(path) as handle:
            cfg = RunConfig.from_dict(json.load(handle))

    job_seconds = getattr(args, "job_seconds", None)
    phase_seconds = getattr(args, "phase_seconds", None)
    max_steps = getattr(args, "max_steps", None)
    if job_seconds is not None or phase_seconds is not None or max_steps is not None:
        base = cfg.budget or Budget()
        cfg = cfg.replace(
            budget=Budget(
                job_seconds=job_seconds if job_seconds is not None else base.job_seconds,
                phase_seconds=(
                    phase_seconds if phase_seconds is not None else base.phase_seconds
                ),
                max_steps=max_steps if max_steps is not None else base.max_steps,
            )
        )

    retry_overrides: dict = {}
    if getattr(args, "max_retries", None) is not None:
        retry_overrides["max_retries"] = args.max_retries
    if getattr(args, "job_timeout", None) is not None:
        retry_overrides["job_timeout_seconds"] = args.job_timeout
    if retry_overrides:
        cfg = cfg.replace(retry=dc_replace(cfg.retry, **retry_overrides))

    if getattr(args, "workers", None) is not None:
        cfg = cfg.replace(workers=args.workers)
    if getattr(args, "cache_dir", None) is not None:
        cfg = cfg.replace(cache_dir=args.cache_dir)
    return cfg


def _obs_scope(args: argparse.Namespace, total_jobs: int | None = None):
    """(context manager, tracer, event stream) honouring the shared
    observability flags: ``--trace-out`` / ``--stats`` install a fresh
    tracer, ``--events-out`` / ``--progress`` a fresh event stream with
    a JSONL file sink and/or the live progress renderer."""
    from contextlib import ExitStack

    from repro.obs import (
        CallbackSink,
        EventStream,
        JsonlSink,
        ProgressRenderer,
        RingBufferSink,
        Tracer,
        use_events,
        use_tracer,
    )

    stack = ExitStack()
    tracer = None
    stream = None
    if getattr(args, "trace_out", None) or getattr(args, "stats", False):
        tracer = Tracer()
        stack.enter_context(use_tracer(tracer))
    sinks: list = [RingBufferSink()]
    if getattr(args, "events_out", None):
        sinks.append(JsonlSink(args.events_out))
    if getattr(args, "progress", False):
        sinks.append(CallbackSink(ProgressRenderer(total_jobs=total_jobs)))
    if len(sinks) > 1:
        stream = EventStream(sinks=sinks)
        stack.enter_context(use_events(stream))
    return stack, tracer, stream


def _trace_scope(args: argparse.Namespace):
    """(context manager, tracer) honouring --trace-out / --stats flags."""
    scope, tracer, _ = _obs_scope(args)
    return scope, tracer


def _emit_trace_artifacts(args: argparse.Namespace, tracer, stream=None) -> None:
    from repro.obs import JsonlSink, get_registry, prometheus_text, write_chrome_trace

    if getattr(args, "trace_out", None) and tracer is not None:
        events = write_chrome_trace(args.trace_out, tracer.snapshot())
        print(f"trace: {events} event(s) -> {args.trace_out}")
    if stream is not None:
        stream.close()
        for sink in stream.sinks:
            if isinstance(sink, JsonlSink):
                print(f"events: {sink.written} event(s) -> {sink.path}")
    if getattr(args, "stats", False):
        text = prometheus_text(get_registry())
        if text:
            print()
            print(text, end="")


def _cmd_synthesize(args: argparse.Namespace) -> int:
    system = _system_from_args(args)
    scope, tracer, stream = _obs_scope(args, total_jobs=1)
    with scope:
        result = synthesize_system(system, run_config_from_args(args))
    print(result.summary())
    report = estimate_decomposition(result.decomposition, system.signature)
    print(f"hardware: {report}")
    _emit_trace_artifacts(args, tracer, stream)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.api import DEFAULT_METHODS
    from repro.baselines import available_methods
    from repro.report import markdown_report, text_report

    system = _system_from_args(args)
    if args.methods:
        methods = tuple(m.strip() for m in args.methods.split(",") if m.strip())
        unknown = [m for m in methods if m not in available_methods()]
        if unknown:
            print(
                f"error: unknown method(s) {', '.join(unknown)}; "
                f"registered: {', '.join(available_methods())}",
                file=sys.stderr,
            )
            return 2
    else:
        methods = DEFAULT_METHODS
    outcomes = compare_methods(system, run_config_from_args(args), methods=methods)
    if args.markdown:
        print(markdown_report(system, outcomes))
    else:
        print(text_report(system, outcomes))
    return 0


def _cmd_methods(args: argparse.Namespace) -> int:
    from repro.baselines import available_methods, get_method

    for name in available_methods():
        doc = (get_method(name).__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        print(f"{name:12s} {summary}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.api import clear_caches
    from repro.core import synthesis_cache_sizes

    if args.clear:
        sizes = clear_caches()
        for name, size in sizes.items():
            print(f"{name:16s} {size} entr{'y' if size == 1 else 'ies'} cleared")
    else:
        for name, size in synthesis_cache_sizes().items():
            print(f"{name:16s} {size} entr{'y' if size == 1 else 'ies'}")
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.baselines import available_methods
    from repro.engine import BatchEngine, graceful_shutdown
    from repro.suite import TABLE_14_3_SYSTEMS

    if args.method not in available_methods():
        print(
            f"error: unknown method {args.method!r}; "
            f"registered: {', '.join(available_methods())}",
            file=sys.stderr,
        )
        return 2
    if args.systems:
        names = tuple(n.strip() for n in args.systems.split(",") if n.strip())
    else:
        names = TABLE_14_3_SYSTEMS
    engine = BatchEngine(run_config_from_args(args))
    report = None
    scope, tracer, stream = _obs_scope(
        args, total_jobs=len(names) * max(1, args.repeat)
    )
    with scope, graceful_shutdown(engine):
        for _ in range(max(1, args.repeat)):
            report = engine.run_suite(names, method=args.method)
            if engine.stop_requested:
                break
    assert report is not None
    print(report.summary_table())
    _emit_trace_artifacts(args, tracer, stream)
    if engine.stop_requested:
        # Interrupted: in-flight jobs were drained (their results are in
        # the partial report above), queued jobs were cancelled, and the
        # disk cache holds everything that completed.
        print(
            f"batch: interrupted — {len(report.cancelled)} job(s) cancelled "
            f"before execution, completed work is cached",
            file=sys.stderr,
        )
        return 130
    return 1 if report.errors else 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import (
        Tracer,
        chrome_trace,
        chrome_trace_depth,
        format_span_tree,
        get_registry,
        use_tracer,
        validate_chrome_trace,
        write_chrome_trace,
        write_jsonl,
        write_prometheus,
    )

    system = _system_from_args(args)
    tracer = Tracer()
    with use_tracer(tracer):
        result = synthesize_system(system, run_config_from_args(args))
    print(result.summary())
    print()
    snapshot = tracer.snapshot()
    print(format_span_tree(snapshot.spans))
    document = chrome_trace(snapshot)
    errors = validate_chrome_trace(document)
    if errors:
        for error in errors:
            print(f"invalid trace: {error}", file=sys.stderr)
        return 1
    events = write_chrome_trace(args.out, snapshot)
    print(
        f"trace: {events} event(s), depth {chrome_trace_depth(document)} "
        f"-> {args.out}"
    )
    if args.jsonl:
        lines = write_jsonl(args.jsonl, snapshot)
        print(f"jsonl: {lines} span(s) -> {args.jsonl}")
    if args.metrics:
        write_prometheus(args.metrics, get_registry())
        print(f"metrics: -> {args.metrics}")
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz import FuzzConfig, run_fuzz

    shapes = (
        tuple(s.strip() for s in args.shapes.split(",") if s.strip())
        if args.shapes
        else None
    )
    methods = (
        tuple(m.strip() for m in args.methods.split(",") if m.strip())
        if args.methods
        else None
    )
    config = FuzzConfig(
        seed=args.seed,
        iterations=args.iterations,
        time_budget=args.time_budget,
        methods=methods,
        shapes=shapes,
        check_cost=not args.no_cost_check,
        shrink=args.shrink,
        corpus_dir=args.corpus_dir,
        run_config=run_config_from_args(args),
    )
    scope, tracer, stream = _obs_scope(args, total_jobs=args.iterations)
    with scope:
        report = run_fuzz(config)
    print(report.summary())
    # Wall-clock goes to stderr: the stdout summary stays deterministic.
    print(f"elapsed: {report.elapsed:.1f}s", file=sys.stderr)
    _emit_trace_artifacts(args, tracer, stream)
    return 1 if report.findings else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.report import batch_text_report
    from repro.service import ServiceConfig, ServiceServer, SynthesisService

    service = SynthesisService(
        ServiceConfig(
            data_dir=args.data_dir,
            run_config=run_config_from_args(args),
            lease_seconds=args.lease_seconds,
            max_redeliveries=args.max_redeliveries,
            fsync=args.fsync,
            drain_seconds=args.drain_seconds,
            max_queue_depth=args.max_queue_depth,
            tenant_rate=args.rate,
            tenant_burst=args.burst,
            max_job_seconds=args.max_job_seconds_cap,
            events_out=args.events_out,
        )
    )
    service.start(resume=args.resume)
    if args.resume:
        recovery = service.recovery
        print(
            f"repro-serve: resume recovered {recovery.get('jobs', 0)} job(s) "
            f"from the WAL ({recovery.get('torn_records', 0)} torn record(s) "
            f"dropped), requeued {recovery.get('requeued', 0)} orphan(s), "
            f"dead-lettered {recovery.get('dead_lettered', 0)}",
            flush=True,
        )
    server = ServiceServer(service, args.host, args.port)
    try:
        asyncio.run(
            server.run(
                announce=lambda msg: print(f"repro-serve: {msg}", flush=True)
            )
        )
    finally:
        report = service.stop(drain=True)
        counts = service.store.counts()
        summary = ", ".join(
            f"{count} {state}" for state, count in sorted(counts.items())
        )
        print(f"repro-serve: drained; store holds {summary or 'no jobs'}")
        if report.results:
            print(batch_text_report(report))
    return 0


def _http_json(
    url: str,
    payload: dict | None = None,
    timeout: float = 30.0,
) -> tuple[int, dict]:
    """One JSON-over-HTTP exchange against a running ``repro serve``."""
    import json
    import urllib.error
    import urllib.request

    data = json.dumps(payload).encode("utf-8") if payload is not None else None
    request = urllib.request.Request(
        url,
        data=data,
        headers={"Content-Type": "application/json"} if data else {},
        method="POST" if data is not None else "GET",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read() or b"{}")
    except urllib.error.HTTPError as error:
        try:
            body = json.loads(error.read() or b"{}")
        except ValueError:
            body = {}
        return error.code, body


def _cmd_submit(args: argparse.Namespace) -> int:
    import time as time_mod

    from repro.serialize import system_to_dict
    from repro.service import TERMINAL_STATES

    system = _system_from_args(args)
    payload: dict = {
        "system": system_to_dict(system),
        "method": args.method,
        "tenant": args.tenant,
    }
    if args.label:
        payload["label"] = args.label
    config = run_config_from_args(args)
    if config != RunConfig():
        payload["config"] = config.as_dict()
    base = args.url.rstrip("/")
    status, data = _http_json(f"{base}/jobs", payload)
    if status == 429:
        print(
            f"rejected: {data.get('error', 'rate limited')} "
            f"(retry after {float(data.get('retry_after', 0.0)):.3f}s)",
            file=sys.stderr,
        )
        return 75  # EX_TEMPFAIL: the client should back off and retry
    if status not in (200, 201):
        print(f"error {status}: {data.get('error', data)}", file=sys.stderr)
        return 1
    job = data["job"]
    dedup = "" if data.get("created") else " (deduplicated onto existing job)"
    print(f"job {job['job_id']}: {job['state']}{dedup}")
    if not args.wait:
        return 0
    deadline = time_mod.time() + args.wait_timeout
    while time_mod.time() < deadline:
        status, data = _http_json(f"{base}/jobs/{job['job_id']}")
        if status != 200:
            print(f"error {status}: {data.get('error', data)}", file=sys.stderr)
            return 1
        job = data["job"]
        if job["state"] in TERMINAL_STATES:
            break
        time_mod.sleep(args.poll_seconds)
    else:
        print(
            f"job {job['job_id']} still {job['state']!r} after "
            f"{args.wait_timeout:.0f}s",
            file=sys.stderr,
        )
        return 1
    status, data = _http_json(f"{base}/jobs/{job['job_id']}/result")
    if status != 200:
        print(f"error {status}: {data.get('error', data)}", file=sys.stderr)
        return 1
    line = f"job {data['job_id']}: {data['state']}"
    if data.get("fingerprint"):
        line += f", fingerprint {data['fingerprint'][:16]}"
    if data.get("error"):
        line += f", error: {data['error']}"
    print(line)
    return 0 if data["state"] in ("done", "degraded") else 1


def _cmd_jobs(args: argparse.Namespace) -> int:
    base = args.url.rstrip("/")
    query = []
    if args.state:
        query.append(f"state={args.state}")
    if args.tenant:
        query.append(f"tenant={args.tenant}")
    suffix = f"?{'&'.join(query)}" if query else ""
    status, data = _http_json(f"{base}/jobs{suffix}")
    if status != 200:
        print(f"error {status}: {data.get('error', data)}", file=sys.stderr)
        return 1
    jobs = data.get("jobs", [])
    print(
        f"{'job':24s} {'state':12s} {'tenant':10s} {'method':12s} "
        f"{'att':>3s} {'redel':>5s} fingerprint"
    )
    for job in jobs:
        fingerprint = (job.get("fingerprint") or "")[:16]
        print(
            f"{job['job_id']:24s} {job['state']:12s} {job['tenant']:10s} "
            f"{job['method']:12s} {job.get('attempts', 0):3d} "
            f"{job.get('redeliveries', 0):5d} {fingerprint}"
        )
    counts = data.get("counts", {})
    summary = ", ".join(
        f"{count} {state}" for state, count in sorted(counts.items())
    )
    print(f"total: {len(jobs)} job(s) ({summary or 'empty store'})")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    import json

    from repro.core import explain_text
    from repro.obs import EventStream, Tracer, use_events, use_tracer

    system = _system_from_args(args)
    # Run under a fresh tracer + stream so the provenance counters and
    # the published metrics come from this run alone.
    with use_tracer(Tracer()), use_events(EventStream()):
        result = synthesize_system(system, run_config_from_args(args))
    if args.format == "json":
        prov = result.provenance
        print(
            json.dumps(
                prov.as_dict() if prov is not None else None,
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(explain_text(result, name=system.name))
    return 0


def _cmd_canon(args: argparse.Namespace) -> int:
    poly = parse_polynomial(args.polynomial)
    variables = poly.used_vars() or ("x",)
    signature = BitVectorSignature.uniform(variables, args.width)
    print(to_canonical(poly.with_vars(variables), signature))
    return 0


def _cmd_factor(args: argparse.Namespace) -> int:
    poly = parse_polynomial(args.polynomial)
    print(factor_polynomial(poly))
    return 0


def _cmd_verilog(args: argparse.Namespace) -> int:
    from repro.rtl import decomposition_to_verilog, testbench_for_system

    system = _system_from_args(args)
    result = synthesize_system(system, run_config_from_args(args))
    sys.stdout.write(
        decomposition_to_verilog(result.decomposition, system.signature, args.module)
    )
    if args.testbench:
        sys.stdout.write("\n")
        sys.stdout.write(
            testbench_for_system(
                list(system.polys), system.signature, args.module
            )
        )
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.verify import check_polynomials

    left = parse_polynomial(args.left)
    right = parse_polynomial(args.right)
    variables = tuple(sorted(set(left.used_vars()) | set(right.used_vars()))) or ("x",)
    signature = BitVectorSignature.uniform(variables, args.width)
    report = check_polynomials(
        left.with_vars(variables), right.with_vars(variables), signature
    )
    print(report)
    return 0 if report else 1


def _cmd_systems(args: argparse.Namespace) -> int:
    for name in available_systems():
        print(f"{name:16s} {get_system(name)}")
    return 0


def _system_parent() -> argparse.ArgumentParser:
    """Shared input-selection arguments (``parents=`` building block)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument("polynomials", nargs="*", help="polynomial expressions")
    parent.add_argument("--system", help="name of a built-in benchmark system")
    parent.add_argument("--width", type=int, default=16, help="bit-vector width")
    return parent


def _governance_parent() -> argparse.ArgumentParser:
    """Shared RunConfig flags, declared once for every synthesis command."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("resource governance (RunConfig)")
    group.add_argument(
        "--config",
        metavar="FILE",
        help="seed the RunConfig from a JSON file (a RunConfig.as_dict "
        "payload); the flags below override its fields individually",
    )
    group.add_argument(
        "--job-seconds",
        type=float,
        help="cooperative wall-clock budget per synthesis job (graceful "
        "degradation on overrun)",
    )
    group.add_argument(
        "--phase-seconds",
        type=float,
        help="cooperative wall-clock budget per synthesis phase",
    )
    group.add_argument(
        "--max-steps",
        type=int,
        help="deterministic step-count fuse across the flow's hot loops",
    )
    group.add_argument(
        "--job-timeout",
        type=float,
        help="hard per-job timeout for pooled batch jobs (worker killed, "
        "job rerun degraded)",
    )
    group.add_argument(
        "--max-retries",
        type=int,
        help="retry attempts for crashed or failing batch jobs (default: 2)",
    )
    return parent


def _observability_parent() -> argparse.ArgumentParser:
    """Shared tracing/metrics flags (``parents=`` building block)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--trace-out",
        help="write a Chrome trace-event JSON of the run to this file",
    )
    parent.add_argument(
        "--stats",
        action="store_true",
        help="print the metrics registry (Prometheus text format)",
    )
    parent.add_argument(
        "--events-out",
        help="stream the structured event log (JSONL) of the run to this file",
    )
    parent.add_argument(
        "--progress",
        action="store_true",
        help="render a live progress/ETA status line from the event stream",
    )
    return parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Polynomial datapath synthesis (Gopalakrishnan & Kalla, DATE'09)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    system = _system_parent()
    governance = _governance_parent()
    observability = _observability_parent()

    p = sub.add_parser(
        "synthesize",
        parents=[system, governance, observability],
        help="run the integrated flow",
    )
    p.set_defaults(func=_cmd_synthesize)

    p = sub.add_parser(
        "compare", parents=[system, governance], help="compare all methods"
    )
    p.add_argument("--markdown", action="store_true", help="emit a Markdown table")
    p.add_argument(
        "--methods",
        help="comma-separated method names from the registry "
        "(default: direct,horner,factor+cse,proposed)",
    )
    p.set_defaults(func=_cmd_compare)

    p = sub.add_parser(
        "explain",
        parents=[system, governance],
        help="run the flow and render its decision report (provenance)",
    )
    p.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="human-readable report (default) or the raw provenance JSON",
    )
    p.set_defaults(func=_cmd_explain)

    p = sub.add_parser("canon", help="canonical form over Z_2^m")
    p.add_argument("polynomial")
    p.add_argument("--width", type=int, default=16)
    p.set_defaults(func=_cmd_canon)

    p = sub.add_parser("factor", help="factor a polynomial over Z")
    p.add_argument("polynomial")
    p.set_defaults(func=_cmd_factor)

    p = sub.add_parser(
        "verilog", parents=[system, governance], help="synthesize and emit Verilog"
    )
    p.add_argument("--module", default="datapath", help="Verilog module name")
    p.add_argument(
        "--testbench", action="store_true", help="also emit a self-checking testbench"
    )
    p.set_defaults(func=_cmd_verilog)

    p = sub.add_parser("check", help="equivalence of two polynomials over Z_2^m")
    p.add_argument("left")
    p.add_argument("right")
    p.add_argument("--width", type=int, default=16)
    p.set_defaults(func=_cmd_check)

    p = sub.add_parser("systems", help="list built-in benchmark systems")
    p.set_defaults(func=_cmd_systems)

    p = sub.add_parser("methods", help="list registered synthesis methods")
    p.set_defaults(func=_cmd_methods)

    p = sub.add_parser(
        "cache",
        help="inspect or clear the process-level synthesis caches "
        "(best-expression memo, kernel cache, DAG interner, packed "
        "contexts, rings memos)",
    )
    group = p.add_mutually_exclusive_group()
    group.add_argument(
        "--stats", action="store_true", help="print cache sizes (the default)"
    )
    group.add_argument(
        "--clear", action="store_true", help="clear every cache; print what was dropped"
    )
    p.set_defaults(func=_cmd_cache)

    p = sub.add_parser(
        "batch",
        parents=[governance, observability],
        help="batch-synthesize systems via the engine",
    )
    p.add_argument(
        "--systems",
        help="comma-separated benchmark system names "
        "(default: the eight Table 14.3 rows)",
    )
    p.add_argument(
        "--method", default="proposed", help="registered method to run"
    )
    p.add_argument(
        "--workers",
        type=int,
        help="process pool size (default: 1 = in-process)",
    )
    p.add_argument(
        "--cache-dir", help="directory for the on-disk result cache (optional)"
    )
    p.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="run the batch N times (N>1 demonstrates warm-cache hit rates)",
    )
    p.set_defaults(func=_cmd_batch)

    p = sub.add_parser(
        "fuzz",
        parents=[governance, observability],
        help="differential fuzzing of every registered method",
    )
    p.add_argument("--seed", type=int, default=0, help="master sweep seed")
    p.add_argument(
        "--iterations", type=int, default=100, help="number of generated cases"
    )
    p.add_argument(
        "--time-budget",
        type=float,
        help="wall-clock budget (seconds) for the whole sweep; the sweep "
        "stops between cases and reports itself truncated",
    )
    p.add_argument(
        "--shrink",
        action="store_true",
        help="delta-debug failing systems down to minimal reproducers",
    )
    p.add_argument(
        "--corpus-dir",
        help="write reproducer JSON files for failing cases here",
    )
    p.add_argument(
        "--shapes", help="comma-separated generator shapes (default: all)"
    )
    p.add_argument(
        "--methods",
        help="comma-separated registry methods to fuzz (default: all)",
    )
    p.add_argument(
        "--no-cost-check",
        action="store_true",
        help="skip the area-monotonicity cross-check",
    )
    p.set_defaults(func=_cmd_fuzz)

    p = sub.add_parser(
        "serve",
        parents=[governance],
        help="run the durable synthesis service (WAL job store + HTTP API)",
    )
    p.add_argument(
        "--data-dir",
        required=True,
        help="directory for the WAL job store and the result cache",
    )
    p.add_argument("--host", default="127.0.0.1", help="bind address")
    p.add_argument(
        "--port",
        type=int,
        default=0,
        help="bind port (default 0: pick an ephemeral port and announce it)",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="replay the WAL and requeue jobs orphaned by a crash",
    )
    p.add_argument(
        "--workers", type=int, help="engine process pool size (default: 1)"
    )
    p.add_argument(
        "--cache-dir",
        help="result cache directory (default: <data-dir>/cache)",
    )
    p.add_argument(
        "--lease-seconds",
        type=float,
        default=30.0,
        help="worker lease duration; expired leases are requeued",
    )
    p.add_argument(
        "--max-redeliveries",
        type=int,
        default=3,
        help="redeliveries before a job parks in the dead-letter state",
    )
    p.add_argument(
        "--drain-seconds",
        type=float,
        default=30.0,
        help="grace period for in-flight jobs on SIGTERM/SIGINT",
    )
    p.add_argument(
        "--max-queue-depth",
        type=int,
        default=1024,
        help="global cap on non-terminal jobs (backpressure: HTTP 429)",
    )
    p.add_argument(
        "--rate",
        type=float,
        default=50.0,
        help="sustained submissions/second allowed per tenant",
    )
    p.add_argument(
        "--burst",
        type=int,
        default=100,
        help="instantaneous submission burst allowed per tenant",
    )
    p.add_argument(
        "--max-job-seconds-cap",
        type=float,
        help="clamp every tenant's job budget to at most this many seconds",
    )
    p.add_argument(
        "--fsync",
        action="store_true",
        help="fsync every WAL append (survives power loss, not just crashes)",
    )
    p.add_argument(
        "--events-out",
        help="stream the service's structured event log (JSONL) to this file",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "submit",
        parents=[system, governance],
        help="submit one system to a running `repro serve` over HTTP",
    )
    p.add_argument(
        "--url",
        default="http://127.0.0.1:8765",
        help="base URL of the running service",
    )
    p.add_argument(
        "--method", default="proposed", help="registered method to run"
    )
    p.add_argument("--tenant", default="default", help="tenant identity")
    p.add_argument("--label", help="display label (default: the system name)")
    p.add_argument(
        "--wait",
        action="store_true",
        help="poll until the job is terminal and print its result",
    )
    p.add_argument(
        "--wait-timeout",
        type=float,
        default=300.0,
        help="give up polling after this many seconds",
    )
    p.add_argument(
        "--poll-seconds",
        type=float,
        default=0.2,
        help="poll interval while waiting",
    )
    p.set_defaults(func=_cmd_submit)

    p = sub.add_parser(
        "jobs", help="list the jobs of a running `repro serve`"
    )
    p.add_argument(
        "--url",
        default="http://127.0.0.1:8765",
        help="base URL of the running service",
    )
    p.add_argument("--state", help="filter by job state")
    p.add_argument("--tenant", help="filter by tenant")
    p.set_defaults(func=_cmd_jobs)

    p = sub.add_parser(
        "trace",
        parents=[system, governance],
        help="run the flow under the span tracer and export the trace",
    )
    p.add_argument(
        "--out", default="trace.json", help="Chrome trace-event JSON output file"
    )
    p.add_argument("--jsonl", help="also write a flat JSONL span log here")
    p.add_argument(
        "--metrics", help="also write the metrics registry (Prometheus text) here"
    )
    p.set_defaults(func=_cmd_trace)
    return parser


def _flush_env_trace() -> None:
    """Honour ``REPRO_TRACE=<file>`` / ``REPRO_EVENTS=<file>``: dump the
    ambient tracer and close the ambient event stream's sinks on exit."""
    from repro.obs import (
        current_events,
        current_tracer,
        env_trace_path,
        write_chrome_trace,
    )

    path = env_trace_path()
    tracer = current_tracer()
    if path and getattr(tracer, "roots", None):
        write_chrome_trace(path, tracer.snapshot())
    current_events().close()


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "command", None) in (
        "synthesize", "compare", "verilog", "trace", "explain", "submit",
    ):
        if not args.polynomials and not args.system:
            print("error: provide polynomials or --system NAME", file=sys.stderr)
            return 2
    code = args.func(args)
    _flush_env_trace()
    return code


if __name__ == "__main__":
    raise SystemExit(main())
