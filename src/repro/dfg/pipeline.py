"""Pipelining of combinational dataflow graphs.

The paper's area-optimized decompositions pay in combinational delay
(Table 14.3's negative delay columns); the standard systems answer is to
pipeline.  This module cuts a DFG into stages at operator levels and
reports the register cost and the resulting stage delay:

* :func:`pipeline_cuts` — choose cut levels so no stage exceeds a target
  combinational delay,
* :func:`pipeline_report` — registers needed per cut (every bus crossing
  the cut is registered), total register area, achieved stage delay
  (= clock period) and latency in cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cost.model import DEFAULT_MODEL, TechnologyModel

from .graph import DataFlowGraph
from .scheduling import asap_levels


@dataclass(frozen=True)
class PipelineReport:
    """Outcome of pipelining a graph to a delay target."""

    stages: int
    cut_levels: tuple[int, ...]
    registers: int           # total registered bits across all cuts
    register_area: float     # in gate equivalents
    stage_delay: float       # worst combinational delay between registers
    latency_cycles: int

    def __str__(self) -> str:
        return (
            f"{self.stages} stage(s), {self.registers} register bits "
            f"({self.register_area:.0f} GE), stage delay {self.stage_delay:.0f}"
        )


def _node_delays(graph: DataFlowGraph, model: TechnologyModel) -> dict[int, float]:
    from repro.cost.estimate import node_delay

    return {node.index: node_delay(graph, node, model) for node in graph.nodes}


def _arrival_times(graph: DataFlowGraph, delays: dict[int, float]) -> dict[int, float]:
    arrival: dict[int, float] = {}
    for node in graph.nodes:
        own = delays[node.index]
        if not node.operands:
            arrival[node.index] = own
        else:
            arrival[node.index] = own + max(arrival[op] for op in node.operands)
    return arrival


def pipeline_cuts(
    graph: DataFlowGraph,
    target_delay: float,
    model: TechnologyModel = DEFAULT_MODEL,
) -> tuple[int, ...]:
    """Operator levels after which to place registers.

    Greedy ASAP-based heuristic: walk the levels in order, accumulate the
    worst per-level delay, and cut whenever adding the next level would
    exceed the target.  A single level whose own delay exceeds the target
    gets a stage of its own (the target is then unreachable and the
    report's ``stage_delay`` says so).
    """
    if target_delay <= 0:
        raise ValueError(f"target delay must be positive, got {target_delay}")
    levels = asap_levels(graph)
    delays = _node_delays(graph, model)
    if not graph.nodes:
        return ()
    max_level = max(levels.values())
    level_delay: dict[int, float] = {}
    for node in graph.nodes:
        if node.is_operator():
            level = levels[node.index]
            level_delay[level] = max(level_delay.get(level, 0.0), delays[node.index])
    cuts: list[int] = []
    accumulated = 0.0
    for level in range(1, max_level + 1):
        step = level_delay.get(level, 0.0)
        if accumulated > 0 and accumulated + step > target_delay:
            cuts.append(level - 1)
            accumulated = step
        else:
            accumulated += step
    return tuple(cuts)


def pipeline_report(
    graph: DataFlowGraph,
    target_delay: float,
    model: TechnologyModel = DEFAULT_MODEL,
) -> PipelineReport:
    """Pipeline the graph and account for the registers."""
    cuts = pipeline_cuts(graph, target_delay, model)
    levels = asap_levels(graph)
    delays = _node_delays(graph, model)

    # A value crossing a cut is any edge (producer, consumer) with the
    # producer at or below the cut level and the consumer above it; each
    # crossing value is registered once per cut it spans (width bits).
    registers = 0
    for cut in cuts:
        crossing: set[int] = set()
        for node in graph.nodes:
            if levels[node.index] <= cut:
                continue
            for op in node.operands:
                if levels[op] <= cut:
                    crossing.add(op)
        for index in crossing:
            registers += graph.nodes[index].width
    # Outputs after the last cut also land in output registers for every
    # earlier stage they skipped — omitted: we count internal cuts only.

    # Worst stage delay under the chosen cuts.
    boundaries = [0, *[c + 0.5 for c in cuts], float("inf")]
    stage_delay = 0.0
    for lo, hi in zip(boundaries, boundaries[1:]):
        stage_total: dict[int, float] = {}
        for node in graph.nodes:
            if not node.is_operator():
                continue
            level = levels[node.index]
            if lo < level <= hi or (lo == 0 and level <= hi):
                stage_total[level] = max(
                    stage_total.get(level, 0.0), delays[node.index]
                )
        stage_delay = max(stage_delay, sum(stage_total.values()))

    return PipelineReport(
        stages=len(cuts) + 1,
        cut_levels=cuts,
        registers=registers,
        register_area=registers * model.register_area,
        stage_delay=stage_delay,
        latency_cycles=len(cuts) + 1,
    )
