"""Dataflow graphs: decomposition lowering, sharing, and scheduling."""

from .build import DfgBuilder, build_dfg
from .graph import DataFlowGraph, Node, NodeKind
from .pipeline import PipelineReport, pipeline_cuts, pipeline_report
from .scheduling import (
    Schedule,
    alap_levels,
    asap_levels,
    critical_path,
    list_schedule,
    mobility,
    resource_class,
)
from .simulate import simulate

__all__ = [
    "DataFlowGraph",
    "DfgBuilder",
    "Node",
    "NodeKind",
    "PipelineReport",
    "Schedule",
    "pipeline_cuts",
    "pipeline_report",
    "alap_levels",
    "asap_levels",
    "build_dfg",
    "critical_path",
    "list_schedule",
    "mobility",
    "resource_class",
    "simulate",
]
