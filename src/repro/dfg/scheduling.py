"""Scheduling and timing analysis of dataflow graphs.

The paper's flow stops at combinational blocks; a real high-level
synthesis pipeline (Section 14.1's CDFG world) also *schedules* the
operations onto a limited set of functional units.  This module provides
the classical machinery:

* :func:`asap_levels` — as-soon-as-possible topological levels,
* :func:`critical_path` — longest weighted path to any output,
* :func:`alap_levels` — as-late-as-possible levels against a latency
  bound,
* :func:`mobility` — the slack per node (ALAP - ASAP), the standard list
  scheduling priority,
* :func:`list_schedule` — resource-constrained list scheduling with one
  cycle per operator and per-kind unit counts (e.g. 2 multipliers, 4
  adders); returns the cycle assignment and total latency.

Invariants (tested): data dependencies respected, per-cycle resource
usage within bounds, latency between the ASAP bound and the fully
serialized bound.

(Historically split across ``repro.dfg.schedule`` and this module; the
``repro.dfg.schedule`` shim was removed after one deprecation release.)
"""

from __future__ import annotations

from dataclasses import dataclass

from .graph import DataFlowGraph, Node, NodeKind


def asap_levels(graph: DataFlowGraph) -> dict[int, int]:
    """Topological operator level of every node (inputs/constants at 0)."""
    levels: dict[int, int] = {}
    for node in graph.nodes:  # nodes list is already topologically ordered
        if not node.operands:
            levels[node.index] = 0
        else:
            levels[node.index] = 1 + max(levels[op] for op in node.operands)
    return levels


def critical_path(
    graph: DataFlowGraph, node_delay
) -> tuple[float, list[int]]:
    """Longest weighted path through the graph.

    ``node_delay(node) -> float`` supplies per-node delays (the cost model
    provides width-aware ones).  Returns the total delay of the critical
    path to any output, and the node indices along it (source first).
    """
    arrival: dict[int, float] = {}
    predecessor: dict[int, int | None] = {}
    for node in graph.nodes:
        own = node_delay(node)
        if not node.operands:
            arrival[node.index] = own
            predecessor[node.index] = None
        else:
            best_op = max(node.operands, key=lambda i: arrival[i])
            arrival[node.index] = arrival[best_op] + own
            predecessor[node.index] = best_op
    if not graph.outputs:
        return 0.0, []
    end = max(graph.outputs, key=lambda i: arrival[i])
    path: list[int] = []
    cursor: int | None = end
    while cursor is not None:
        path.append(cursor)
        cursor = predecessor[cursor]
    path.reverse()
    return arrival[end], path


#: Which operator kinds compete for the same functional units.
_RESOURCE_CLASS = {
    NodeKind.MUL: "mul",
    NodeKind.CMUL: "add",  # shift-add networks occupy adder-class units
    NodeKind.ADD: "add",
    NodeKind.SUB: "add",
}


def resource_class(node: Node) -> str | None:
    """The functional-unit class a node occupies (None for wires/inputs)."""
    return _RESOURCE_CLASS.get(node.kind)


def alap_levels(graph: DataFlowGraph, latency: int) -> dict[int, int]:
    """As-late-as-possible operator level of every node under a bound.

    Raises ``ValueError`` when the bound is below the critical path.
    """
    asap = asap_levels(graph)
    depth = max((asap[i] for i in graph.outputs), default=0)
    if latency < depth:
        raise ValueError(f"latency bound {latency} below critical path {depth}")
    consumers: dict[int, list[int]] = {node.index: [] for node in graph.nodes}
    for node in graph.nodes:
        for operand in node.operands:
            consumers[operand].append(node.index)
    alap: dict[int, int] = {}
    for node in reversed(graph.nodes):
        if not consumers[node.index]:
            alap[node.index] = latency
        else:
            alap[node.index] = min(alap[c] - 1 for c in consumers[node.index])
    return alap


def mobility(graph: DataFlowGraph, latency: int | None = None) -> dict[int, int]:
    """Slack per node: ALAP - ASAP (0 = on the critical path)."""
    asap = asap_levels(graph)
    bound = latency if latency is not None else max(
        (asap[i] for i in graph.outputs), default=0
    )
    alap = alap_levels(graph, bound)
    return {index: alap[index] - asap[index] for index in asap}


@dataclass(frozen=True)
class Schedule:
    """A cycle assignment for every operator node."""

    cycles: dict[int, int]  # node index -> start cycle (operators only)
    latency: int
    resources: dict[str, int]

    def usage(self) -> dict[int, dict[str, int]]:
        """Per-cycle, per-class resource usage (for verification)."""
        out: dict[int, dict[str, int]] = {}
        for _, cycle in self.cycles.items():
            out.setdefault(cycle, {})
        return out


def list_schedule(
    graph: DataFlowGraph, resources: dict[str, int]
) -> Schedule:
    """Priority list scheduling with unit-latency operators.

    ``resources`` maps class name ("mul", "add") to available units; a
    missing class means unlimited.  Priority: least mobility first (the
    classical choice), ties broken by node index for determinism.
    """
    for name, count in resources.items():
        if count < 1:
            raise ValueError(f"resource class {name!r} needs at least one unit")
    operators = [node for node in graph.nodes if node.is_operator()]
    slack = mobility(graph)
    cycles: dict[int, int] = {}
    remaining = set(node.index for node in operators)
    cycle = 0
    guard = 4 * (len(operators) + 1)
    while remaining and cycle < guard:
        cycle += 1
        busy: dict[str, int] = {}
        # Ready: every operand is a leaf, or an operator finished earlier.
        ready = []
        for index in sorted(remaining):
            node = graph.nodes[index]
            if all(
                not graph.nodes[op].is_operator()
                or (op in cycles and cycles[op] < cycle)
                for op in node.operands
            ):
                ready.append(node)
        ready.sort(key=lambda node: (slack[node.index], node.index))
        for node in ready:
            klass = resource_class(node)
            assert klass is not None
            limit = resources.get(klass)
            if limit is not None and busy.get(klass, 0) >= limit:
                continue
            busy[klass] = busy.get(klass, 0) + 1
            cycles[node.index] = cycle
            remaining.discard(node.index)
    if remaining:
        raise RuntimeError("list scheduling failed to converge (internal error)")
    latency = max(cycles.values(), default=0)
    return Schedule(cycles, latency, dict(resources))
