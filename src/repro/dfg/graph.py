"""Dataflow graphs for decomposed polynomial datapaths.

The bridge between a :class:`~repro.expr.decomposition.Decomposition` and
the hardware cost model: nodes are arithmetic resources (adders,
subtractors, array multipliers, constant multipliers), edges are
bit-vector buses.  Structural hashing guarantees that identical
sub-computations — in particular every reference to a shared building
block — map to one node, so the area model automatically charges shared
logic once, the way the paper's block-level implementation does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator


class NodeKind(Enum):
    """Arithmetic resource classes of the datapath."""

    INPUT = "input"
    CONST = "const"
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    CMUL = "cmul"  # multiplication by a compile-time constant (shift-add)


@dataclass(frozen=True)
class Node:
    """One datapath resource."""

    index: int
    kind: NodeKind
    width: int
    operands: tuple[int, ...] = ()
    value: int | None = None  # constant value (CONST) or coefficient (CMUL)
    name: str | None = None   # input variable name

    def is_operator(self) -> bool:
        return self.kind in (NodeKind.ADD, NodeKind.SUB, NodeKind.MUL, NodeKind.CMUL)


@dataclass
class DataFlowGraph:
    """A DAG of datapath nodes with *region-scoped* structural hashing.

    Sharing across regions (output expressions, block definitions) happens
    only through explicit block references — mirroring the paper's
    methodology, where each block is synthesized separately with Design
    Compiler and only the blocks the decomposition names are reused.
    Within one region, identical subtrees are shared (a synthesizer would
    fold them).  Inputs and constants are global: wires are free.
    """

    output_width: int
    nodes: list[Node] = field(default_factory=list)
    outputs: list[int] = field(default_factory=list)
    _hash_table: dict[tuple, int] = field(default_factory=dict)
    region: str = ""

    def _intern(self, kind: NodeKind, width: int, operands: tuple[int, ...],
                value: int | None = None, name: str | None = None) -> int:
        scope = "" if kind in (NodeKind.INPUT, NodeKind.CONST) else self.region
        key = (scope, kind, operands, value, name)
        found = self._hash_table.get(key)
        if found is not None:
            return found
        node = Node(len(self.nodes), kind, width, operands, value, name)
        self.nodes.append(node)
        self._hash_table[key] = node.index
        return node.index

    def _clip(self, width: int) -> int:
        """Datapath buses never exceed the output width (mod-2^m wrap)."""
        return max(1, min(width, self.output_width))

    def add_input(self, name: str, width: int) -> int:
        return self._intern(NodeKind.INPUT, self._clip(width), (), None, name)

    def add_const(self, value: int) -> int:
        width = max(abs(value).bit_length(), 1) + (1 if value < 0 else 0)
        return self._intern(NodeKind.CONST, self._clip(width), (), value)

    def add_op(self, kind: NodeKind, operands: tuple[int, ...],
               value: int | None = None) -> int:
        widths = [self.nodes[i].width for i in operands]
        if kind in (NodeKind.ADD, NodeKind.SUB):
            width = max(widths) + 1
        elif kind == NodeKind.MUL:
            width = sum(widths)
        elif kind == NodeKind.CMUL:
            assert value is not None
            width = widths[0] + max(abs(value).bit_length(), 1)
        else:
            raise ValueError(f"not an operator kind: {kind}")
        # Commutative resources: canonical operand order improves sharing.
        if kind in (NodeKind.ADD, NodeKind.MUL):
            operands = tuple(sorted(operands))
        return self._intern(kind, self._clip(width), operands, value)

    def mark_output(self, index: int) -> None:
        self.outputs.append(index)

    def operator_nodes(self) -> Iterator[Node]:
        for node in self.nodes:
            if node.is_operator():
                yield node

    def count(self, kind: NodeKind) -> int:
        return sum(1 for node in self.nodes if node.kind == kind)

    def stats(self) -> dict[str, int]:
        """Resource census, e.g. ``{"mul": 8, "add": 1, ...}``."""
        return {kind.value: self.count(kind) for kind in NodeKind}
