"""Lowering decompositions to dataflow graphs.

Rules (chosen to match the paper's operator accounting):

* an N-ary sum becomes a *balanced* binary adder tree; subtrahends
  (operands of the form ``-E``) use subtractors rather than a negation;
* an N-ary product becomes a chain of array multipliers, with a single
  constant factor lowered to a shift-add constant multiplier (CMUL);
* ``E^k`` is a chain of ``k-1`` multipliers;
* a block reference resolves to the block's (structurally shared) root
  node — this is where shared blocks become shared hardware.
"""

from __future__ import annotations

from repro.expr import Decomposition
from repro.expr.ast import Add, BlockRef, Const, Expr, Mul, Pow, Var
from repro.rings import BitVectorSignature

from .graph import DataFlowGraph, NodeKind


class DfgBuilder:
    """Builds one DFG for a whole decomposition.

    ``balanced=True`` selects the delay-oriented lowering (tree-height
    reduction [18]): products become balanced multiplier trees and powers
    use square-and-multiply — same or fewer operators, logarithmic depth.
    The default chains products and powers, which matches the paper's
    operator accounting and its area-first flavour.
    """

    def __init__(
        self,
        decomposition: Decomposition,
        signature: BitVectorSignature,
        balanced: bool = False,
    ):
        self.decomposition = decomposition
        self.signature = signature
        self.balanced = balanced
        self.graph = DataFlowGraph(output_width=signature.output_width)
        self._block_cache: dict[str, int] = {}
        self._building: set[str] = set()

    def build(self) -> DataFlowGraph:
        for index, expr in enumerate(self.decomposition.outputs):
            self.graph.region = f"output:{index}"
            self.graph.mark_output(self._lower(expr))
        return self.graph

    # ------------------------------------------------------------------

    def _lower(self, expr: Expr) -> int:
        if isinstance(expr, Const):
            return self.graph.add_const(expr.value)
        if isinstance(expr, Var):
            try:
                width = self.signature.width_of(expr.name)
            except KeyError:
                width = self.signature.output_width
            return self.graph.add_input(expr.name, width)
        if isinstance(expr, BlockRef):
            return self._lower_block(expr.name)
        if isinstance(expr, Add):
            return self._lower_sum(list(expr.operands))
        if isinstance(expr, Mul):
            return self._lower_product(list(expr.operands))
        if isinstance(expr, Pow):
            base = self._lower(expr.base)
            if self.balanced:
                return self._square_and_multiply(base, expr.exponent)
            node = base
            for _ in range(expr.exponent - 1):
                node = self.graph.add_op(NodeKind.MUL, (node, base))
            return node
        raise TypeError(f"unknown expression node {expr!r}")

    def _square_and_multiply(self, base: int, exponent: int) -> int:
        """Logarithmic-depth power; structural hashing shares sub-powers."""
        if exponent == 1:
            return base
        half = self._square_and_multiply(base, exponent // 2)
        squared = self.graph.add_op(NodeKind.MUL, (half, half))
        if exponent % 2:
            return self.graph.add_op(NodeKind.MUL, (squared, base))
        return squared

    def _lower_block(self, name: str) -> int:
        if name in self._block_cache:
            return self._block_cache[name]
        if name in self._building:
            raise ValueError(f"cyclic block reference through {name!r}")
        if name not in self.decomposition.blocks:
            raise KeyError(f"undefined block {name!r}")
        self._building.add(name)
        saved_region = self.graph.region
        self.graph.region = f"block:{name}"
        node = self._lower(self.decomposition.blocks[name])
        self.graph.region = saved_region
        self._building.discard(name)
        self._block_cache[name] = node
        return node

    @staticmethod
    def _negated(expr: Expr) -> Expr | None:
        """The operand of a ``(-1) * E`` product, or a negated constant."""
        if isinstance(expr, Const) and expr.value < 0:
            return Const(-expr.value)
        if isinstance(expr, Mul):
            consts = [op for op in expr.operands if isinstance(op, Const)]
            if len(consts) == 1 and consts[0].value < 0:
                rest = tuple(op for op in expr.operands if not isinstance(op, Const))
                flipped = Const(-consts[0].value)
                if flipped.value == 1:
                    operands = rest
                else:
                    operands = (flipped,) + rest
                if len(operands) == 1:
                    return operands[0]
                return Mul(operands)
        return None

    def _lower_sum(self, operands: list[Expr]) -> int:
        positive: list[int] = []
        negative: list[int] = []
        for op in operands:
            negated = self._negated(op)
            if negated is not None:
                negative.append(self._lower(negated))
            else:
                positive.append(self._lower(op))
        if not positive:
            # All-negative sum: materialize 0 - (sum of negatives).
            positive.append(self.graph.add_const(0))
        acc = self._balanced_tree(positive, NodeKind.ADD)
        for node in negative:
            acc = self.graph.add_op(NodeKind.SUB, (acc, node))
        return acc

    def _balanced_tree(self, nodes: list[int], kind: NodeKind) -> int:
        work = list(nodes)
        while len(work) > 1:
            nxt: list[int] = []
            for i in range(0, len(work) - 1, 2):
                nxt.append(self.graph.add_op(kind, (work[i], work[i + 1])))
            if len(work) % 2:
                nxt.append(work[-1])
            work = nxt
        return work[0]

    def _lower_product(self, operands: list[Expr]) -> int:
        constant = 1
        factors: list[int] = []
        for op in operands:
            if isinstance(op, Const):
                constant *= op.value
            else:
                factors.append(self._lower(op))
        if not factors:
            return self.graph.add_const(constant)
        if self.balanced:
            acc = self._balanced_tree(factors, NodeKind.MUL)
        else:
            acc = factors[0]
            for node in factors[1:]:
                acc = self.graph.add_op(NodeKind.MUL, (acc, node))
        if constant != 1:
            if constant == -1:
                # Sign inversions are absorbed by the consuming add/sub.
                acc = self.graph.add_op(NodeKind.CMUL, (acc,), value=-1)
            else:
                acc = self.graph.add_op(NodeKind.CMUL, (acc,), value=constant)
        return acc


def build_dfg(
    decomposition: Decomposition,
    signature: BitVectorSignature,
    balanced: bool = False,
) -> DataFlowGraph:
    """Lower a decomposition to a structurally-shared dataflow graph."""
    return DfgBuilder(decomposition, signature, balanced).build()
