"""Bit-accurate simulation of dataflow graphs.

The semantic ground truth of a synthesized datapath: every bus carries a
residue mod ``2^m`` (the output width of the signature), so simulating the
graph at integer inputs must agree with evaluating the original
polynomials mod ``2^m``.  The integration tests drive every method's DFG
against the polynomial semantics on random vectors — the hardware-level
counterpart of :meth:`repro.expr.decomposition.Decomposition.validate`.
"""

from __future__ import annotations

from typing import Mapping

from .graph import DataFlowGraph, NodeKind


def simulate(
    graph: DataFlowGraph, inputs: Mapping[str, int], modulus: int | None = None
) -> list[int]:
    """Evaluate the graph's outputs at an input assignment.

    ``modulus`` defaults to ``2^output_width``.  Every node value is
    reduced mod ``modulus`` (an ``m``-bit datapath: truncation commutes
    with ring arithmetic, so narrower intermediate buses cannot change the
    answer the cost model assumed).
    """
    modulus = modulus if modulus is not None else (1 << graph.output_width)
    values: dict[int, int] = {}
    for node in graph.nodes:
        if node.kind == NodeKind.INPUT:
            assert node.name is not None
            try:
                value = inputs[node.name]
            except KeyError:
                raise KeyError(f"no value for input {node.name!r}") from None
        elif node.kind == NodeKind.CONST:
            assert node.value is not None
            value = node.value
        elif node.kind == NodeKind.ADD:
            a, b = node.operands
            value = values[a] + values[b]
        elif node.kind == NodeKind.SUB:
            a, b = node.operands
            value = values[a] - values[b]
        elif node.kind == NodeKind.MUL:
            a, b = node.operands
            value = values[a] * values[b]
        elif node.kind == NodeKind.CMUL:
            (a,) = node.operands
            assert node.value is not None
            value = values[a] * node.value
        else:  # pragma: no cover - exhaustive over NodeKind
            raise TypeError(f"unknown node kind {node.kind}")
        values[node.index] = value % modulus
    return [values[index] for index in graph.outputs]
