"""ASAP levelization and critical-path analysis of dataflow graphs."""

from __future__ import annotations

from .graph import DataFlowGraph, Node


def asap_levels(graph: DataFlowGraph) -> dict[int, int]:
    """Topological operator level of every node (inputs/constants at 0)."""
    levels: dict[int, int] = {}
    for node in graph.nodes:  # nodes list is already topologically ordered
        if not node.operands:
            levels[node.index] = 0
        else:
            levels[node.index] = 1 + max(levels[op] for op in node.operands)
    return levels


def critical_path(
    graph: DataFlowGraph, node_delay
) -> tuple[float, list[int]]:
    """Longest weighted path through the graph.

    ``node_delay(node) -> float`` supplies per-node delays (the cost model
    provides width-aware ones).  Returns the total delay of the critical
    path to any output, and the node indices along it (source first).
    """
    arrival: dict[int, float] = {}
    predecessor: dict[int, int | None] = {}
    for node in graph.nodes:
        own = node_delay(node)
        if not node.operands:
            arrival[node.index] = own
            predecessor[node.index] = None
        else:
            best_op = max(node.operands, key=lambda i: arrival[i])
            arrival[node.index] = arrival[best_op] + own
            predecessor[node.index] = best_op
    if not graph.outputs:
        return 0.0, []
    end = max(graph.outputs, key=lambda i: arrival[i])
    path: list[int] = []
    cursor: int | None = end
    while cursor is not None:
        path.append(cursor)
        cursor = predecessor[cursor]
    path.reverse()
    return arrival[end], path
