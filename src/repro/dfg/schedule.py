"""Deprecated shim — the contents merged into :mod:`repro.dfg.scheduling`.

Import :func:`asap_levels` and :func:`critical_path` from
``repro.dfg.scheduling`` (or simply ``repro.dfg``) instead.
"""

from __future__ import annotations

import warnings

from .scheduling import asap_levels, critical_path

warnings.warn(
    "repro.dfg.schedule is deprecated; import asap_levels and "
    "critical_path from repro.dfg.scheduling (or repro.dfg) instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["asap_levels", "critical_path"]
