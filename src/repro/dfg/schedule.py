"""Deprecated shim — the contents merged into :mod:`repro.dfg.scheduling`.

Import :func:`asap_levels` and :func:`critical_path` from
``repro.dfg.scheduling`` (or simply ``repro.dfg``) instead.
"""

from __future__ import annotations

from .scheduling import asap_levels, critical_path

__all__ = ["asap_levels", "critical_path"]
