"""Delta-debugging counterexample minimization for failing systems.

Given a :class:`~repro.system.PolySystem` and a predicate ("does this
candidate still fail?"), :func:`shrink_system` greedily applies
failure-preserving reductions until a fixed point:

1. **drop polynomials** — one at a time (a minimal reproducer is usually
   a single polynomial);
2. **drop variables** — substitute 0 for a variable and remove it from
   the signature;
3. **drop terms** — delete monomials from each polynomial;
4. **tighten coefficients** — replace each coefficient with smaller
   candidates (``±1``, halves) of the same sign;
5. **lower exponents** — decrement a term's degree in one variable.

Every accepted reduction re-establishes the predicate, so the final
system provably still fails.  The search is bounded by
``max_evaluations`` predicate calls (each one typically re-runs the full
differential lineup, so the bound is the shrinker's real budget) and is
fully deterministic: reductions are tried in a fixed order, no
randomness anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.poly import Polynomial
from repro.rings import BitVectorSignature
from repro.system import PolySystem

Predicate = Callable[[PolySystem], bool]


@dataclass
class ShrinkResult:
    """The minimized system plus how much work minimization took."""

    system: PolySystem
    evaluations: int
    accepted: int       # reductions that kept the failure
    exhausted: bool     # True when the evaluation budget ran out

    @property
    def size(self) -> int:
        return sum(len(p.terms) for p in self.system.polys)


class _Budget:
    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.used = 0

    @property
    def exhausted(self) -> bool:
        return self.used >= self.limit


def _rebuild(system: PolySystem, polys: Sequence[Polynomial],
             signature: BitVectorSignature | None = None) -> PolySystem:
    return PolySystem(
        name=system.name,
        polys=tuple(polys),
        signature=signature if signature is not None else system.signature,
        description=system.description,
    )


def _drop_polynomials(system: PolySystem, check: Predicate,
                      budget: _Budget) -> PolySystem:
    index = 0
    while index < len(system.polys) and len(system.polys) > 1:
        if budget.exhausted:
            break
        candidate = _rebuild(
            system,
            system.polys[:index] + system.polys[index + 1:],
        )
        if check(candidate):
            system = candidate  # keep index: the next poly slid into place
        else:
            index += 1
    return system


def _drop_variables(system: PolySystem, check: Predicate,
                    budget: _Budget) -> PolySystem:
    for var in list(system.variables):
        if budget.exhausted or len(system.variables) <= 1:
            break
        remaining = tuple(v for v in system.variables if v != var)
        signature = BitVectorSignature(
            tuple(
                (name, width)
                for name, width in system.signature.input_widths
                if name != var
            ),
            system.signature.output_width,
        )
        polys = [p.subs({var: 0}).with_vars(remaining) for p in system.polys]
        candidate = _rebuild(system, polys, signature)
        if check(candidate):
            system = candidate
    return system


def _drop_terms(system: PolySystem, check: Predicate,
                budget: _Budget) -> PolySystem:
    for poly_index in range(len(system.polys)):
        if budget.exhausted:
            break
        poly = system.polys[poly_index]
        for exps in sorted(poly.terms):
            if budget.exhausted or len(poly.terms) <= 1:
                break
            terms = {e: c for e, c in poly.terms.items() if e != exps}
            polys = list(system.polys)
            polys[poly_index] = Polynomial(poly.vars, terms)
            candidate = _rebuild(system, polys)
            if check(candidate):
                system = candidate
                poly = system.polys[poly_index]
    return system


def _tighten_coefficients(system: PolySystem, check: Predicate,
                          budget: _Budget) -> PolySystem:
    for poly_index in range(len(system.polys)):
        poly = system.polys[poly_index]
        for exps in sorted(poly.terms):
            coeff = system.polys[poly_index].terms.get(exps)
            if coeff is None:
                continue
            sign = 1 if coeff > 0 else -1
            for smaller in (sign, coeff // 2, sign * (abs(coeff) // 2)):
                if budget.exhausted:
                    return system
                if smaller == 0 or smaller == coeff:
                    continue
                current = system.polys[poly_index]
                terms = dict(current.terms)
                terms[exps] = smaller
                polys = list(system.polys)
                polys[poly_index] = Polynomial(current.vars, terms)
                candidate = _rebuild(system, polys)
                if check(candidate):
                    system = candidate
                    break
    return system


def _lower_exponents(system: PolySystem, check: Predicate,
                     budget: _Budget) -> PolySystem:
    for poly_index in range(len(system.polys)):
        poly = system.polys[poly_index]
        for exps in sorted(poly.terms):
            for var_index in range(len(exps)):
                if budget.exhausted:
                    return system
                if exps[var_index] == 0:
                    continue
                current = system.polys[poly_index]
                coeff = current.terms.get(exps)
                if coeff is None:
                    break  # this term was already merged away
                lowered = list(exps)
                lowered[var_index] -= 1
                new_key = tuple(lowered)
                terms = {e: c for e, c in current.terms.items() if e != exps}
                terms[new_key] = terms.get(new_key, 0) + coeff
                if not terms[new_key]:
                    del terms[new_key]
                if not terms:
                    continue
                polys = list(system.polys)
                polys[poly_index] = Polynomial(current.vars, terms)
                candidate = _rebuild(system, polys)
                if check(candidate):
                    system = candidate
    return system


_PASSES = (
    _drop_polynomials,
    _drop_variables,
    _drop_terms,
    _tighten_coefficients,
    _lower_exponents,
)


def shrink_system(
    system: PolySystem,
    predicate: Predicate,
    max_evaluations: int = 300,
) -> ShrinkResult:
    """Minimize ``system`` while ``predicate`` stays True.

    ``predicate(system)`` must be True on entry (the caller hands us a
    failing system); raises ``ValueError`` otherwise, because "shrink a
    passing case" is always a caller bug.
    """
    budget = _Budget(max_evaluations)
    accepted = 0
    seen: dict[str, bool] = {}

    def check(candidate: PolySystem) -> bool:
        nonlocal accepted
        if not candidate.polys or all(p.is_zero for p in candidate.polys):
            return False
        key = _content_key(candidate)
        if key in seen:
            return seen[key]
        if budget.exhausted:
            return False
        budget.used += 1
        verdict = bool(predicate(candidate))
        seen[key] = verdict
        if verdict:
            accepted += 1
        return verdict

    if not predicate(system):
        raise ValueError("shrink_system: the input system does not fail")

    current = system
    while not budget.exhausted:
        before = _content_key(current)
        for shrink_pass in _PASSES:
            current = shrink_pass(current, check, budget)
        if _content_key(current) == before:
            break  # fixed point: no pass found a smaller failing system
    return ShrinkResult(
        system=_rebuild(current, current.polys),
        evaluations=budget.used,
        accepted=accepted,
        exhausted=budget.exhausted,
    )


def _content_key(system: PolySystem) -> str:
    from repro.serialize import dumps

    return dumps(system)
