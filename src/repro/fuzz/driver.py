"""The differential driver: N implementations, one exact oracle.

Every registered synthesis method (:mod:`repro.baselines.registry`) plus
the integrated flow under several :class:`~repro.core.SynthesisOptions`
strategies computes the *same function* by construction — so running
them all over one generated system and comparing each result against the
specification through the exact canonical-form oracle
(:func:`repro.verify.check_decompositions`) is a free Csmith-style
differential test.  On top of functional equivalence the driver
cross-checks the cost model's monotonicity claim: an area-optimizing
flow must never produce *more* estimated area than the direct
sum-of-products it starts from.

Findings come in four kinds:

* ``differential`` — a method's decomposition computes a different
  function than the specification (witness attached);
* ``crash`` — a method raised something other than the typed
  :class:`repro.errors.Unsupported` skip;
* ``cost`` — the area-objective flow lost to the direct implementation
  it is supposed to dominate;
* ``witness-error`` — the oracle itself failed to produce a witness for
  a claimed inequivalence (a bug in the oracle, the worst kind).

The driver is deterministic end to end: same seed, same case stream,
same findings, same summary digest.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Sequence

from repro.baselines import available_methods, get_method
from repro.config import RunConfig
from repro.core import SynthesisOptions, synthesize
from repro.cost import estimate_decomposition
from repro.errors import Unsupported
from repro.expr import Decomposition, expr_from_polynomial
from repro.expr.ast import Add, Const
from repro.obs import current_tracer, get_registry
from repro.system import PolySystem
from repro.testing.faults import fault_flagged
from repro.verify import EquivalenceReport, check_decompositions

from .generator import FuzzCase, generate_case

#: Relative slack for the area-monotonicity check — the estimate is a
#: float sum, so demand a real regression, not rounding noise.
_COST_TOLERANCE = 1e-6


@dataclass(frozen=True)
class Strategy:
    """One named SynthesisOptions configuration of the integrated flow."""

    label: str
    options: SynthesisOptions


#: The strategy matrix ``proposed`` runs under.  ``area`` is the shipped
#: default (which scores on the expression DAG); ``rectangle`` pins the
#: pre-DAG per-combination CSE scorer so every sweep differentially
#: tests dag-vs-rectangle; ``ops`` flips the objective; the ablations
#: force the flow down its alternate code paths.
DEFAULT_STRATEGIES: tuple[Strategy, ...] = (
    Strategy("area", SynthesisOptions()),
    Strategy("rectangle", SynthesisOptions(cse_mode="rectangle")),
    Strategy("ops", SynthesisOptions(objective="ops")),
    Strategy("no-division", SynthesisOptions(enable_division=False, objective="ops")),
    Strategy("no-canonical", SynthesisOptions(enable_canonical=False, objective="ops")),
)


@dataclass(frozen=True)
class FuzzConfig:
    """Everything one fuzz sweep is allowed to do (budget-aware)."""

    seed: int = 0
    iterations: int = 100
    time_budget: float | None = None   # wall seconds for the whole sweep
    methods: tuple[str, ...] | None = None  # None = every registered method
    strategies: tuple[Strategy, ...] = DEFAULT_STRATEGIES
    shapes: tuple[str, ...] | None = None
    check_cost: bool = True
    shrink: bool = False
    corpus_dir: str | None = None
    max_shrink_evaluations: int = 300
    run_config: RunConfig | None = None  # budget/options carrier for the flow


@dataclass(frozen=True)
class Finding:
    """One verified problem with one method on one case."""

    kind: str        # "differential" | "crash" | "cost" | "witness-error"
    case_id: str
    shape: str
    seed: int
    index: int
    method: str
    detail: str
    counterexample: dict[str, int] | None = None

    def as_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "case_id": self.case_id,
            "shape": self.shape,
            "seed": self.seed,
            "index": self.index,
            "method": self.method,
            "detail": self.detail,
            "counterexample": self.counterexample,
        }

    def __str__(self) -> str:
        witness = f", witness {self.counterexample}" if self.counterexample else ""
        return (
            f"[{self.kind}] {self.method} on case {self.case_id} "
            f"({self.shape}, seed {self.seed}#{self.index}): {self.detail}{witness}"
        )


@dataclass
class CaseResult:
    """Everything the driver learned about one case."""

    case: FuzzCase
    findings: list[Finding] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)  # Unsupported methods
    methods_run: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings


@dataclass
class FuzzReport:
    """One sweep's outcome; :meth:`summary` is deterministic per seed."""

    seed: int
    cases: int = 0
    methods_run: int = 0
    skips: int = 0
    findings: list[Finding] = field(default_factory=list)
    case_ids: list[str] = field(default_factory=list)
    truncated: bool = False        # stopped early on the time budget
    shrunk: dict[str, str] = field(default_factory=dict)  # case_id -> path
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.findings

    @property
    def digest(self) -> str:
        """Hash of the case-id stream — the determinism fingerprint."""
        return hashlib.sha256(":".join(self.case_ids).encode()).hexdigest()[:16]

    def summary(self) -> str:
        """Deterministic text summary (no wall-clock numbers)."""
        lines = [
            f"fuzz: seed {self.seed}, {self.cases} case(s), "
            f"{self.methods_run} method run(s), {self.skips} skip(s), "
            f"{len(self.findings)} finding(s), digest {self.digest}"
        ]
        if self.truncated:
            lines.append(
                "fuzz: time budget hit — sweep truncated before the "
                "requested iteration count"
            )
        for finding in self.findings:
            lines.append(f"  {finding}")
        for case_id, path in sorted(self.shrunk.items()):
            lines.append(f"  reproducer {case_id} -> {path}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Running the methods
# ----------------------------------------------------------------------

def specification(system: PolySystem) -> Decomposition:
    """The system itself as a trivial decomposition (the oracle's anchor)."""
    spec = Decomposition(method="spec")
    spec.outputs = [expr_from_polynomial(p) for p in system.polys]
    return spec


def _miscompiled(decomposition: Decomposition) -> Decomposition:
    """Deliberately corrupt a decomposition (off-by-one on output 0)."""
    corrupted = Decomposition(method=decomposition.method + "+miscompile")
    corrupted.blocks = dict(decomposition.blocks)
    corrupted.outputs = list(decomposition.outputs)
    corrupted.outputs[0] = Add((corrupted.outputs[0], Const(1)))
    return corrupted


def method_labels(config: FuzzConfig) -> tuple[str, ...]:
    """The differential lineup: baselines plus per-strategy flow runs."""
    methods = config.methods if config.methods is not None else available_methods()
    labels: list[str] = []
    for method in methods:
        if method == "proposed":
            labels.extend(f"proposed[{s.label}]" for s in config.strategies)
        else:
            labels.append(method)
    return tuple(labels)


def run_method(label: str, system: PolySystem,
               config: FuzzConfig) -> Decomposition:
    """Execute one lineup entry; honours ``miscompile`` fault injection."""
    if label.startswith("proposed[") and label.endswith("]"):
        strategy_label = label[len("proposed["):-1]
        strategy = next(
            s for s in config.strategies if s.label == strategy_label
        )
        budget = config.run_config.budget if config.run_config else None
        result = synthesize(
            list(system.polys), system.signature, strategy.options, budget=budget
        )
        decomposition = result.decomposition
    else:
        decomposition = get_method(label)(system, None)
    if fault_flagged(f"fuzz:{label}"):
        decomposition = _miscompiled(decomposition)
    return decomposition


# ----------------------------------------------------------------------
# Checking one case
# ----------------------------------------------------------------------

def check_case(case: FuzzCase, config: FuzzConfig) -> CaseResult:
    """Run the whole lineup on one case and verify every result."""
    system = case.system
    result = CaseResult(case=case)
    spec = specification(system)
    direct_area: float | None = None
    seed = case.seed

    for label in method_labels(config):
        try:
            decomposition = run_method(label, system, config)
        except Unsupported as exc:
            result.skipped.append(f"{label}: {exc.reason}")
            continue
        except Exception as exc:  # noqa: BLE001 - a crash IS the finding
            result.findings.append(Finding(
                kind="crash", case_id=case.case_id, shape=case.shape,
                seed=seed, index=case.index, method=label,
                detail=f"{type(exc).__name__}: {exc}",
            ))
            continue
        result.methods_run += 1

        try:
            report: EquivalenceReport = check_decompositions(
                decomposition, spec, system.signature, seed=seed
            )
        except Exception as exc:  # noqa: BLE001 - oracle failure is a finding
            result.findings.append(Finding(
                kind="witness-error", case_id=case.case_id, shape=case.shape,
                seed=seed, index=case.index, method=label,
                detail=f"oracle failed: {type(exc).__name__}: {exc}",
            ))
            continue
        if not report:
            result.findings.append(Finding(
                kind="differential", case_id=case.case_id, shape=case.shape,
                seed=seed, index=case.index, method=label,
                detail=f"decomposition differs from spec at "
                       f"output {report.failing_output}",
                counterexample=(
                    dict(report.counterexample) if report.counterexample else None
                ),
            ))
            continue

        if config.check_cost:
            area = estimate_decomposition(decomposition, system.signature).area
            if label == "direct":
                direct_area = area
            elif (
                label in ("proposed[area]", "proposed[rectangle]")
                and direct_area is not None
            ):
                if area > direct_area * (1.0 + _COST_TOLERANCE):
                    result.findings.append(Finding(
                        kind="cost", case_id=case.case_id, shape=case.shape,
                        seed=seed, index=case.index, method=label,
                        detail=f"area-objective flow produced MORE area than "
                               f"direct ({area:.1f} > {direct_area:.1f})",
                    ))
    return result


# ----------------------------------------------------------------------
# The sweep
# ----------------------------------------------------------------------

def run_fuzz(
    config: FuzzConfig,
    on_case: Callable[[CaseResult], None] | None = None,
) -> FuzzReport:
    """Run a whole deterministic sweep, shrinking and archiving failures.

    Respects ``config.time_budget`` (wall seconds): the sweep stops
    *between* cases when the budget is exhausted and marks the report
    ``truncated`` — never silently, the summary says what was dropped.
    """
    registry = get_registry()
    tracer = current_tracer()
    report = FuzzReport(seed=config.seed)
    start = time.monotonic()
    with tracer.span("fuzz", seed=config.seed, iterations=config.iterations):
        for index in range(config.iterations):
            if (
                config.time_budget is not None
                and time.monotonic() - start >= config.time_budget
            ):
                report.truncated = True
                break
            case = generate_case(config.seed, index, config.shapes)
            result = check_case(case, config)
            report.cases += 1
            report.case_ids.append(case.case_id)
            report.methods_run += result.methods_run
            report.skips += len(result.skipped)
            registry.counter("repro_fuzz_cases", shape=case.shape).inc()
            if result.findings:
                registry.counter("repro_fuzz_failures", shape=case.shape).inc(
                    len(result.findings)
                )
                report.findings.extend(result.findings)
                self_path = _archive_failure(case, result, config)
                if self_path is not None:
                    report.shrunk[case.case_id] = self_path
            if on_case is not None:
                on_case(result)
    report.elapsed = time.monotonic() - start
    return report


def _archive_failure(case: FuzzCase, result: CaseResult,
                     config: FuzzConfig) -> str | None:
    """Shrink a failing case (if asked) and write a corpus reproducer."""
    if config.corpus_dir is None:
        return None
    from .corpus import write_corpus_entry
    from .shrink import shrink_system

    shrunk = None
    if config.shrink:
        failing = {(f.method, f.kind) for f in result.findings}

        def still_fails(candidate: PolySystem) -> bool:
            probe = FuzzCase(
                system=candidate, shape=case.shape,
                seed=case.seed, index=case.index,
            )
            quick = replace(config, shrink=False, corpus_dir=None)
            found = {
                (f.method, f.kind) for f in check_case(probe, quick).findings
            }
            return bool(found & failing)

        shrunk = shrink_system(
            case.system, still_fails,
            max_evaluations=config.max_shrink_evaluations,
        ).system

    path = write_corpus_entry(config.corpus_dir, case, result.findings, shrunk)
    return str(path)
