"""Differential fuzzing & counterexample minimization (``repro fuzz``).

The active bug hunter for the repository's central invariant: every
synthesis method — and the integrated flow under every strategy — must
compute exactly the function its input system specifies.  Pieces:

* :mod:`repro.fuzz.generator` — seeded adversarial system generation;
* :mod:`repro.fuzz.driver` — the differential sweep over the whole
  method registry, verified by the canonical-form oracle;
* :mod:`repro.fuzz.shrink` — delta-debugging minimization of failures;
* :mod:`repro.fuzz.corpus` — reproducer files and the regression-corpus
  replay contract.

See ``docs/VERIFY.md`` for the workflow (found → shrunk → fixed →
locked) and the CLI surface.
"""

from .corpus import (
    corpus_entry,
    entry_case,
    iter_corpus,
    load_corpus_entry,
    replay_entry,
    verify_entry,
    write_corpus_entry,
)
from .driver import (
    DEFAULT_STRATEGIES,
    CaseResult,
    Finding,
    FuzzConfig,
    FuzzReport,
    Strategy,
    check_case,
    method_labels,
    run_fuzz,
    run_method,
    specification,
)
from .generator import SHAPES, FuzzCase, generate_case, generate_cases
from .shrink import ShrinkResult, shrink_system

__all__ = [
    "CaseResult",
    "DEFAULT_STRATEGIES",
    "Finding",
    "FuzzCase",
    "FuzzConfig",
    "FuzzReport",
    "SHAPES",
    "ShrinkResult",
    "Strategy",
    "check_case",
    "corpus_entry",
    "entry_case",
    "generate_case",
    "generate_cases",
    "iter_corpus",
    "load_corpus_entry",
    "method_labels",
    "replay_entry",
    "run_fuzz",
    "run_method",
    "shrink_system",
    "specification",
    "verify_entry",
    "write_corpus_entry",
]
