"""The regression corpus: every bug the fuzzer finds becomes a test.

A corpus entry is one JSON file holding the failing system (and its
shrunk reproducer when the shrinker ran), the findings that flagged it,
and an ``expect`` verdict:

* ``"pass"`` — the bug has been fixed; replay must produce **zero**
  findings (the tier-1 regression contract — see
  ``tests/fuzz/test_corpus.py``);
* ``"unsupported"`` — the input class is out of scope; replay must see
  the methods named in ``findings`` skip with the typed
  :class:`repro.errors.Unsupported` rather than fail or return garbage.

Fresh entries written by the driver carry ``expect: "fail"`` (the bug is
live); committing one to ``tests/corpus/`` means flipping it to
``"pass"`` after the fix — the workflow is *found → shrunk → fixed →
locked*.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

from repro.ioutil import atomic_write_text
from repro.serialize import system_from_dict, system_to_dict
from repro.system import PolySystem

from .driver import CaseResult, Finding, FuzzConfig, check_case
from .generator import FuzzCase

CORPUS_KIND = "fuzz-corpus"


def corpus_entry(
    case: FuzzCase,
    findings: Sequence[Finding],
    shrunk: PolySystem | None = None,
    expect: str = "fail",
) -> dict[str, Any]:
    """Build the JSON-able payload for one corpus file."""
    return {
        "kind": CORPUS_KIND,
        "id": case.case_id,
        "shape": case.shape,
        "seed": case.seed,
        "index": case.index,
        "expect": expect,
        "system": system_to_dict(case.system),
        "shrunk": system_to_dict(shrunk) if shrunk is not None else None,
        "findings": [f.as_dict() for f in findings],
    }


def write_corpus_entry(
    directory: str | Path,
    case: FuzzCase,
    findings: Sequence[Finding],
    shrunk: PolySystem | None = None,
    expect: str = "fail",
) -> Path:
    """Write one reproducer file (named by case id) and return its path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{case.case_id}.json"
    atomic_write_text(
        path,
        json.dumps(
            corpus_entry(case, findings, shrunk, expect),
            indent=2, sort_keys=True,
        )
        + "\n",
    )
    return path


def load_corpus_entry(path: str | Path) -> dict[str, Any]:
    """Load and validate one corpus file."""
    data = json.loads(Path(path).read_text())
    if data.get("kind") != CORPUS_KIND:
        raise ValueError(f"{path}: not a fuzz-corpus payload: {data.get('kind')!r}")
    return data


def iter_corpus(directory: str | Path) -> Iterator[Path]:
    """All corpus files under a directory, sorted for determinism."""
    directory = Path(directory)
    if not directory.is_dir():
        return
    yield from sorted(directory.glob("*.json"))


def entry_case(entry: dict[str, Any], shrunk: bool = True) -> FuzzCase:
    """Rebuild the :class:`FuzzCase` an entry archived.

    Prefers the shrunk reproducer when present (it is the minimal
    witness); ``shrunk=False`` forces the original system.
    """
    payload = entry.get("shrunk") if shrunk else None
    system = system_from_dict(payload if payload else entry["system"])
    return FuzzCase(
        system=system,
        shape=str(entry.get("shape", "corpus")),
        seed=int(entry.get("seed", 0)),
        index=int(entry.get("index", 0)),
    )


def replay_entry(
    entry: dict[str, Any],
    config: FuzzConfig | None = None,
    shrunk: bool = True,
) -> CaseResult:
    """Re-run the full differential lineup over an archived system."""
    config = config if config is not None else FuzzConfig()
    return check_case(entry_case(entry, shrunk=shrunk), config)


def verify_entry(
    entry: dict[str, Any],
    config: FuzzConfig | None = None,
) -> list[str]:
    """Check an entry against its ``expect`` verdict; returns violations.

    An empty list means the entry holds.  Both the original and the
    shrunk system are replayed — a fix that only handles the minimal
    reproducer is no fix.
    """
    expect = str(entry.get("expect", "fail"))
    problems: list[str] = []
    variants: Iterable[tuple[str, bool]] = (
        [("shrunk", True), ("original", False)]
        if entry.get("shrunk")
        else [("original", False)]
    )
    for label, use_shrunk in variants:
        result = replay_entry(entry, config, shrunk=use_shrunk)
        if expect == "pass":
            if result.findings:
                problems.extend(
                    f"{label}: expected pass but found: {finding}"
                    for finding in result.findings
                )
        elif expect == "unsupported":
            flagged = {
                str(f.get("method"))
                for f in entry.get("findings", [])
                if isinstance(f, dict)
            }
            skipped = {s.split(":", 1)[0] for s in result.skipped}
            missing = flagged - skipped
            if missing:
                problems.append(
                    f"{label}: expected Unsupported skip from "
                    f"{sorted(missing)}, got skips {sorted(skipped)}"
                )
            if result.findings:
                problems.extend(
                    f"{label}: expected clean skip but found: {finding}"
                    for finding in result.findings
                )
        elif expect == "fail":
            if not result.findings:
                problems.append(
                    f"{label}: expected the archived failure to reproduce, "
                    f"but the lineup passed"
                )
        else:
            problems.append(f"unknown expect verdict {expect!r}")
    return problems
