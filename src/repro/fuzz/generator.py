"""Seeded structured case generation for the differential fuzzer.

Extends :mod:`repro.suite.random_systems` with the *adversarial* shapes
the paper's transformations are most likely to get wrong:

* ``wraparound`` — coefficients hugging ``2^m`` (and ``2^(m-1)``), where
  modular reduction and canonical coefficient bounds interact;
* ``vanishing-multiple`` — polynomials perturbed by multiples of the
  vanishing ideal of the signature, so integer-distinct inputs compute
  identical functions (the canonical-form transformations must agree);
* ``single-variable`` — degenerate univariate and constant systems,
  including repeated outputs and the zero-adjacent corner;
* ``mixed-width`` — non-uniform input widths and an output width that
  matches none of them;
* ``gcd-ladder`` — coefficient GCD ladders (``g``, ``2g``, ``4g``, ...)
  across terms and polynomials, tuned to stress CCE, Cube_Ex, and
  algebraic division;
* plus the suite's ``unstructured``, ``planted-kernel``, and
  ``shifted-copy`` shapes.

Everything is driven by :class:`random.Random` instances derived from
``(master seed, case index)`` — a given seed always produces the same
case stream, so every fuzz finding is replayable from its seed alone.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

from repro.poly import Polynomial
from repro.rings import BitVectorSignature
from repro.rings.vanishing import vanishing_generators
from repro.suite.random_systems import (
    planted_kernel_system,
    random_polynomial,
    random_system,
    shifted_copy_system,
)
from repro.system import PolySystem


@dataclass(frozen=True)
class FuzzCase:
    """One generated system plus the provenance needed to regenerate it."""

    system: PolySystem
    shape: str
    seed: int
    index: int

    @property
    def case_id(self) -> str:
        """Content hash of the system (stable across runs and processes)."""
        from repro.serialize import dumps

        return hashlib.sha256(dumps(self.system).encode()).hexdigest()[:12]

    def __str__(self) -> str:
        return f"case {self.case_id} [{self.shape}] (seed {self.seed}#{self.index})"


def _case_rng(seed: int, index: int) -> random.Random:
    """A per-case RNG decorrelated across indices but fully determined."""
    return random.Random(f"repro-fuzz:{seed}:{index}")


# ----------------------------------------------------------------------
# Adversarial shapes
# ----------------------------------------------------------------------

def wraparound_system(rng: random.Random) -> PolySystem:
    """Coefficients at and around ``2^m`` — the modular wrap boundary."""
    width = rng.choice((4, 6, 8, 16))
    modulus = 1 << width
    variables = ("x", "y")[: rng.choice((1, 2))]
    edge = (
        modulus - 1, modulus, modulus + 1,
        modulus // 2, modulus // 2 - 1, -(modulus - 1), -modulus,
    )
    polys = []
    for _ in range(rng.randint(1, 3)):
        terms: dict[tuple[int, ...], int] = {}
        for _ in range(rng.randint(1, 4)):
            exps = tuple(rng.randint(0, 3) for _ in variables)
            coeff = rng.choice(edge)
            terms[exps] = terms.get(exps, 0) + coeff
        poly = Polynomial(variables, {e: c for e, c in terms.items() if c})
        if poly.is_zero:
            poly = poly + (modulus - 1)
        polys.append(poly)
    return PolySystem(
        name="fuzz-wraparound",
        polys=tuple(polys),
        signature=BitVectorSignature.uniform(variables, width),
        description="coefficients near the 2^m wrap boundary",
    )


def vanishing_multiple_system(rng: random.Random) -> PolySystem:
    """Bases perturbed by vanishing-ideal multiples (same function, new poly).

    Over small widths the vanishing generators have low degree, so the
    perturbed polynomials stay tractable while being integer-distinct
    from their bases.
    """
    width = rng.choice((2, 3))
    variables = ("x", "y")
    signature = BitVectorSignature.uniform(variables, width)
    generators = list(vanishing_generators(signature, max_total_degree=width + 2))
    polys = []
    for _ in range(rng.randint(1, 2)):
        base = random_polynomial(rng, variables, max_terms=3, max_degree=2, max_coeff=8)
        if generators and rng.random() < 0.8:
            vanishing = rng.choice(generators)
            multiplier = rng.randint(1, 3)
            base = base + vanishing.with_vars(variables).scale(multiplier)
        polys.append(base)
    return PolySystem(
        name="fuzz-vanishing",
        polys=tuple(polys),
        signature=signature,
        description="bases plus vanishing-ideal multiples",
    )


def single_variable_system(rng: random.Random) -> PolySystem:
    """Degenerate univariate systems: constants, monomial ladders, repeats."""
    width = rng.choice((4, 8, 16))
    variables = ("x",)
    kind = rng.choice(("constant", "monomial-ladder", "dense", "repeated"))
    if kind == "constant":
        polys = [Polynomial.constant(rng.randint(0, (1 << width) - 1), variables)
                 for _ in range(rng.randint(1, 2))]
    elif kind == "monomial-ladder":
        coeff = rng.randint(1, 9)
        polys = [
            Polynomial(variables, {(k,): coeff * (1 << k)})
            for k in range(1, rng.randint(2, 5))
        ]
    elif kind == "dense":
        degree = rng.randint(1, 5)
        polys = [Polynomial(
            variables,
            {(k,): rng.randint(-9, 9) or 1 for k in range(degree + 1)},
        )]
    else:  # repeated outputs — sharing detection must not merge wrongly
        base = random_polynomial(rng, variables, max_terms=3, max_degree=3)
        polys = [base, base, base + 1]
    return PolySystem(
        name="fuzz-univariate",
        polys=tuple(polys),
        signature=BitVectorSignature.uniform(variables, width),
        description=f"degenerate single-variable system ({kind})",
    )


def mixed_width_system(rng: random.Random) -> PolySystem:
    """Inputs of different widths; output width matching none of them."""
    variables = ("x", "y", "z")[: rng.choice((2, 3))]
    widths = tuple(rng.choice((2, 4, 8, 12)) for _ in variables)
    output_width = rng.choice((6, 10, 16))
    signature = BitVectorSignature(
        tuple(zip(variables, widths)), output_width
    )
    polys = tuple(
        random_polynomial(rng, variables, max_terms=4, max_degree=3, max_coeff=12)
        for _ in range(rng.randint(1, 3))
    )
    return PolySystem(
        name="fuzz-mixed-width",
        polys=polys,
        signature=signature,
        description="non-uniform input widths, mismatched output width",
    )


def gcd_ladder_system(rng: random.Random) -> PolySystem:
    """Coefficient GCD ladders across terms and polynomials.

    Each polynomial is ``sum_i g * 2^i * m_i`` for a shared base ``g`` —
    the shape CCE's coefficient grouping, cube extraction, and algebraic
    division all chase, with every rung sharing a non-trivial GCD with
    its neighbours.
    """
    width = rng.choice((8, 16))
    variables = ("x", "y")
    g = rng.choice((3, 5, 6, 7, 12))
    polys = []
    for p in range(rng.randint(2, 4)):
        terms: dict[tuple[int, ...], int] = {}
        rungs = rng.randint(2, 4)
        for i in range(rungs):
            exps = (rng.randint(0, 2), rng.randint(0, 2))
            coeff = g * (1 << i) * rng.choice((1, -1))
            terms[exps] = terms.get(exps, 0) + coeff
        poly = Polynomial(variables, {e: c for e, c in terms.items() if c})
        if poly.is_zero:
            poly = poly + g
        polys.append(poly * (1 << p) if rng.random() < 0.5 else poly)
    return PolySystem(
        name="fuzz-gcd-ladder",
        polys=tuple(polys),
        signature=BitVectorSignature.uniform(variables, width),
        description=f"coefficient GCD ladders over g={g}",
    )


# ----------------------------------------------------------------------
# The shape table and the case stream
# ----------------------------------------------------------------------

def _unstructured(rng: random.Random) -> PolySystem:
    variables = ("x", "y", "z")[: rng.choice((1, 2, 3))]
    return random_system(
        rng.randrange(1 << 30),
        num_polys=rng.randint(1, 3),
        variables=variables,
        width=rng.choice((4, 8, 16)),
        max_terms=4,
        max_degree=3,
        max_coeff=16,
    )


def _planted(rng: random.Random) -> PolySystem:
    system, _ = planted_kernel_system(
        rng.randrange(1 << 30), num_polys=rng.randint(2, 3)
    )
    return system


def _shifted(rng: random.Random) -> PolySystem:
    return shifted_copy_system(rng.randrange(1 << 30), num_polys=rng.randint(2, 3))


#: Shape name -> generator.  Order fixes the round-robin schedule.
SHAPES: dict[str, Callable[[random.Random], PolySystem]] = {
    "unstructured": _unstructured,
    "wraparound": wraparound_system,
    "vanishing-multiple": vanishing_multiple_system,
    "single-variable": single_variable_system,
    "mixed-width": mixed_width_system,
    "gcd-ladder": gcd_ladder_system,
    "planted-kernel": _planted,
    "shifted-copy": _shifted,
}


def generate_case(seed: int, index: int,
                  shapes: Sequence[str] | None = None) -> FuzzCase:
    """The ``index``-th case of the stream for ``seed`` (pure function)."""
    names = tuple(shapes) if shapes else tuple(SHAPES)
    for name in names:
        if name not in SHAPES:
            raise KeyError(
                f"unknown fuzz shape {name!r}; known: {', '.join(SHAPES)}"
            )
    shape = names[index % len(names)]
    rng = _case_rng(seed, index)
    system = SHAPES[shape](rng)
    return FuzzCase(system=system, shape=shape, seed=seed, index=index)


def generate_cases(seed: int, iterations: int,
                   shapes: Sequence[str] | None = None) -> Iterator[FuzzCase]:
    """Round-robin over the shapes, deterministically seeded per case."""
    for index in range(iterations):
        yield generate_case(seed, index, shapes)
