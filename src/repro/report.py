"""Human-readable reports of method comparisons.

Packages :func:`repro.api.compare_methods` results as aligned text or
Markdown — what a user pastes into an issue or a paper draft.  Used by
the CLI's ``compare --markdown`` flag and directly importable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.api import MethodOutcome, improvement
from repro.system import PolySystem

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine import BatchReport

_METHOD_ORDER = ("direct", "horner", "factor+cse", "library-match", "proposed")


def comparison_rows(
    outcomes: dict[str, MethodOutcome]
) -> list[tuple[str, int, int, float, float]]:
    """(method, MULT, ADD, area, delay) rows in canonical method order."""
    rows = []
    for method in _METHOD_ORDER:
        if method not in outcomes:
            continue
        outcome = outcomes[method]
        rows.append(
            (
                method,
                outcome.op_count.mul,
                outcome.op_count.add,
                outcome.hardware.area,
                outcome.hardware.delay,
            )
        )
    for method, outcome in outcomes.items():
        if method not in _METHOD_ORDER:
            rows.append(
                (
                    method,
                    outcome.op_count.mul,
                    outcome.op_count.add,
                    outcome.hardware.area,
                    outcome.hardware.delay,
                )
            )
    return rows


def text_report(system: PolySystem, outcomes: dict[str, MethodOutcome]) -> str:
    """Fixed-width table plus the headline improvement line."""
    lines = [
        f"system: {system}",
        f"{'method':14s} {'MULT':>5s} {'ADD':>5s} {'area/GE':>10s} {'delay':>7s}",
    ]
    for method, mul, add, area, delay in comparison_rows(outcomes):
        lines.append(f"{method:14s} {mul:5d} {add:5d} {area:10.0f} {delay:7.0f}")
    lines.append(_headline(outcomes))
    return "\n".join(lines)


def markdown_report(system: PolySystem, outcomes: dict[str, MethodOutcome]) -> str:
    """GitHub-flavoured Markdown table."""
    lines = [
        f"### {system.name} ({system.characteristics()}, "
        f"{system.num_polys} polynomial{'s' if system.num_polys != 1 else ''})",
        "",
        "| method | MULT | ADD | area (GE) | delay (gates) |",
        "|---|---:|---:|---:|---:|",
    ]
    for method, mul, add, area, delay in comparison_rows(outcomes):
        lines.append(f"| {method} | {mul} | {add} | {area:.0f} | {delay:.0f} |")
    lines.append("")
    lines.append(_headline(outcomes))
    return "\n".join(lines)


def batch_text_report(report: "BatchReport") -> str:
    """Fixed-width summary of a batch engine run.

    One row per job (cache state, operator counts, synthesis seconds),
    then the per-phase seconds aggregated across the batch — the
    ``python -m repro batch`` output.
    """
    stats = report.stats
    pool = report.pool
    lines = [
        f"batch: {len(report.results)} job(s), workers={report.workers}, "
        f"{report.seconds:.2f} s wall",
        f"cache: {report.cache_hits} hit(s) / {report.cache_misses} miss(es) "
        f"({report.hit_rate * 100.0:.0f}% hit rate)",
        f"cache tiers: {stats.memory_hits} memory / {stats.disk_hits} disk "
        f"hit(s), {stats.evictions} eviction(s), "
        f"{stats.disk_reads} disk read(s) / {stats.disk_writes} write(s)",
    ]
    combos = sum(r.timings.counter("combinations") for r in report.results)
    memo_hits = sum(r.timings.counter("memo_hits") for r in report.results)
    pruned = sum(r.timings.counter("pruned") for r in report.results)
    if combos or memo_hits or pruned:
        lookups = combos + memo_hits
        memo_rate = memo_hits / lookups * 100.0 if lookups else 0.0
        lines.append(
            f"search: {combos} combination(s) scored, {memo_hits} memo "
            f"hit(s) ({memo_rate:.0f}% memo hit rate), {pruned} pruned"
        )
    if pool.jobs_executed:
        lines.append(
            f"pool: mode={pool.mode}, {pool.jobs_executed} job(s) executed, "
            f"utilization {pool.utilization * 100.0:.0f}%, "
            f"queue wait {pool.queue_wait_seconds:.3f} s "
            f"(max {pool.max_queue_wait_seconds:.3f} s), "
            f"{pool.fallbacks} fallback(s)"
        )
        if pool.retries or pool.timeouts or pool.degraded or pool.cancelled:
            fault_line = (
                f"faults: {pool.retries} retried, {pool.timeouts} timed out, "
                f"{pool.degraded} degraded rerun(s)"
            )
            if pool.cancelled:
                fault_line += f", {pool.cancelled} cancelled by drain"
            lines.append(fault_line)
    if pool.fallback_reason:
        lines.append(f"pool fallback reason: {pool.fallback_reason}")
    lines += [
        "",
        f"{'job':16s} {'method':12s} {'cache':6s} "
        f"{'MULT':>5s} {'ADD':>5s} {'synth s':>8s} {'combos':>6s} "
        f"{'tries':>5s} flags",
    ]
    for result in report.results:
        if result.ok:
            assert result.op_count is not None
            cells = (
                f"{result.op_count.mul:5d} {result.op_count.add:5d} "
                f"{result.seconds:8.3f} "
                f"{result.timings.counter('combinations'):6d}"
            )
        else:
            cells = f"{'ERROR':>5s} {'':>5s} {'':>8s} {'':>6s}"
        flags = ",".join(
            flag
            for flag, present in (
                ("timeout", result.timed_out),
                ("degraded", result.degraded),
                ("error", not result.ok),
            )
            if present
        )
        lines.append(
            f"{result.name:16s} {result.method:12s} "
            f"{'hit' if result.cache_hit else 'miss':6s} {cells} "
            f"{result.attempts:5d} {flags}"
        )
        if not result.ok:
            lines.append(f"  error: {result.error}")
        for degradation in result.degradations:
            lines.append(f"  degraded: {degradation}")
    phases = report.phase_seconds()
    if phases:
        lines.append("")
        lines.append("phase seconds (aggregated over the batch):")
        total = sum(phases.values())
        for phase, seconds in sorted(
            phases.items(), key=lambda item: -item[1]
        ):
            share = seconds / total * 100.0 if total else 0.0
            lines.append(f"  {phase:14s} {seconds:8.3f}  {share:5.1f}%")
    return "\n".join(lines)


def _headline(outcomes: dict[str, MethodOutcome]) -> str:
    if "proposed" in outcomes and "factor+cse" in outcomes:
        base = outcomes["factor+cse"].hardware
        prop = outcomes["proposed"].hardware
        return (
            f"area improvement over factorization+CSE: "
            f"{improvement(base.area, prop.area):.1f}% "
            f"(delay {improvement(base.delay, prop.delay):+.1f}%)"
        )
    return ""
