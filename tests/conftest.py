"""Shared test fixtures and hypothesis strategies.

The strategies build random sparse integer polynomials in up to three
variables; `to_sympy`/`from_sympy` bridge to SymPy, which serves as a
*differential oracle* for arithmetic, GCD, and factorization tests (the
core library itself never imports SymPy).
"""

from __future__ import annotations

import hypothesis.strategies as st

from repro.poly import Polynomial

VARS = ("x", "y", "z")


@st.composite
def monomials(draw, nvars: int = 3, max_exp: int = 4):
    """Random exponent tuple."""
    return tuple(
        draw(st.integers(min_value=0, max_value=max_exp)) for _ in range(nvars)
    )


@st.composite
def polynomials(
    draw,
    nvars: int = 3,
    max_terms: int = 6,
    max_exp: int = 4,
    max_coeff: int = 50,
    allow_zero: bool = True,
):
    """Random sparse polynomial over ``VARS[:nvars]``."""
    min_terms = 0 if allow_zero else 1
    n_terms = draw(st.integers(min_value=min_terms, max_value=max_terms))
    terms = {}
    for _ in range(n_terms):
        exps = draw(monomials(nvars=nvars, max_exp=max_exp))
        coeff = draw(
            st.integers(min_value=-max_coeff, max_value=max_coeff).filter(bool)
        )
        terms[exps] = terms.get(exps, 0) + coeff
    poly = Polynomial(VARS[:nvars], {e: c for e, c in terms.items() if c})
    if not allow_zero and poly.is_zero:
        poly = poly + 1
    return poly


@st.composite
def small_polynomials(draw, nvars: int = 2):
    """Smaller polynomials for the expensive algorithms (GCD, factoring)."""
    return draw(polynomials(nvars=nvars, max_terms=4, max_exp=3, max_coeff=12))


def to_sympy(poly: Polynomial):
    """Convert a repro Polynomial to a SymPy expression."""
    import sympy

    symbols = {v: sympy.Symbol(v) for v in poly.vars}
    expr = sympy.Integer(0)
    for exps, coeff in poly.terms.items():
        term = sympy.Integer(coeff)
        for var, e in zip(poly.vars, exps):
            if e:
                term *= symbols[var] ** e
        expr += term
    return expr


def from_sympy(expr, variables) -> Polynomial:
    """Convert a SymPy expression in the given variables back to a Polynomial."""
    import sympy

    symbols = [sympy.Symbol(v) for v in variables]
    poly = sympy.Poly(sympy.expand(expr), *symbols, domain="ZZ")
    terms = {tuple(int(e) for e in mono): int(c) for mono, c in poly.terms()}
    return Polynomial(tuple(variables), terms)
