"""Lowering DAG sharing to block lists: exactness, determinism, chains."""

from hypothesis import given, settings

from repro.cse import expand_blocks
from repro.dag import ExpressionDAG, lower_to_blocks
from repro.poly import parse_polynomial

from tests.conftest import polynomials


def roundtrip_exact(polys, result):
    for original, rewritten in zip(polys, result.polys):
        assert expand_blocks(rewritten, result.blocks).trim() == original.trim()


class TestLowering:
    def test_shared_product_becomes_a_block(self):
        polys = [
            parse_polynomial("x*y*z + w"),
            parse_polynomial("2*x*y*z - 1"),
        ]
        result = lower_to_blocks(polys)
        assert len(result.blocks) == 1
        (definition,) = result.blocks.values()
        assert definition == parse_polynomial("x*y*z").trim()
        roundtrip_exact(polys, result)

    def test_nested_sharing_lowers_to_a_chain(self):
        polys = [
            parse_polynomial("w*x*y*z + 1"),
            parse_polynomial("w*x*y*z + 2"),
            parse_polynomial("x*y*z + 3"),
            parse_polynomial("x*y*z + 4"),
        ]
        result = lower_to_blocks(polys)
        # The big product is defined THROUGH the small one.
        chained = [
            d for d in result.blocks.values()
            if any(v.startswith("_d") for v in d.used_vars())
        ]
        assert chained
        roundtrip_exact(polys, result)

    def test_no_sharing_no_blocks(self):
        polys = [parse_polynomial("x + y"), parse_polynomial("x - y")]
        result = lower_to_blocks(polys)
        assert result.blocks == {}
        assert result.rounds == 0

    def test_repeated_powers_inside_one_term(self):
        polys = [
            parse_polynomial("x^2*y^2 + x*y"),
            parse_polynomial("x*y + 7"),
        ]
        result = lower_to_blocks(polys)
        roundtrip_exact(polys, result)

    def test_prefix_and_start_index(self):
        polys = [parse_polynomial("x*y + 1"), parse_polynomial("x*y + 2")]
        result = lower_to_blocks(polys, prefix="_blk", start_index=9)
        assert list(result.blocks) == ["_blk10"]

    def test_deterministic_across_interning_history(self):
        polys = [
            parse_polynomial("a*b + x*y*z"),
            parse_polynomial("a*b - x*y*z"),
        ]
        cold = lower_to_blocks(polys)
        warmed = ExpressionDAG()
        # Pre-warm the DAG in a scrambled order; block naming must not
        # follow node ids.
        warmed.intern(parse_polynomial("x*y*z"))
        warmed.intern(parse_polynomial("a*b"))
        warm = lower_to_blocks(polys, dag=warmed)
        assert cold.blocks == warm.blocks
        assert cold.polys == warm.polys

    @settings(max_examples=40, deadline=None)
    @given(p=polynomials(allow_zero=False), q=polynomials(allow_zero=False))
    def test_roundtrip_is_exact(self, p, q):
        polys = [p, q, p * q]
        result = lower_to_blocks(polys)
        assert len(result.polys) == len(polys)
        roundtrip_exact(polys, result)
