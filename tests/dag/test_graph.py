"""The expression DAG: canonical interning, refcounts, scoring."""

from hypothesis import given, settings

from repro.dag import (
    DagStats,
    ExpressionDAG,
    default_dag,
    intern,
    shared_subexpressions,
)
from repro.poly import Polynomial, parse_polynomial

from tests.conftest import polynomials

X = parse_polynomial("x")


class TestCanonicalInterning:
    def test_structurally_equal_polys_share_a_node(self):
        dag = ExpressionDAG()
        p1 = parse_polynomial("3*x*y + z^2")
        p2 = parse_polynomial("z^2 + 3*y*x")
        assert dag.intern(p1) == dag.intern(p2)

    def test_variable_order_and_padding_do_not_matter(self):
        dag = ExpressionDAG()
        a = Polynomial(("x", "y"), {(1, 2): 5})
        b = Polynomial(("y", "x", "z"), {(2, 1, 0): 5})
        assert dag.intern(a) == dag.intern(b)

    def test_distinct_polys_get_distinct_nodes(self):
        dag = ExpressionDAG()
        assert dag.intern(parse_polynomial("x + y")) != dag.intern(
            parse_polynomial("x - y")
        )

    @settings(max_examples=60, deadline=None)
    @given(p=polynomials(allow_zero=False))
    def test_interning_is_canonical(self, p):
        """Structural equality implies node-id equality — the hash-consing
        invariant: any respelling (permuted vars, padded columns, re-built
        term dict) of the same polynomial interns to the same sum node."""
        dag = ExpressionDAG()
        first = dag.intern(p)
        # A maximally different spelling: reversed variable order, an
        # extra dead column, a freshly rebuilt term dict.
        order = tuple(reversed(p.vars)) + ("dead",)
        respelled = Polynomial(
            order,
            {
                tuple(exps[p.vars.index(v)] if v in p.vars else 0 for v in order): c
                for exps, c in p.terms.items()
            },
        )
        assert respelled.trim() == p.trim()
        assert dag.intern(respelled) == first
        # And interning is idempotent on the store size.
        size = dag.size()
        dag.intern(p)
        assert dag.size() == size

    def test_mono_interning_drops_zero_exponents(self):
        dag = ExpressionDAG()
        assert dag.intern_mono([("x", 2), ("y", 0)]) == dag.intern_mono(
            [("x", 2)]
        )


class TestStats:
    def test_counts_and_hits(self):
        dag = ExpressionDAG()
        p = parse_polynomial("x*y + z")
        dag.intern(p)
        stats = dag.stats()
        assert isinstance(stats, DagStats)
        assert stats.polys == 1
        assert stats.intern_hits == 0
        assert stats.nodes == dag.size() > 0
        dag.intern(parse_polynomial("x*y + z"))
        assert dag.stats().intern_hits >= 1
        assert dag.stats().polys == 2

    def test_shared_nodes_count_cross_polynomial_products(self):
        dag = ExpressionDAG()
        dag.intern(parse_polynomial("x*y + z"))
        dag.intern(parse_polynomial("x*y + w"))
        assert dag.stats().shared_nodes == 1

    def test_as_dict_round_trip(self):
        stats = DagStats(nodes=4, polys=2, intern_hits=1, shared_nodes=0)
        assert stats.as_dict() == {
            "nodes": 4,
            "polys": 2,
            "intern_hits": 1,
            "shared_nodes": 0,
        }

    def test_clear_resets_everything(self):
        dag = ExpressionDAG()
        dag.intern(parse_polynomial("x*y + z"))
        dag.clear()
        assert dag.size() == 0
        assert dag.stats() == DagStats(0, 0, 0, 0)


class TestSharedSubexpressions:
    def test_shared_product_is_found(self):
        dag = ExpressionDAG()
        roots = [
            dag.intern(parse_polynomial("x*y*z + w")),
            dag.intern(parse_polynomial("x*y*z - 2")),
        ]
        shared = dag.shared_subexpressions(roots)
        assert len(shared) == 1
        assert shared[0].pairs == (("x", 1), ("y", 1), ("z", 1))
        assert shared[0].refs == 2
        assert shared[0].literals == 3

    def test_roots_restrict_the_refcounts(self):
        dag = ExpressionDAG()
        a = dag.intern(parse_polynomial("x*y + 1"))
        b = dag.intern(parse_polynomial("x*y + 2"))
        dag.intern(parse_polynomial("x*y + 3"))
        only_ab = dag.shared_subexpressions([a, b])
        assert only_ab[0].refs == 2
        assert dag.shared_subexpressions()[0].refs == 3

    def test_ordering_is_canonical_not_id_based(self):
        dag = ExpressionDAG()
        roots = [
            dag.intern(parse_polynomial("a*b + x*y*z")),
            dag.intern(parse_polynomial("a*b + x*y*z + 1")),
        ]
        shared = dag.shared_subexpressions(roots)
        assert [s.literals for s in shared] == [3, 2]  # largest first


class TestCombinationCost:
    def test_shared_product_paid_once(self):
        dag = ExpressionDAG()
        roots = [
            dag.intern(parse_polynomial("x*y + 1")),
            dag.intern(parse_polynomial("x*y + z")),
        ]
        # One shared product (1 mul), one add per row.
        assert dag.combination_cost(roots, mul_weight=20, add_weight=1) == 22

    def test_duplicate_rows_paid_once(self):
        dag = ExpressionDAG()
        p = parse_polynomial("x*y + z")
        roots = [dag.intern(p), dag.intern(p)]
        assert dag.combination_cost(roots) == dag.combination_cost(roots[:1])

    def test_coefficient_multiplies_counted_per_row(self):
        dag = ExpressionDAG()
        root = dag.intern(parse_polynomial("3*x + y"))
        assert dag.combination_cost([root], cmul_weight=2, add_weight=1) == 3


class TestModuleLevelHelpers:
    def test_default_dag_is_shared_and_clearable(self):
        default_dag().clear()
        nid = intern(parse_polynomial("x*y + 5"))
        assert intern(parse_polynomial("x*y + 5")) == nid
        assert default_dag().size() > 0
        shared = shared_subexpressions(
            [parse_polynomial("x*y + 1"), parse_polynomial("x*y - 1")]
        )
        assert shared and shared[0].pairs == (("x", 1), ("y", 1))
        default_dag().clear()
        assert default_dag().size() == 0

    def test_explicit_dag_keeps_default_untouched(self):
        default_dag().clear()
        own = ExpressionDAG()
        intern(X, dag=own)
        assert own.size() > 0
        assert default_dag().size() == 0
