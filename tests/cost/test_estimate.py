"""Tests for system-level area/delay estimation."""

from repro.cost import estimate_decomposition
from repro.expr import Decomposition, make_add, make_mul, make_pow
from repro.expr.ast import BlockRef
from repro.rings import BitVectorSignature

SIG = BitVectorSignature.uniform(("x", "y", "z"), 16)


def estimate(*outputs, blocks=None):
    d = Decomposition()
    for name, expr in (blocks or {}).items():
        d.blocks[name] = expr
    d.outputs = list(outputs)
    return estimate_decomposition(d, SIG)


class TestEstimates:
    def test_single_multiplier(self):
        report = estimate(make_mul("x", "y"))
        assert report.multipliers == 1 and report.adders == 0
        assert report.area > 0 and report.delay > 0

    def test_sharing_reduces_area(self):
        shared = estimate(
            make_pow(BlockRef("d"), 2),
            make_mul(4, BlockRef("d")),
            blocks={"d": make_add("x", make_mul(3, "y"))},
        )
        duplicated = estimate(
            make_pow(make_add("x", make_mul(3, "y")), 2),
            make_mul(4, make_add("x", make_mul(3, "y"))),
        )
        assert shared.area < duplicated.area

    def test_wider_signature_costs_more(self):
        d = Decomposition()
        d.outputs = [make_mul("x", "y")]
        narrow = estimate_decomposition(d, BitVectorSignature.uniform(("x", "y"), 8))
        wide = estimate_decomposition(d, BitVectorSignature.uniform(("x", "y"), 16))
        assert wide.area > narrow.area

    def test_delay_follows_chaining(self):
        chained = estimate(
            make_mul("x", make_mul("y", make_mul("x", "y")))
        )
        flat = estimate(make_mul("x", "y"))
        assert chained.delay > flat.delay

    def test_report_string(self):
        text = str(estimate(make_mul("x", "y")))
        assert "area=" in text and "delay=" in text

    def test_census_fields(self):
        report = estimate(make_add(make_mul(5, "x"), "y"))
        assert report.constant_multipliers == 1
        assert report.adders == 1
        assert report.nodes >= 4
