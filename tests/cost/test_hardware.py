"""Tests for the hardware primitive models."""

import hypothesis.strategies as st
import pytest
from hypothesis import given

from repro.cost import (
    DEFAULT_MODEL,
    adder_area,
    adder_delay,
    constant_multiplier_area,
    constant_multiplier_delay,
    csd_digits,
    csd_nonzero_count,
    multiplier_area,
    multiplier_delay,
)


class TestCsd:
    def test_known_recodings(self):
        # 7 = 8 - 1 -> two non-zero digits
        assert csd_nonzero_count(7) == 2
        # 15 = 16 - 1
        assert csd_nonzero_count(15) == 2
        # 5 = 4 + 1
        assert csd_nonzero_count(5) == 2
        # powers of two need one digit
        assert csd_nonzero_count(8) == 1

    @given(st.integers(min_value=-10000, max_value=10000))
    def test_value_reconstructed(self, value):
        digits = csd_digits(value)
        assert sum(d << i for i, d in enumerate(digits)) == value

    @given(st.integers(min_value=1, max_value=10000))
    def test_no_adjacent_nonzeros(self, value):
        digits = csd_digits(value)
        for a, b in zip(digits, digits[1:]):
            assert not (a and b)

    @given(st.integers(min_value=1, max_value=10000))
    def test_csd_no_worse_than_binary(self, value):
        assert csd_nonzero_count(value) <= bin(value).count("1") + 1


class TestPrimitives:
    def test_adder_linear_in_width(self):
        assert adder_area(32) == 2 * adder_area(16)
        assert adder_delay(32) == 2 * adder_delay(16)

    def test_multiplier_grows_quadratically(self):
        small = multiplier_area(8, 8)
        big = multiplier_area(16, 16)
        assert 3.0 < big / small < 5.0

    def test_multiplier_delay_linear(self):
        assert multiplier_delay(16, 16) > multiplier_delay(8, 8)

    def test_constant_multiplier_cheaper_than_array(self):
        # the paper's whole cost story hinges on this
        for coeff in (3, 5, 7, 13, 100):
            assert constant_multiplier_area(coeff, 16) < multiplier_area(16, 16)

    def test_power_of_two_constant_free(self):
        assert constant_multiplier_area(8, 16) == 0.0
        assert constant_multiplier_delay(8, 16) == 0.0

    def test_negative_constant_costs_negation(self):
        assert constant_multiplier_area(-8, 16) > 0.0

    def test_unit_scale_conversions(self):
        assert DEFAULT_MODEL.to_ns(10) == pytest.approx(10 * DEFAULT_MODEL.gate_delay_ns)
        assert DEFAULT_MODEL.to_um2(10) == pytest.approx(10 * DEFAULT_MODEL.area_unit_um2)


class TestCarrySave:
    """The [24]-style carry-save summation models."""

    def test_degenerate_cases(self):
        from repro.cost import csa_tree_area, csa_tree_delay

        assert csa_tree_area(1, 16) == 0.0
        assert csa_tree_area(2, 16) == adder_area(16)
        assert csa_tree_delay(2, 16) == adder_delay(16)

    def test_many_operand_delay_beats_serial_adders(self):
        from repro.cost import csa_tree_delay

        operands = 8
        serial = (operands - 1) * adder_delay(16)
        assert csa_tree_delay(operands, 16) < serial

    def test_area_grows_linearly(self):
        from repro.cost import csa_tree_area

        a4 = csa_tree_area(4, 16)
        a8 = csa_tree_area(8, 16)
        assert a8 > a4
        # one extra 3:2 row per extra operand
        assert a8 - a4 == pytest.approx(4 * 16 * DEFAULT_MODEL.full_adder_area)
