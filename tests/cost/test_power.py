"""Tests for the dynamic-power estimator (paper future work)."""

import pytest

from repro.cost import estimate_power, node_activities
from repro.dfg import DataFlowGraph, NodeKind
from repro.expr import Decomposition, make_add, make_mul, make_pow
from repro.expr.ast import BlockRef
from repro.rings import BitVectorSignature

SIG = BitVectorSignature.uniform(("x", "y"), 16)


def power_of(*outputs, blocks=None, activity=0.5):
    d = Decomposition()
    for name, expr in (blocks or {}).items():
        d.blocks[name] = expr
    d.outputs = list(outputs)
    return estimate_power(d, SIG, input_activity=activity)


class TestActivities:
    def test_constants_quiet(self):
        g = DataFlowGraph(output_width=16)
        c = g.add_const(5)
        x = g.add_input("x", 16)
        node = g.add_op(NodeKind.CMUL, (x,), value=5)
        g.mark_output(node)
        activities = node_activities(g)
        assert activities[c] == 0.0
        assert activities[x] == 0.5
        assert activities[node] == 0.5  # follows its single driver

    def test_or_combination(self):
        g = DataFlowGraph(output_width=16)
        x = g.add_input("x", 16)
        y = g.add_input("y", 16)
        node = g.add_op(NodeKind.ADD, (x, y))
        activities = node_activities(g, input_activity=0.5)
        assert activities[node] == pytest.approx(0.75)

    def test_invalid_activity(self):
        g = DataFlowGraph(output_width=16)
        with pytest.raises(ValueError):
            node_activities(g, input_activity=1.5)


class TestEstimates:
    def test_zero_activity_means_zero_power(self):
        report = power_of(make_mul("x", "y"), activity=0.0)
        assert report.switched_capacitance == 0.0

    def test_sharing_reduces_power(self):
        shared = power_of(
            make_pow(BlockRef("d"), 2),
            make_mul(3, BlockRef("d")),
            blocks={"d": make_add("x", make_mul(3, "y"))},
        )
        duplicated = power_of(
            make_pow(make_add("x", make_mul(3, "y")), 2),
            make_mul(3, make_add("x", make_mul(3, "y"))),
        )
        assert shared.switched_capacitance < duplicated.switched_capacitance

    def test_bounded_by_total(self):
        report = power_of(make_mul("x", "y"), make_add("x", "y"))
        assert 0 < report.switched_capacitance <= report.total_capacitance
        assert 0 < report.mean_activity <= 1.0

    def test_report_str(self):
        assert "switched capacitance" in str(power_of(make_mul("x", "y")))


class TestPaperStory:
    def test_proposed_method_saves_power_on_motivating_system(self):
        """Fewer multipliers -> less switched capacitance (the future-work claim)."""
        from repro import compare_methods
        from repro.suite import table_14_1_system

        system = table_14_1_system()
        outcomes = compare_methods(system)
        direct = estimate_power(outcomes["direct"].decomposition, system.signature)
        proposed = estimate_power(outcomes["proposed"].decomposition, system.signature)
        assert proposed.switched_capacitance < direct.switched_capacitance
