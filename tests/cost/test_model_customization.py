"""Tests that the technology model is a real customization point."""

import pytest

from repro.cost import (
    TechnologyModel,
    adder_area,
    estimate_decomposition,
    multiplier_area,
)
from repro.expr import Decomposition, make_add, make_mul
from repro.rings import BitVectorSignature

SIG = BitVectorSignature.uniform(("x", "y"), 16)


def sample_decomposition():
    d = Decomposition()
    d.outputs = [make_add(make_mul("x", "y"), make_mul(5, "x"))]
    return d


class TestCustomModels:
    def test_area_scales_with_cell_sizes(self):
        small = TechnologyModel(full_adder_area=3.0, and_gate_area=0.75)
        big = TechnologyModel(full_adder_area=12.0, and_gate_area=3.0)
        d = sample_decomposition()
        assert (
            estimate_decomposition(d, SIG, small).area
            < estimate_decomposition(d, SIG, big).area
        )

    def test_delay_scales_with_fa_delay(self):
        slow = TechnologyModel(full_adder_delay=4.0)
        fast = TechnologyModel(full_adder_delay=1.0)
        d = sample_decomposition()
        assert (
            estimate_decomposition(d, SIG, fast).delay
            < estimate_decomposition(d, SIG, slow).delay
        )

    def test_primitives_honor_model(self):
        model = TechnologyModel(full_adder_area=10.0)
        assert adder_area(8, model) == 80.0
        assert multiplier_area(4, 4, model) > multiplier_area(
            4, 4, TechnologyModel(full_adder_area=1.0, and_gate_area=0.1)
        )

    def test_unit_conversions_configurable(self):
        model = TechnologyModel(gate_delay_ns=0.1, area_unit_um2=2.0)
        assert model.to_ns(50) == pytest.approx(5.0)
        assert model.to_um2(50) == pytest.approx(100.0)

    def test_compare_methods_accepts_model(self):
        from repro import compare_methods
        from repro.suite import get_system

        system = get_system("MVCS")
        cheap = compare_methods(
            system,
            methods=("direct",),
            model=TechnologyModel(full_adder_area=1.0, and_gate_area=0.2),
        )
        default = compare_methods(system, methods=("direct",))
        assert cheap["direct"].hardware.area < default["direct"].hardware.area