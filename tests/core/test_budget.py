"""Tests for cooperative budgets, deadlines, and graceful degradation."""

import time

import pytest

from repro.core import synthesize
from repro.core.budget import (
    CHECK_STRIDE,
    NULL_DEADLINE,
    Budget,
    BudgetExceeded,
    Deadline,
    Degradation,
    current_deadline,
    deadline_for,
    use_deadline,
)
from repro.suite import get_system
from repro.verify import check_systems


class TestBudget:
    def test_default_is_unlimited(self):
        assert Budget().unlimited
        assert not Budget(max_steps=10).unlimited
        assert not Budget(job_seconds=1.0).unlimited

    def test_round_trip(self):
        budget = Budget(job_seconds=1.5, phase_seconds=0.5, max_steps=1000)
        assert Budget.from_dict(budget.as_dict()) == budget
        assert Budget.from_dict(Budget().as_dict()) == Budget()

    def test_from_dict_rejects_other_kinds(self):
        with pytest.raises(ValueError):
            Budget.from_dict({"kind": "retry-policy"})


class TestDegradation:
    def test_round_trip_and_str(self):
        d = Degradation("cce", "skipped", "phase budget 0.5s exceeded")
        assert Degradation.from_dict(d.as_dict()) == d
        assert "cce" in str(d) and "skipped" in str(d)


class TestDeadline:
    def test_step_fuse_raises_deterministically(self):
        deadline = Deadline(Budget(max_steps=10))
        deadline.tick(10, site="loop")
        with pytest.raises(BudgetExceeded) as excinfo:
            deadline.tick(1, site="loop")
        assert excinfo.value.limit == "steps"
        assert excinfo.value.site == "loop"

    def test_wall_clock_checked_on_stride(self):
        deadline = Deadline(Budget(job_seconds=0.0))
        time.sleep(0.01)
        # Fewer than CHECK_STRIDE ticks never consult the clock.
        for _ in range(CHECK_STRIDE - 1):
            deadline.tick()
        with pytest.raises(BudgetExceeded) as excinfo:
            for _ in range(CHECK_STRIDE):
                deadline.tick()
        assert excinfo.value.limit == "job"

    def test_phase_budget(self):
        deadline = Deadline(Budget(phase_seconds=0.0))
        deadline.start_phase("cce")
        time.sleep(0.01)
        with pytest.raises(BudgetExceeded) as excinfo:
            deadline.check(site="cce/group")
        assert excinfo.value.limit == "phase"
        assert "cce" in str(excinfo.value)
        # Ending the phase clears its deadline.
        deadline.end_phase()
        deadline.check()

    def test_expired_never_raises(self):
        deadline = Deadline(Budget(job_seconds=0.0))
        time.sleep(0.01)
        assert deadline.expired()

    def test_disarm_stops_enforcement(self):
        deadline = Deadline(Budget(max_steps=1, job_seconds=0.0))
        deadline.disarm()
        deadline.tick(100)
        deadline.check()
        assert not deadline.expired()

    def test_remaining(self):
        deadline = Deadline(Budget(job_seconds=100.0))
        remaining = deadline.remaining()
        assert remaining is not None and 0 < remaining <= 100.0
        assert Deadline(Budget(max_steps=5)).remaining() is None


class TestAmbientDeadline:
    def test_defaults_to_null(self):
        assert current_deadline() is NULL_DEADLINE
        assert not NULL_DEADLINE.enabled
        NULL_DEADLINE.tick(10_000)
        NULL_DEADLINE.check()
        assert not NULL_DEADLINE.expired()

    def test_use_deadline_installs_and_restores(self):
        deadline = Deadline(Budget(max_steps=100))
        with use_deadline(deadline):
            assert current_deadline() is deadline
        assert current_deadline() is NULL_DEADLINE

    def test_deadline_for(self):
        assert deadline_for(None) is NULL_DEADLINE
        assert deadline_for(Budget()) is NULL_DEADLINE
        assert isinstance(deadline_for(Budget(max_steps=1)), Deadline)


class TestGracefulDegradation:
    """Budgeted synthesize always returns a valid decomposition."""

    def _assert_valid(self, system, result):
        assert result.decomposition is not None
        assert result.op_count is not None
        report = check_systems(
            result.decomposition.to_polynomials(),
            list(system.polys),
            system.signature,
        )
        assert report

    def test_unbudgeted_run_has_no_degradations(self):
        system = get_system("Quad")
        result = synthesize(list(system.polys), system.signature)
        assert result.degradations == []
        assert not result.degraded

    def test_generous_budget_matches_unbudgeted(self):
        system = get_system("Quad")
        free = synthesize(list(system.polys), system.signature)
        budgeted = synthesize(
            list(system.polys), system.signature,
            budget=Budget(job_seconds=3600.0),
        )
        assert budgeted.degradations == []
        assert budgeted.op_count == free.op_count
        assert str(budgeted.decomposition.outputs) == str(free.decomposition.outputs)

    def test_step_fuse_degrades_but_stays_valid(self):
        system = get_system("Quad")
        result = synthesize(
            list(system.polys), system.signature, budget=Budget(max_steps=5)
        )
        assert result.degraded
        assert any("fallback" in d.action for d in result.degradations)
        self._assert_valid(system, result)

    def test_expired_budget_takes_cheap_path_immediately(self):
        system = get_system("Quad")
        start = time.perf_counter()
        result = synthesize(
            list(system.polys), system.signature,
            budget=Budget(job_seconds=0.0),
        )
        elapsed = time.perf_counter() - start
        assert result.degraded
        assert any(d.action == "expired-at-start" for d in result.degradations)
        self._assert_valid(system, result)
        # The whole flow is skipped: this must be far cheaper than synthesis.
        assert elapsed < 5.0

    def test_degradations_appear_in_summary(self):
        system = get_system("Quad")
        result = synthesize(
            list(system.polys), system.signature,
            budget=Budget(job_seconds=0.0),
        )
        assert "degradations:" in result.summary()
