"""Tests for the Fig. 14.1 representation lists."""

from repro.core import (
    BlockRegistry,
    canonical_representations,
    dedupe_representations,
    factored_representation,
    initial_representations,
    original_representation,
)
from repro.cse import expand_blocks
from repro.poly import parse_polynomial as P
from repro.rings import BitVectorSignature, functions_equal


SIG = BitVectorSignature.uniform(("x", "y", "z"), 16)


class TestFactoredRepresentation:
    def test_square_detected(self):
        registry = BlockRegistry(("x", "y"))
        rep = factored_representation(P("x^2 + 6*x*y + 9*y^2"), registry)
        assert rep is not None
        assert expand_blocks(rep.poly, registry.defs) == P("x^2 + 6*x*y + 9*y^2")
        # single block variable squared
        assert rep.poly.total_degree() == 2 and len(rep.poly) == 1

    def test_trivial_factorization_skipped(self):
        registry = BlockRegistry(("x", "y"))
        assert factored_representation(P("x^2 + y + 1"), registry) is None

    def test_content_only_still_none_blocks(self):
        registry = BlockRegistry(("x", "y"))
        rep = factored_representation(P("3*x + 3*y"), registry)
        if rep is not None:
            assert expand_blocks(rep.poly, registry.defs) == P("3*x + 3*y")


class TestCanonicalRepresentations:
    def test_table_14_2_p3_shape(self):
        registry = BlockRegistry(("x", "y", "z"))
        poly = P(
            "5*x^3*y^2 - 5*x^3*y - 15*x^2*y^2 + 15*x^2*y + 10*x*y^2 - 10*x*y + 3*z^2",
            variables=("x", "y", "z"),
        )
        reps = canonical_representations(poly, SIG, registry)
        assert reps, "expected canonical variants"
        for rep in reps:
            assert rep.modular
            expanded = expand_blocks(rep.poly, registry.defs)
            assert functions_equal(expanded, poly, SIG)
        # The {x, y} falling subset produces the paper's form with shift
        # blocks only on x and y (z stays in the power basis).
        tags = {rep.tag for rep in reps}
        assert "canonical(x,y)" in tags

    def test_no_signature_variables(self):
        registry = BlockRegistry(("q",))
        assert canonical_representations(P("q + 1"), SIG, registry) == []


class TestInitialRepresentations:
    def test_contains_original_first(self):
        registry = BlockRegistry(("x", "y", "z"))
        poly = P("x^2 + 6*x*y + 9*y^2", variables=("x", "y", "z"))
        reps = initial_representations(poly, registry, SIG)
        assert reps[0].tag == "original" and reps[0].poly == poly

    def test_toggles(self):
        registry = BlockRegistry(("x", "y", "z"))
        poly = P("x^2 + 6*x*y + 9*y^2", variables=("x", "y", "z"))
        reps = initial_representations(
            poly, registry, SIG, enable_canonical=False, enable_factoring=False
        )
        assert len(reps) == 1


class TestDedupe:
    def test_duplicates_removed(self):
        a = original_representation(P("x + y"))
        b = original_representation(P("y + x"))
        assert len(dedupe_representations([a, b])) == 1
