"""Tests for the combination-search internals of Poly_Synth."""

from repro.core import BlockRegistry, SynthesisOptions, synthesize
from repro.core.representations import Representation
from repro.core.synth import _search_seeds, _standalone_weight
from repro.poly import Polynomial, parse_polynomial as P, parse_system
from repro.rings import BitVectorSignature


class TestStandaloneWeight:
    def test_includes_block_closure(self):
        registry = BlockRegistry(("x", "y"))
        name, _ = registry.register(P("x^2 + 2*x*y + y^2"))
        cheap_looking = Polynomial.variable(name).scale(13)
        bare = P("13*x^2 + 26*x*y + 13*y^2")
        # The block-referencing form must be charged for the block body.
        assert _standalone_weight(cheap_looking, registry) > 0
        assert (
            _standalone_weight(cheap_looking, registry)
            >= _standalone_weight(bare, registry) // 2
        )

    def test_shared_blocks_counted_once_per_rep(self):
        registry = BlockRegistry(("x", "y"))
        name, _ = registry.register(P("x + y"))
        twice = Polynomial.variable(name) ** 2 + Polynomial.variable(name)
        w = _standalone_weight(twice, registry)
        assert w > 0


def _weights(lists, registry):
    return [
        [_standalone_weight(rep.poly, registry) for rep in reps]
        for reps in lists
    ]


class TestSearchSeeds:
    def test_all_original_seed_present(self):
        registry = BlockRegistry(("x", "y"))
        lists = [
            [
                Representation(P("x + y"), "original"),
                Representation(P("x + y"), "cce(original)"),
            ],
            [
                Representation(P("x - y"), "original"),
            ],
        ]
        seeds = _search_seeds(lists, _weights(lists, registry))
        assert (0, 0) in seeds

    def test_family_seed_uniform(self):
        registry = BlockRegistry(("x", "y"))
        lists = [
            [
                Representation(P("x + y"), "original"),
                Representation(P("x + y"), "cce(original)"),
            ],
            [
                Representation(P("x - y"), "original"),
                Representation(P("x - y"), "cce(original)"),
            ],
        ]
        seeds = _search_seeds(lists, _weights(lists, registry))
        assert (1, 1) in seeds  # the uniform cce seed

    def test_seeds_deduplicated(self):
        registry = BlockRegistry(("x",))
        lists = [[Representation(P("x"), "original")]]
        seeds = _search_seeds(lists, _weights(lists, registry))
        assert len(seeds) == len(set(seeds))


class TestBudget:
    def test_descent_budget_limits_scoring(self):
        system = parse_system(
            [f"{k}*x^2 + {k}*x*y + {k + 1}*y^2 + {k}*x + {k}" for k in range(2, 8)]
        )
        sig = BitVectorSignature.uniform(("x", "y"), 16)
        tight = SynthesisOptions(exhaustive_limit=1, descent_budget=5)
        result = synthesize(system, sig, tight)
        # seeds (<= 6) + budgeted descent (<= 5) + initial seed scores
        assert result.combinations_scored <= 6 + 5 + 1

    def test_exhaustive_small_system(self):
        system = parse_system(["x^2 + 6*x*y + 9*y^2"])
        sig = BitVectorSignature.uniform(("x", "y"), 16)
        result = synthesize(system, sig, SynthesisOptions(exhaustive_limit=1000))
        # One polynomial: the whole list is enumerated, minus combinations
        # the branch-and-bound surrogate prune rules out without scoring.
        assert 0 < result.combinations_scored <= len(result.representation_lists[0])
