"""End-to-end tests for Algorithm 7 (Poly_Synth)."""

import pytest

from repro.core import SynthesisOptions, synthesize
from repro.poly import parse_system
from repro.suite import table_14_1_system, table_14_2_system


class TestTable14_1:
    """The motivating example: exact operator counts from the paper."""

    def test_paper_counts(self):
        system = table_14_1_system()
        result = synthesize(list(system.polys), system.signature)
        assert (result.initial_op_count.mul, result.initial_op_count.add) == (17, 4)
        count = result.op_count
        assert count.mul <= 8, f"expected <= 8 MULT, got {count}"
        assert count.add <= 2, f"expected about 1 ADD, got {count}"

    def test_block_is_x_plus_3y(self):
        from repro.poly import parse_polynomial as P

        system = table_14_1_system()
        result = synthesize(list(system.polys), system.signature)
        grounds = set(result.registry.ground.values())
        assert P("x + 3*y") in grounds


class TestTable14_2:
    def test_paper_costs(self):
        system = table_14_2_system()
        result = synthesize(list(system.polys), system.signature)
        assert (result.initial_op_count.mul, result.initial_op_count.add) == (51, 21)
        # Paper reaches 14 MULT / 12 ADD; allow equality-or-better.
        assert result.op_count.mul <= 14
        assert result.op_count.add <= 14

    def test_validated_against_system(self):
        system = table_14_2_system()
        result = synthesize(list(system.polys), system.signature)
        # _validate ran inside synthesize; expand once more here.
        expanded = result.decomposition.to_polynomials()
        assert len(expanded) == len(system.polys)


class TestOptions:
    def test_all_phases_off_still_works(self):
        system = table_14_1_system()
        options = SynthesisOptions(
            enable_canonical=False,
            enable_factoring=False,
            enable_cse_exposure=False,
            enable_cce=False,
            enable_cube_extraction=False,
            enable_division=False,
            enable_final_cse=False,
        )
        result = synthesize(list(system.polys), system.signature, options)
        # Degenerate flow: no blocks, no sharing — only the per-output
        # Horner/factoring of the assembly remains, so the cost sits
        # between the paper's Horner row and the direct row.
        assert not result.decomposition.blocks
        assert result.op_count.mul <= result.initial_op_count.mul

    def test_ops_objective(self):
        system = table_14_1_system()
        options = SynthesisOptions(objective="ops")
        result = synthesize(list(system.polys), system.signature, options)
        assert result.op_count.mul <= 10

    def test_no_signature(self):
        system = parse_system(["x^2 + 6*x*y + 9*y^2", "4*x*y^2 + 12*y^3"])
        result = synthesize(system)  # no canonical phase without signature
        assert result.op_count.mul <= 8

    def test_empty_system_rejected(self):
        with pytest.raises(ValueError):
            synthesize([])


class TestMonotonicity:
    def test_never_worse_than_direct(self):
        from repro.suite import get_system

        for name in ("Table 14.1", "Quad", "Mibench", "MVCS"):
            system = get_system(name)
            result = synthesize(list(system.polys), system.signature)
            assert result.op_count.weighted() <= result.initial_op_count.weighted()
