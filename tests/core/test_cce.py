"""Tests for Common Coefficient Extraction (Algorithm 6)."""

from hypothesis import given, settings

from repro.core import BlockRegistry, candidate_gcds, common_coefficient_extraction
from repro.cse import expand_blocks
from repro.poly import parse_polynomial as P
from tests.conftest import polynomials


def run_cce(text, variables=None):
    poly = P(text, variables=variables)
    registry = BlockRegistry(poly.vars)
    result = common_coefficient_extraction(poly, registry)
    return poly, registry, result


class TestCandidateGcds:
    def test_paper_coefficient_set(self):
        # {8, 16, 24, 15, 30} -> {15, 8} (paper Section 14.4.1)
        assert candidate_gcds([8, 16, 24, 15, 30]) == [15, 8]

    def test_gcd_smaller_than_both_dropped(self):
        # gcd(24, 30) = 6 must be ignored.
        assert candidate_gcds([24, 30]) == []

    def test_units_ignored(self):
        assert candidate_gcds([1, 1, 7]) == []

    def test_negative_magnitudes(self):
        assert candidate_gcds([-7, 7]) == [7]

    def test_divisor_pair_kept(self):
        assert candidate_gcds([5, 10, 15]) == [5]


class TestPaperExamples:
    def test_section_14_4_1_running_example(self):
        # P1 = 8x + 16y + 24z + 15a + 30b + 11
        poly, registry, result = run_cce("8*x + 16*y + 24*z + 15*a + 30*b + 11")
        assert result is not None
        blocks = {registry.ground[n] for n in result.extracted}
        assert P("x + 2*y + 3*z") in blocks
        assert P("a + 2*b") in blocks
        # reconstruction
        assert expand_blocks(result.poly, registry.defs) == poly

    def test_coefficient_addition_ignored(self):
        # the +11 stays a direct constant (never grouped)
        _, registry, result = run_cce("8*x + 16*y + 11")
        assert result is not None
        for name in result.extracted:
            assert registry.ground[name].constant_term == 0

    def test_simple_factoring_example(self):
        # P = 5x^2 + 10y^3 + 15pq -> 5(x^2 + 2y^3 + 3pq)
        poly, registry, result = run_cce("5*x^2 + 10*y^3 + 15*p*q")
        assert result is not None and len(result.extracted) == 1
        block = registry.ground[result.extracted[0]]
        assert block == P("x^2 + 2*y^3 + 3*p*q")

    def test_table_14_2_p1(self):
        poly, registry, result = run_cce(
            "13*x^2 + 26*x*y + 13*y^2 + 7*x - 7*y + 11"
        )
        assert result is not None
        blocks = {registry.ground[n] for n in result.extracted}
        assert P("x^2 + 2*x*y + y^2") in blocks
        assert P("x - y") in blocks

    def test_no_benefit_no_extraction(self):
        # motivating P1: {6, 9} -> gcd 3 < both -> nothing extracted
        _, _, result = run_cce("x^2 + 6*x*y + 9*y^2")
        assert result is None


class TestInvariants:
    @settings(max_examples=50, deadline=None)
    @given(polynomials(max_coeff=60))
    def test_reconstruction_exact(self, poly):
        registry = BlockRegistry(poly.vars)
        result = common_coefficient_extraction(poly, registry)
        if result is None:
            return
        assert expand_blocks(result.poly, registry.defs) == poly

    @settings(max_examples=50, deadline=None)
    @given(polynomials(max_coeff=60))
    def test_blocks_have_at_least_two_terms(self, poly):
        registry = BlockRegistry(poly.vars)
        result = common_coefficient_extraction(poly, registry)
        if result is None:
            return
        for name in result.extracted:
            assert len(registry.ground[name]) >= 2
