"""Memoization must never change results, and disabled tracing must
never allocate.

The combination search memoizes per-representation sub-results by
mathematical content (``_BEST_EXPR_CACHE``, the kernel cache) and prunes
with a branch-and-bound surrogate bound.  Both are pure optimizations:
a cold-cache run and a warm-cache run of the same system must produce
the *identical* ``SynthesisResult`` — same decomposition, same chosen
combination, same number of combinations scored.  These properties are
checked across every fuzz generator shape.

The zero-cost observability contract is checked the same way: running
the whole flow under the default (disabled) tracer must allocate zero
``Span`` objects, asserted via the tracer's allocation counter.
"""

import pytest

from repro.core import synthesize
from repro.core.synth import clear_synthesis_caches
from repro.fuzz import SHAPES, generate_case
from repro.obs import NULL_TRACER, Tracer, current_tracer, span_allocation_count, use_tracer


def _run(system):
    return synthesize(list(system.polys), system.signature)


def _fingerprint(result):
    """Everything observable about a result, hashable for comparison."""
    return (
        result.summary(),
        result.op_count,
        result.initial_op_count,
        result.chosen,
        result.combinations_scored,
        tuple(
            tuple(rep.poly for rep in reps) for reps in result.representation_lists
        ),
    )


class TestCachedVsCold:
    @pytest.mark.parametrize("shape", sorted(SHAPES))
    def test_cold_and_warm_runs_identical(self, shape):
        case = generate_case(seed=11, index=0, shapes=[shape])

        clear_synthesis_caches()
        cold = _fingerprint(_run(case.system))
        # Same process, caches now warm from the first run.
        warm = _fingerprint(_run(case.system))
        # And a second cold run for symmetry (warm != stale).
        clear_synthesis_caches()
        cold_again = _fingerprint(_run(case.system))

        assert cold == warm
        assert cold == cold_again

    def test_warm_cache_shared_across_different_systems(self):
        # Interleaving other systems must not leak wrong sub-results
        # between content-keyed cache entries.
        a = generate_case(seed=3, index=0, shapes=["planted-kernel"]).system
        b = generate_case(seed=3, index=1, shapes=["unstructured"]).system
        clear_synthesis_caches()
        cold_a = _fingerprint(_run(a))
        cold_b = _fingerprint(_run(b))
        warm_a = _fingerprint(_run(a))
        warm_b = _fingerprint(_run(b))
        assert cold_a == warm_a
        assert cold_b == warm_b


class TestZeroCostTracing:
    def test_disabled_tracer_allocates_no_spans(self):
        assert current_tracer() is NULL_TRACER or not current_tracer().enabled
        case = generate_case(seed=7, index=0, shapes=["planted-kernel"])
        before = span_allocation_count()
        _run(case.system)
        assert span_allocation_count() == before

    def test_enabled_tracer_does_allocate(self):
        # The counter itself must be live, or the test above proves nothing.
        case = generate_case(seed=7, index=0, shapes=["planted-kernel"])
        before = span_allocation_count()
        with use_tracer(Tracer()):
            _run(case.system)
        assert span_allocation_count() > before
