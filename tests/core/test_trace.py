"""Tests for flow tracing."""

from repro.core import FlowTrace, synthesize
from repro.suite import table_14_1_system


class TestFlowTrace:
    def test_record_and_query(self):
        trace = FlowTrace()
        trace.record("phase-a", "did something", count=3)
        trace.record("phase-b", "did more")
        trace.record("phase-a", "again")
        assert len(trace) == 3
        assert [e.message for e in trace.by_phase("phase-a")] == [
            "did something",
            "again",
        ]
        assert trace.phases() == ["phase-a", "phase-b"]

    def test_event_str(self):
        trace = FlowTrace()
        trace.record("x", "msg", n=1)
        assert "[x] msg" in str(trace.events[0])

    def test_summary(self):
        trace = FlowTrace()
        for i in range(12):
            trace.record("busy", f"event {i}")
        text = trace.summary()
        assert "busy: 12 event(s)" in text
        assert "... and 4 more" in text


class TestFlowIntegration:
    def test_synthesize_records_phases(self):
        system = table_14_1_system()
        trace = FlowTrace()
        result = synthesize(list(system.polys), system.signature, trace=trace)
        assert result.trace is trace
        phases = trace.phases()
        assert "initial" in phases
        assert "cce" in phases
        assert "search" in phases
        # the chosen combination tags are recorded
        search_events = trace.by_phase("search")
        assert any("chosen" in e.data for e in search_events)

    def test_tracing_does_not_change_results(self):
        system = table_14_1_system()
        with_trace = synthesize(
            list(system.polys), system.signature, trace=FlowTrace()
        )
        without = synthesize(list(system.polys), system.signature)
        assert with_trace.op_count == without.op_count
        assert with_trace.chosen == without.chosen
