"""Provenance records, the explain report, and the search-telemetry metrics.

The load-bearing contract (the ISSUE's acceptance criterion): the
integers in a result's :class:`~repro.core.Provenance` and the
``repro_search_*`` counters published to the metrics registry are the
*same numbers* — a consumer can cross-check either view against the
other exactly.
"""

import json

from repro.__main__ import main
from repro.core import (
    ChosenRepresentation,
    Provenance,
    SynthesisOptions,
    clear_synthesis_caches,
    explain_text,
    synthesis_cache_sizes,
    synthesize,
)
from repro.obs import Tracer, get_registry, use_tracer
from repro.suite import get_system


def traced_synthesis(name, options=None):
    system = get_system(name)
    clear_synthesis_caches()
    get_registry().reset()
    with use_tracer(Tracer()):
        result = synthesize(
            list(system.polys), system.signature, options or SynthesisOptions()
        )
    return system, result


class TestProvenanceRecord:
    def test_every_result_carries_provenance(self):
        _, result = traced_synthesis("Table 14.1")
        prov = result.provenance
        assert prov is not None
        assert prov.search_mode in ("exhaustive", "descent")
        assert prov.combinations_scored > 0
        assert prov.search_space >= prov.search_bound > 0
        assert len(prov.chosen) == len(get_system("Table 14.1").polys)
        for choice in prov.chosen:
            assert choice.tag
            assert 0 <= choice.index < choice.candidates

    def test_round_trip(self):
        _, result = traced_synthesis("Table 14.1")
        doc = result.provenance.as_dict()
        assert doc["kind"] == "provenance"
        again = Provenance.from_dict(json.loads(json.dumps(doc)))
        assert again == result.provenance

    def test_memo_hit_rate(self):
        prov = Provenance(combinations_scored=3, memo_hits=1)
        assert prov.memo_hit_rate == 0.25
        assert Provenance().memo_hit_rate == 0.0

    def test_blocks_capture_winner_definitions(self):
        _, result = traced_synthesis("Table 14.1")
        prov = result.provenance
        assert set(prov.blocks) == set(result.decomposition.blocks)
        for name, definition in prov.blocks.items():
            assert isinstance(definition, str) and definition


class TestMetricsAgreement:
    def test_counters_match_provenance_exactly(self):
        """SG 3X2 exercises descent + memo hits; views must agree.

        Pinned to rectangle mode: dag mode's surrogate scores steer the
        descent down a different (hit-free) path on this system.
        """
        _, result = traced_synthesis(
            "SG 3X2", SynthesisOptions(cse_mode="rectangle")
        )
        prov = result.provenance
        registry = get_registry()
        assert (
            registry.counter("repro_search_combos_scored").value
            == prov.combinations_scored
        )
        assert (
            registry.counter("repro_search_memo_hits").value == prov.memo_hits
        )
        assert registry.counter("repro_search_pruned").value == prov.pruned
        assert prov.memo_hits > 0  # SG 3X2's search actually memoizes

    def test_dag_counters_match_provenance_exactly(self):
        """The dag_* counters carry the same integers as the provenance."""
        _, result = traced_synthesis("SG 3X2")
        prov = result.provenance
        assert prov.cse_mode == "dag"
        registry = get_registry()
        assert (
            registry.counter("repro_search_combos_scored").value
            == prov.combinations_scored
        )
        assert registry.counter("repro_search_dag_nodes").value == prov.dag_nodes
        assert (
            registry.counter("repro_search_dag_intern_hits").value
            == prov.dag_intern_hits
        )
        assert (
            registry.counter("repro_search_dag_shared_nodes").value
            == prov.dag_shared_nodes
        )
        assert (
            registry.counter("repro_search_dag_finalists").value
            == prov.dag_finalists
        )
        assert prov.dag_nodes > 0
        assert prov.dag_intern_hits > 0
        assert prov.dag_shared_nodes > 0
        assert prov.dag_finalists > 0

    def test_rectangle_mode_publishes_no_dag_counters(self):
        _, result = traced_synthesis(
            "Table 14.1", SynthesisOptions(cse_mode="rectangle")
        )
        prov = result.provenance
        assert prov.cse_mode == "rectangle"
        assert prov.dag_nodes == 0
        assert prov.dag_finalists == 0
        registry = get_registry()
        assert registry.counter("repro_search_dag_nodes").value == 0
        assert registry.counter("repro_search_dag_finalists").value == 0

    def test_cache_size_gauges_published(self):
        _, _ = traced_synthesis("Table 14.1")
        sizes = synthesis_cache_sizes()
        registry = get_registry()
        for name, size in sizes.items():
            assert registry.gauge(f"repro_search_{name}_size").value == size
        assert sizes["best_expr_cache"] > 0

    def test_untraced_run_publishes_nothing(self):
        system = get_system("Table 14.1")
        clear_synthesis_caches()
        get_registry().reset()
        synthesize(list(system.polys), system.signature, SynthesisOptions())
        registry = get_registry()
        assert registry.counter("repro_search_combos_scored").value == 0


class TestExplainReport:
    def test_text_names_kernels_and_telemetry(self):
        system, result = traced_synthesis("SG 3X2")
        text = explain_text(result, name=system.name)
        prov = result.provenance
        assert f"system: {system.name}" in text
        assert f"{prov.combinations_scored} scored" in text
        assert f"{prov.memo_hits} memo hit(s)" in text
        assert "chosen representations:" in text
        for block in prov.blocks:
            assert block in text

    def test_text_reports_dag_sharing(self):
        system, result = traced_synthesis("SG 3X2")
        prov = result.provenance
        text = explain_text(result, name=system.name)
        assert (
            f"dag sharing: {prov.dag_nodes} node(s) interned" in text
        )
        assert f"{prov.dag_shared_nodes} shared across polynomials" in text
        assert f"{prov.dag_finalists} finalist(s) assembled" in text

    def test_rectangle_text_omits_dag_line(self):
        _, result = traced_synthesis(
            "Table 14.1", SynthesisOptions(cse_mode="rectangle")
        )
        assert "dag sharing" not in explain_text(result)

    def test_missing_provenance_degrades_gracefully(self):
        class Stub:
            provenance = None

        assert "no provenance" in explain_text(Stub())

    def test_chosen_representation_as_dict(self):
        choice = ChosenRepresentation(
            polynomial="x^2", tag="factored", index=0, candidates=4
        )
        assert choice.as_dict()["tag"] == "factored"


class TestExplainCli:
    def test_text_format(self, capsys):
        rc = main(["explain", "--system", "Table 14.1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "search:" in out
        assert "chosen representations:" in out

    def test_json_format(self, capsys):
        rc = main(["explain", "--system", "Table 14.1", "--format", "json"])
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["kind"] == "provenance"
        assert doc["combinations_scored"] > 0
        assert doc["chosen"]

    def test_requires_a_system(self, capsys):
        assert main(["explain"]) == 2
