"""Tests for homogeneous-form factor exposure."""

from repro.core import (
    BlockRegistry,
    expose_homogeneous_factors,
    homogeneous_part,
    synthesize,
)
from repro.poly import parse_polynomial as P


class TestHomogeneousPart:
    def test_mixed_degrees(self):
        poly = P("72*x^2 + 96*x*y + 32*y^2 + 6*x + 4*y + 2")
        assert homogeneous_part(poly) == P("72*x^2 + 96*x*y + 32*y^2")

    def test_already_homogeneous(self):
        poly = P("x^2 + x*y")
        assert homogeneous_part(poly) == poly

    def test_zero(self):
        from repro.poly import Polynomial

        zero = Polynomial.zero(("x",))
        assert homogeneous_part(zero).is_zero


class TestExposure:
    def test_hidden_square_exposed(self):
        # 72x^2+96xy+32y^2 = 8(3x+2y)^2: CCE's GCD filter can never split
        # the group (8 < every coefficient), but the homogeneous form
        # factors.
        registry = BlockRegistry(("x", "y"))
        names = expose_homogeneous_factors(
            [P("72*x^2 + 96*x*y + 32*y^2 + 6*x + 4*y + 2")], registry
        )
        grounds = {str(registry.ground[n]) for n in names}
        assert "3*x + 2*y" in grounds

    def test_cubic_form_exposed(self):
        registry = BlockRegistry(("x", "y"))
        names = expose_homogeneous_factors(
            [P("(x - y)*(x - 3*y)*(x + 2*y) + 5*x + 1")], registry
        )
        grounds = {str(registry.ground[n]) for n in names}
        assert {"x - y", "x - 3*y", "x + 2*y"} <= grounds

    def test_linear_polys_skipped(self):
        registry = BlockRegistry(("x", "y"))
        assert expose_homogeneous_factors([P("3*x + 2*y + 1")], registry) == []

    def test_end_to_end_hidden_structure(self):
        """The full flow implements 8L^2+2L+2 with a single multiplier."""
        from repro.rings import BitVectorSignature

        system = [P("72*x^2 + 96*x*y + 32*y^2 + 6*x + 4*y + 2")]
        sig = BitVectorSignature.uniform(("x", "y"), 16)
        result = synthesize(system, sig)
        assert result.op_count.variable_mul <= 1
