"""Tests for algebraic division by linear blocks (Section 14.4.3)."""

from repro.core import (
    BlockRegistry,
    divide_by_block,
    division_candidates,
    refine_block_definitions,
)
from repro.cse import expand_blocks
from repro.poly import Polynomial, parse_polynomial as P


class TestDivideByBlock:
    def test_perfect_square(self):
        result = divide_by_block(P("x^2 + 6*x*y + 9*y^2"), P("x + 3*y"), "d")
        assert result is not None
        # d * d with no remainder
        assert expand_blocks(result, {"d": P("x + 3*y")}) == P("x^2 + 6*x*y + 9*y^2")
        assert result == Polynomial.variable("d") ** 2

    def test_with_remainder(self):
        poly = P("13*x^2 + 26*x*y + 13*y^2 + 7*x - 7*y + 11")
        result = divide_by_block(poly, P("x + y"), "d")
        assert result is not None
        assert expand_blocks(result, {"d": P("x + y")}) == poly

    def test_no_quotient_returns_none(self):
        assert divide_by_block(P("z + 1"), P("x + y"), "d") is None

    def test_cofactor(self):
        result = divide_by_block(P("4*x*y^2 + 12*y^3"), P("x + 3*y"), "d")
        assert result == Polynomial.variable("d") * P("4*y^2")


class TestDivisionCandidates:
    def test_motivating_example(self):
        registry = BlockRegistry(("x", "y", "z"))
        name, _ = registry.register(P("x + 3*y"))
        candidates = division_candidates(P("x^2 + 6*x*y + 9*y^2"), registry)
        assert any(c == Polynomial.variable(name) ** 2 for c in candidates)

    def test_irrelevant_divisors_skipped(self):
        registry = BlockRegistry(("x", "y", "z", "w"))
        registry.register(P("w + z"))
        candidates = division_candidates(P("x^2 + y"), registry)
        assert candidates == []

    def test_cap_respected(self):
        registry = BlockRegistry(("x", "y"))
        for k in range(1, 9):
            registry.register(P(f"x + {k}*y"))
        candidates = division_candidates(P("x^2 + 6*x*y + 9*y^2"), registry, 3)
        assert len(candidates) <= 3


class TestRefineBlockDefinitions:
    def test_square_block_rewritten(self):
        registry = BlockRegistry(("x", "y"))
        linear, _ = registry.register(P("x + y"))
        square, _ = registry.register(P("x^2 + 2*x*y + y^2"))
        rewritten = refine_block_definitions(registry)
        assert rewritten == 1
        assert registry.defs[square] == Polynomial.variable(linear) ** 2

    def test_product_block_rewritten(self):
        registry = BlockRegistry(("x", "y"))
        linear, _ = registry.register(P("x + 3*y"))
        product, _ = registry.register(P("x*y^2 + 3*y^3"))
        refine_block_definitions(registry)
        # definition should now reference the linear block
        assert linear in registry.defs[product].used_vars()

    def test_ground_truth_preserved(self):
        registry = BlockRegistry(("x", "y"))
        registry.register(P("x + y"))
        registry.register(P("x^3 + 3*x^2*y + 3*x*y^2 + y^3"))
        refine_block_definitions(registry)
        for name in registry.defs:
            assert registry.expand(Polynomial.variable(name)) == registry.ground[name]
