"""Tests for Cube_Ex (linear kernel exposure, Section 14.4.2)."""

from repro.core import BlockRegistry, cube_extraction, exposed_linear_kernels
from repro.poly import parse_polynomial as P, parse_system


class TestExposedLinearKernels:
    def test_motivating_p1(self):
        # paper: {(x + 6y), (6x + 9y)} exposed from x^2 + 6xy + 9y^2
        kernels = set(map(str, exposed_linear_kernels(P("x^2 + 6*x*y + 9*y^2"))))
        assert "x + 6*y" in kernels
        assert "6*x + 9*y" in kernels

    def test_motivating_p2_after_cce(self):
        # the CCE block x y^2 + 3 y^3 exposes (x + 3y)
        kernels = set(map(str, exposed_linear_kernels(P("x*y^2 + 3*y^3"))))
        assert "x + 3*y" in kernels

    def test_nonlinear_kernels_excluded(self):
        kernels = exposed_linear_kernels(P("x^3*y + x*y + y"))
        for kernel in kernels:
            assert kernel.is_linear


class TestCubeExtraction:
    def test_registers_divisor_pool(self):
        system = parse_system(
            ["x^2 + 6*x*y + 9*y^2", "x*y^2 + 3*y^3", "x^2*z + 3*x*y*z"]
        )
        registry = BlockRegistry(("x", "y", "z"))
        names = cube_extraction(list(system), registry)
        grounds = {str(registry.ground[name]) for name in names}
        assert "x + 3*y" in grounds
        assert "x + 6*y" in grounds

    def test_sees_through_block_variables(self):
        # structure hidden behind a CCE block is still harvested via the
        # ground expansion
        registry = BlockRegistry(("x", "y"))
        name, _ = registry.register(P("x*y^2 + 3*y^3"))
        import repro.poly as rp

        poly_with_block = rp.Polynomial.variable(name).scale(4)
        names = cube_extraction([poly_with_block], registry)
        grounds = {str(registry.ground[n]) for n in names}
        assert "x + 3*y" in grounds

    def test_no_duplicates(self):
        system = parse_system(["x*a + x*b", "y*a + y*b"])
        registry = BlockRegistry(("a", "b", "x", "y"))
        names = cube_extraction(list(system), registry)
        assert len(names) == len(set(names))
