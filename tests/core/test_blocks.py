"""Tests for the building-block registry."""

import pytest

from repro.core import BlockRegistry
from repro.poly import Polynomial, parse_polynomial as P


def make_registry():
    return BlockRegistry(("x", "y", "z"))


class TestRegister:
    def test_fresh_names(self):
        reg = make_registry()
        n1, _ = reg.register(P("x + y"))
        n2, _ = reg.register(P("x - y"))
        assert n1 != n2

    def test_hash_consing(self):
        reg = make_registry()
        n1, s1 = reg.register(P("x + 3*y"))
        n2, s2 = reg.register(P("x + 3*y"))
        assert n1 == n2 and s1 == s2 == 1

    def test_sign_normalization(self):
        reg = make_registry()
        n1, s1 = reg.register(P("x - y"))
        n2, s2 = reg.register(P("y - x"))
        assert n1 == n2
        assert s1 == 1 and s2 == -1

    def test_dedup_through_blocks(self):
        # A definition written over another block unifies with the same
        # ground polynomial written directly.
        reg = make_registry()
        inner, _ = reg.register(P("x + y"))
        composite = Polynomial.variable(inner) * 2 + 1  # 2(x+y) + 1
        n1, _ = reg.register(composite)
        n2, _ = reg.register(P("2*x + 2*y + 1"))
        assert n1 == n2

    def test_trivial_rejected(self):
        reg = make_registry()
        with pytest.raises(ValueError):
            reg.register(Polynomial.constant(5))
        with pytest.raises(ValueError):
            reg.register(Polynomial.zero(("x",)))


class TestLookup:
    def test_lookup_found(self):
        reg = make_registry()
        name, _ = reg.register(P("x + y"))
        assert reg.lookup(P("x + y")) == (name, 1)
        assert reg.lookup(P("-x - y")) == (name, -1)

    def test_lookup_missing(self):
        assert make_registry().lookup(P("x + 5*y")) is None


class TestShiftBlocks:
    def test_shift_block(self):
        reg = make_registry()
        name = reg.shift_block("x", 2)
        assert reg.ground[name] == P("x - 2")

    def test_shift_block_shared(self):
        reg = make_registry()
        assert reg.shift_block("x", 1) == reg.shift_block("x", 1)

    def test_zero_offset_rejected(self):
        with pytest.raises(ValueError):
            make_registry().shift_block("x", 0)


class TestRewriteDefinition:
    def test_valid_rewrite(self):
        reg = make_registry()
        linear, _ = reg.register(P("x + y"))
        square, _ = reg.register(P("x^2 + 2*x*y + y^2"))
        reg.rewrite_definition(square, Polynomial.variable(linear) ** 2)
        assert reg.expand(Polynomial.variable(square)) == P("(x + y)^2")

    def test_wrong_rewrite_rejected(self):
        reg = make_registry()
        name, _ = reg.register(P("x + y"))
        with pytest.raises(ValueError):
            reg.rewrite_definition(name, P("x - y"))

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_registry().rewrite_definition("nope", P("x"))


class TestQueries:
    def test_linear_blocks(self):
        reg = make_registry()
        reg.register(P("x + y"))
        reg.register(P("x^2 + 1"))
        linears = reg.linear_blocks()
        assert len(linears) == 1 and linears[0][1] == P("x + y")

    def test_copy_is_independent(self):
        reg = make_registry()
        reg.register(P("x + y"))
        clone = reg.copy()
        clone.register(P("x - y"))
        assert len(reg.defs) == 1 and len(clone.defs) == 2
