"""Tests for Groebner library matching ([19] baseline)."""

from repro.baselines import library_match_decomposition, match_library
from repro.poly import Polynomial, parse_polynomial as P, parse_system


class TestMatchLibrary:
    def test_perfect_square_matched(self):
        # Given the library block x+3y, P1 rewrites to _u1^2.
        result = match_library(P("x^2 + 6*x*y + 9*y^2"), [P("x + 3*y")])
        assert result == Polynomial.variable("_u1") ** 2

    def test_cofactor_matched(self):
        result = match_library(P("4*x*y^2 + 12*y^3"), [P("x + 3*y")])
        # 4 y^2 * u1
        expected = Polynomial.variable("_u1") * P("4*y^2")
        assert result == expected

    def test_unmatched_part_stays(self):
        result = match_library(P("x^2 + 6*x*y + 9*y^2 + z"), [P("x + 3*y")])
        assert "z" in result.used_vars()
        assert "_u1" in result.used_vars()

    def test_empty_library_identity(self):
        poly = P("x^2 + 1")
        assert match_library(poly, []) == poly

    def test_substitution_roundtrip(self):
        library = [P("x + 3*y"), P("x*y")]
        poly = P("x^2 + 6*x*y + 9*y^2 + 5*x*y + 7")
        result = match_library(poly, library)
        restored = result.subs({"_u1": library[0], "_u2": library[1]})
        assert restored == poly

    def test_two_block_rewrite(self):
        # (x+y)(x+2y) with both factors in the library
        library = [P("x + y"), P("x + 2*y")]
        poly = P("x^2 + 3*x*y + 2*y^2")
        result = match_library(poly, library)
        restored = result.subs({"_u1": library[0], "_u2": library[1]})
        assert restored == poly
        # the quadratic part is fully library-expressed
        assert result.total_degree() <= 2


class TestDecomposition:
    def test_motivating_system_with_oracle_library(self):
        system = parse_system(
            ["x^2 + 6*x*y + 9*y^2", "4*x*y^2 + 12*y^3", "2*x^2*z + 6*x*y*z"]
        )
        decomposition = library_match_decomposition(system, [P("x + 3*y")])
        count = decomposition.op_count()
        # With the oracle library the rewrite lands near the paper's 8 MULT
        # result, but not exactly on it: the elimination order rewrites x
        # away *everywhere* (P3 becomes z*u1*(2*u1 - 6y) instead of
        # 2*x*z*u1), illustrating the cost-blindness of pure Groebner
        # matching that the paper's cost-driven flow avoids.
        assert count.mul <= 10
        assert count.mul < 17  # far better than direct

    def test_unused_library_blocks_dropped(self):
        system = parse_system(["x^2 + 1"])
        decomposition = library_match_decomposition(
            system, [P("q + r"), P("x^2 + 1")]
        )
        # block 1 unused; block 2 used
        assert "_u1" not in decomposition.blocks

    def test_validation_enforced(self):
        system = parse_system(["x^2 + 6*x*y + 9*y^2"])
        decomposition = library_match_decomposition(system, [P("x + 3*y")])
        decomposition.validate(list(system))  # must not raise
