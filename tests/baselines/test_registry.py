"""Tests for the method registry and its integration surface.

The round trip the issue asks for: ``register_method`` makes a method
visible in ``available_methods``, runnable through ``compare_methods``,
usable from the batch engine, and listed by the CLI.
"""

import pytest

from repro import BatchEngine, BatchJob, RunConfig, compare_methods
from repro.__main__ import main
from repro.baselines import (
    available_methods,
    direct_decomposition,
    get_method,
    is_registered,
    register_method,
    unregister_method,
)
from repro.suite import get_system


@pytest.fixture
def scratch_method():
    """Register a throwaway method, always unregistered afterwards."""
    name = "test-scratch"

    def fn(system, options=None, *, dag=None):
        """A scratch method (direct decomposition in disguise)."""
        return direct_decomposition(list(system.polys))

    register_method(name, fn)
    yield name
    unregister_method(name)


class TestRegistry:
    def test_builtins_present(self):
        names = available_methods()
        for expected in ("direct", "horner", "factor+cse", "ted", "proposed"):
            assert expected in names

    def test_get_unknown_raises_with_known_list(self):
        with pytest.raises(KeyError, match="proposed"):
            get_method("definitely-not-a-method")

    def test_duplicate_registration_rejected(self, scratch_method):
        with pytest.raises(ValueError, match="already registered"):
            register_method(scratch_method, lambda s, o=None: None)

    def test_replace_allows_override(self, scratch_method):
        def replacement(system, options=None, *, dag=None):
            return direct_decomposition(list(system.polys))

        register_method(scratch_method, replacement, replace=True)
        assert get_method(scratch_method) is replacement

    def test_decorator_form(self):
        @register_method("test-decorated")
        def decorated(system, options=None, *, dag=None):
            return direct_decomposition(list(system.polys))

        try:
            assert is_registered("test-decorated")
        finally:
            unregister_method("test-decorated")

    def test_legacy_signature_rejected(self):
        def legacy(system, options=None):
            return direct_decomposition(list(system.polys))

        # The one-release adapter for the pre-DAG signature is gone:
        # registration fails loudly, naming the required signature, and
        # leaves the registry untouched.
        with pytest.raises(TypeError, match="removed legacy signature"):
            register_method("test-legacy", legacy)
        assert not is_registered("test-legacy")

    def test_var_keyword_methods_are_not_wrapped(self):
        def flexible(system, options=None, **kwargs):
            return direct_decomposition(list(system.polys))

        register_method("test-kwargs", flexible)
        try:
            assert get_method("test-kwargs") is flexible
        finally:
            unregister_method("test-kwargs")


class TestCompareMethodsIntegration:
    def test_registered_method_runs_in_compare(self, scratch_method):
        system = get_system("Table 14.1")
        outcomes = compare_methods(system, methods=("direct", scratch_method))
        assert set(outcomes) == {"direct", scratch_method}
        assert outcomes[scratch_method].hardware.area > 0

    def test_unknown_method_warns_not_silent(self):
        system = get_system("Table 14.1")
        with pytest.warns(DeprecationWarning, match="unknown method 'bogus'"):
            outcomes = compare_methods(system, methods=("direct", "bogus"))
        assert set(outcomes) == {"direct"}

    def test_default_signature_unchanged(self):
        system = get_system("Table 14.1")
        outcomes = compare_methods(system)
        assert set(outcomes) == {"direct", "horner", "factor+cse", "proposed"}


class TestEngineIntegration:
    def test_registered_method_runs_in_engine(self, scratch_method):
        report = BatchEngine(RunConfig(workers=1)).run(
            [BatchJob(system=get_system("Table 14.1"), method=scratch_method)]
        )
        [result] = report.results
        assert result.ok and result.method == scratch_method


class TestCliIntegration:
    def test_methods_command_lists_registered(self, scratch_method, capsys):
        assert main(["methods"]) == 0
        out = capsys.readouterr().out
        assert "proposed" in out and scratch_method in out

    def test_compare_methods_flag(self, scratch_method, capsys):
        code = main(
            [
                "compare",
                "--system",
                "Table 14.1",
                "--methods",
                f"direct,{scratch_method}",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert scratch_method in out and "proposed" not in out

    def test_compare_unknown_method_errors(self, capsys):
        code = main(
            ["compare", "--system", "Table 14.1", "--methods", "nope"]
        )
        assert code == 2
        assert "unknown method" in capsys.readouterr().err
