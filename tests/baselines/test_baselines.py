"""Tests for the comparison methods (direct, Horner, factorization+CSE)."""

from repro.baselines import (
    direct_decomposition,
    factor_cse_decomposition,
    horner_baseline,
)
from repro.poly import parse_system
from repro.suite import table_14_1_system


MOTIVATING = list(table_14_1_system().polys)


class TestDirect:
    def test_paper_count(self):
        count = direct_decomposition(MOTIVATING).op_count()
        assert (count.mul, count.add) == (17, 4)

    def test_no_blocks(self):
        assert not direct_decomposition(MOTIVATING).blocks


class TestHorner:
    def test_paper_count_univariate(self):
        count = horner_baseline(MOTIVATING, mode="univariate", var="x").op_count()
        assert (count.mul, count.add) == (15, 4)

    def test_greedy_not_worse(self):
        univariate = horner_baseline(MOTIVATING, mode="univariate", var="x").op_count()
        greedy = horner_baseline(MOTIVATING, mode="greedy").op_count()
        assert greedy.weighted() <= univariate.weighted()


class TestFactorCse:
    def test_beats_direct_on_motivating(self):
        # the paper's kernel CSE column reports 12 MULT / 4 ADD; our
        # implementation must do at least as well as that bound
        count = factor_cse_decomposition(MOTIVATING).op_count()
        assert count.mul <= 12
        assert count.add <= 4

    def test_correctness(self):
        decomposition = factor_cse_decomposition(MOTIVATING)
        decomposition.validate(MOTIVATING)  # raises on mismatch

    def test_coefficient_blindness(self):
        # 2Q vs 3Q sharing is invisible to [13]: no extracted block may
        # bridge the two channels' quadratic parts.
        system = parse_system(
            ["2*x^2 + 6*x*y + 4*y^2", "3*x^2 + 9*x*y + 6*y^2"]
        )
        decomposition = factor_cse_decomposition(system)
        decomposition.validate(system)
        # cost stays at the direct-ish level: at least 3 multipliers of
        # variable pairs remain in each channel after cube sharing
        count = decomposition.op_count()
        assert count.variable_mul >= 3
