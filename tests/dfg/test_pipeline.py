"""Tests for DFG pipelining."""

import pytest

from repro.dfg import (
    DataFlowGraph,
    build_dfg,
    critical_path,
    pipeline_cuts,
    pipeline_report,
)
from repro.cost import node_delay as cost_node_delay
from repro.expr import Decomposition, make_pow
from repro.rings import BitVectorSignature

SIG = BitVectorSignature.uniform(("x", "y"), 16)


def chain(depth):
    d = Decomposition()
    d.outputs = [make_pow("x", depth + 1)]  # depth multipliers in a chain
    return build_dfg(d, SIG)


class TestCuts:
    def test_no_cut_needed_when_target_large(self):
        g = chain(3)
        delay, _ = critical_path(g, lambda n: cost_node_delay(g, n))
        assert pipeline_cuts(g, delay + 1) == ()

    def test_cut_count_grows_as_target_shrinks(self):
        g = chain(6)
        delay, _ = critical_path(g, lambda n: cost_node_delay(g, n))
        few = len(pipeline_cuts(g, delay / 2))
        many = len(pipeline_cuts(g, delay / 4))
        assert many >= few >= 1

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            pipeline_cuts(chain(2), 0)

    def test_empty_graph(self):
        assert pipeline_cuts(DataFlowGraph(output_width=8), 10.0) == ()


class TestReport:
    def test_registers_counted(self):
        g = chain(4)
        delay, _ = critical_path(g, lambda n: cost_node_delay(g, n))
        report = pipeline_report(g, delay / 2)
        assert report.stages >= 2
        assert report.registers > 0
        assert report.register_area > 0

    def test_stage_delay_below_unpipelined(self):
        g = chain(6)
        delay, _ = critical_path(g, lambda n: cost_node_delay(g, n))
        report = pipeline_report(g, delay / 3)
        assert report.stage_delay < delay

    def test_single_stage_when_fits(self):
        g = chain(2)
        delay, _ = critical_path(g, lambda n: cost_node_delay(g, n))
        report = pipeline_report(g, delay + 1)
        assert report.stages == 1 and report.registers == 0

    def test_str(self):
        g = chain(3)
        assert "stage" in str(pipeline_report(g, 50.0))
