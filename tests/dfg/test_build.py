"""Tests for lowering decompositions to dataflow graphs."""

import pytest

from repro.dfg import NodeKind, build_dfg
from repro.expr import Decomposition, make_add, make_mul, make_pow
from repro.expr.ast import BlockRef
from repro.rings import BitVectorSignature

SIG = BitVectorSignature.uniform(("x", "y", "z"), 16)


def lower(*outputs, blocks=None):
    d = Decomposition()
    for name, expr in (blocks or {}).items():
        d.blocks[name] = expr
    d.outputs = list(outputs)
    return build_dfg(d, SIG)


class TestLowering:
    def test_constant_multiplier_used(self):
        g = lower(make_mul(6, "x", "y"))
        assert g.count(NodeKind.MUL) == 1
        assert g.count(NodeKind.CMUL) == 1

    def test_pow_chain(self):
        g = lower(make_pow("x", 3))
        assert g.count(NodeKind.MUL) == 2

    def test_subtraction_via_negated_operand(self):
        g = lower(make_add("x", make_mul(-1, "y")))
        assert g.count(NodeKind.SUB) == 1
        assert g.count(NodeKind.ADD) == 0
        assert g.count(NodeKind.CMUL) == 0

    def test_negative_coefficient_folds_into_sub(self):
        # x - 3y: one SUB, one CMUL(3), no CMUL(-3)
        g = lower(make_add("x", make_mul(-3, "y")))
        assert g.count(NodeKind.SUB) == 1
        cmuls = [n for n in g.nodes if n.kind == NodeKind.CMUL]
        assert len(cmuls) == 1 and cmuls[0].value == 3

    def test_balanced_adder_tree(self):
        from repro.dfg import asap_levels

        g = lower(make_add("x", "y", "z", 1))
        levels = asap_levels(g)
        assert max(levels.values()) == 2  # 4 operands -> depth 2


class TestBlockSharing:
    def test_block_lowered_once(self):
        blocks = {"d": make_add("x", make_mul(3, "y"))}
        g = lower(
            make_pow(BlockRef("d"), 2),
            make_mul(4, BlockRef("d")),
            blocks=blocks,
        )
        # one ADD for the block body (plus its CMUL), shared by both outputs
        assert g.count(NodeKind.ADD) == 1

    def test_undefined_block(self):
        with pytest.raises(KeyError):
            lower(BlockRef("missing"))

    def test_cyclic_block(self):
        d = Decomposition()
        d.blocks["a"] = BlockRef("b")
        d.blocks["b"] = BlockRef("a")
        d.outputs = [BlockRef("a")]
        with pytest.raises(ValueError, match="cyclic"):
            build_dfg(d, SIG)


class TestInputWidths:
    def test_declared_width_used(self):
        sig = BitVectorSignature((("x", 8),), 16)
        d = Decomposition()
        d.outputs = [make_mul("x", "x")]
        g = build_dfg(d, sig)
        inputs = [n for n in g.nodes if n.kind == NodeKind.INPUT]
        assert inputs[0].width == 8
        muls = [n for n in g.nodes if n.kind == NodeKind.MUL]
        assert muls[0].width == 16

    def test_unknown_variable_defaults_to_output_width(self):
        d = Decomposition()
        d.outputs = [make_mul("q", "q")]
        g = build_dfg(d, SIG)
        inputs = [n for n in g.nodes if n.kind == NodeKind.INPUT]
        assert inputs[0].width == 16
