"""Tests for ALAP, mobility, and resource-constrained list scheduling."""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.dfg import (
    NodeKind,
    alap_levels,
    asap_levels,
    build_dfg,
    list_schedule,
    mobility,
    resource_class,
)
from repro.expr import Decomposition, expr_from_polynomial
from repro.rings import BitVectorSignature
from tests.conftest import polynomials

SIG = BitVectorSignature.uniform(("x", "y", "z"), 16)


def graph_of(poly):
    d = Decomposition()
    d.outputs = [expr_from_polynomial(poly)]
    return build_dfg(d, SIG)


def parallel_muls(n=4):
    """n independent multiplications summed."""
    from repro.expr import make_add, make_mul

    d = Decomposition()
    variables = ["x", "y", "z"]
    terms = [make_mul(variables[i % 3], variables[(i + 1) % 3]) for i in range(n)]
    d.outputs = [make_add(*terms)]
    return build_dfg(d, SIG)


class TestAlap:
    def test_alap_at_critical_path(self):
        g = parallel_muls()
        asap = asap_levels(g)
        depth = max(asap[i] for i in g.outputs)
        alap = alap_levels(g, depth)
        for node in g.nodes:
            assert alap[node.index] >= asap[node.index]

    def test_bound_below_critical_rejected(self):
        g = parallel_muls()
        with pytest.raises(ValueError):
            alap_levels(g, 0)

    def test_mobility_zero_on_critical_path(self):
        g = parallel_muls()
        slack = mobility(g)
        assert any(s == 0 for s in slack.values())
        assert all(s >= 0 for s in slack.values())


class TestListSchedule:
    def test_unlimited_resources_reach_asap(self):
        g = parallel_muls(4)
        schedule = list_schedule(g, {})
        asap = asap_levels(g)
        depth = max(asap[i] for i in g.outputs)
        assert schedule.latency == depth

    def test_single_multiplier_serializes(self):
        g = parallel_muls(4)
        schedule = list_schedule(g, {"mul": 1})
        mul_cycles = [
            cycle
            for index, cycle in schedule.cycles.items()
            if g.nodes[index].kind == NodeKind.MUL
        ]
        assert len(mul_cycles) == len(set(mul_cycles)), "two muls share a unit"
        assert schedule.latency >= 4

    def test_two_multipliers_halve(self):
        g = parallel_muls(4)
        one = list_schedule(g, {"mul": 1}).latency
        two = list_schedule(g, {"mul": 2}).latency
        assert two < one

    def test_invalid_resource_count(self):
        g = parallel_muls(2)
        with pytest.raises(ValueError):
            list_schedule(g, {"mul": 0})

    def test_resource_class_mapping(self):
        g = parallel_muls(1)
        for node in g.nodes:
            if node.is_operator():
                assert resource_class(node) in ("mul", "add")
            else:
                assert resource_class(node) is None

    @settings(max_examples=25, deadline=None)
    @given(
        polynomials(max_terms=5, max_exp=3, max_coeff=9),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=1, max_value=3),
    )
    def test_schedule_invariants(self, poly, muls, adds):
        if poly.is_zero:
            return
        g = graph_of(poly)
        schedule = list_schedule(g, {"mul": muls, "add": adds})
        # dependencies respected
        for index, cycle in schedule.cycles.items():
            for op in g.nodes[index].operands:
                if g.nodes[op].is_operator():
                    assert schedule.cycles[op] < cycle
        # resource bounds respected
        usage: dict[tuple[int, str], int] = {}
        for index, cycle in schedule.cycles.items():
            klass = resource_class(g.nodes[index])
            key = (cycle, klass)
            usage[key] = usage.get(key, 0) + 1
        for (cycle, klass), used in usage.items():
            limit = {"mul": muls, "add": adds}[klass]
            assert used <= limit
