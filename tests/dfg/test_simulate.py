"""Tests for bit-accurate DFG simulation."""

import pytest
from hypothesis import given, settings
import hypothesis.strategies as st

from repro.dfg import build_dfg, simulate
from repro.expr import Decomposition, expr_from_polynomial
from repro.rings import BitVectorSignature
from tests.conftest import polynomials

SIG = BitVectorSignature.uniform(("x", "y", "z"), 16)


class TestSimulate:
    def test_simple_expression(self):
        from repro.expr import make_add, make_mul

        d = Decomposition()
        d.outputs = [make_add(make_mul(3, "x"), "y")]
        graph = build_dfg(d, SIG)
        assert simulate(graph, {"x": 2, "y": 5}) == [11]

    def test_wraparound(self):
        from repro.expr import make_pow

        d = Decomposition()
        d.outputs = [make_pow("x", 2)]
        graph = build_dfg(d, SIG)
        assert simulate(graph, {"x": 256}) == [0]  # 2^16 wraps to 0

    def test_missing_input(self):
        from repro.expr import make_mul

        d = Decomposition()
        d.outputs = [make_mul("x", "y")]
        graph = build_dfg(d, SIG)
        with pytest.raises(KeyError, match="no value for input"):
            simulate(graph, {"x": 1})

    @settings(max_examples=40)
    @given(
        polynomials(max_terms=5, max_exp=3, max_coeff=20),
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=0, max_value=1000),
    )
    def test_matches_polynomial_mod(self, poly, x, y, z):
        """Hardware semantics == polynomial semantics mod 2^m."""
        d = Decomposition()
        d.outputs = [expr_from_polynomial(poly)]
        graph = build_dfg(d, SIG)
        env = {"x": x, "y": y, "z": z}
        assert simulate(graph, env) == [poly.evaluate_mod(env, 1 << 16)]
