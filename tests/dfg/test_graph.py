"""Tests for the dataflow graph structure."""

from repro.dfg import DataFlowGraph, NodeKind


def make_graph(width=16):
    return DataFlowGraph(output_width=width)


class TestInterning:
    def test_inputs_shared_globally(self):
        g = make_graph()
        g.region = "output:0"
        a = g.add_input("x", 16)
        g.region = "output:1"
        b = g.add_input("x", 16)
        assert a == b

    def test_operators_shared_within_region(self):
        g = make_graph()
        g.region = "output:0"
        x = g.add_input("x", 16)
        m1 = g.add_op(NodeKind.MUL, (x, x))
        m2 = g.add_op(NodeKind.MUL, (x, x))
        assert m1 == m2

    def test_operators_not_shared_across_regions(self):
        g = make_graph()
        g.region = "output:0"
        x = g.add_input("x", 16)
        m1 = g.add_op(NodeKind.MUL, (x, x))
        g.region = "output:1"
        m2 = g.add_op(NodeKind.MUL, (x, x))
        assert m1 != m2

    def test_commutative_canonicalization(self):
        g = make_graph()
        x = g.add_input("x", 16)
        y = g.add_input("y", 16)
        assert g.add_op(NodeKind.ADD, (x, y)) == g.add_op(NodeKind.ADD, (y, x))
        assert g.add_op(NodeKind.MUL, (x, y)) == g.add_op(NodeKind.MUL, (y, x))

    def test_sub_not_commutative(self):
        g = make_graph()
        x = g.add_input("x", 16)
        y = g.add_input("y", 16)
        assert g.add_op(NodeKind.SUB, (x, y)) != g.add_op(NodeKind.SUB, (y, x))


class TestWidths:
    def test_add_grows_one_bit(self):
        g = make_graph(32)
        x = g.add_input("x", 8)
        y = g.add_input("y", 8)
        node = g.add_op(NodeKind.ADD, (x, y))
        assert g.nodes[node].width == 9

    def test_mul_sums_widths(self):
        g = make_graph(32)
        x = g.add_input("x", 8)
        node = g.add_op(NodeKind.MUL, (x, x))
        assert g.nodes[node].width == 16

    def test_clipped_at_output_width(self):
        g = make_graph(16)
        x = g.add_input("x", 16)
        node = g.add_op(NodeKind.MUL, (x, x))
        assert g.nodes[node].width == 16

    def test_const_width(self):
        g = make_graph(16)
        assert g.nodes[g.add_const(255)].width == 8
        assert g.nodes[g.add_const(-4)].width == 4


class TestStats:
    def test_census(self):
        g = make_graph()
        x = g.add_input("x", 16)
        g.mark_output(g.add_op(NodeKind.MUL, (x, x)))
        stats = g.stats()
        assert stats["mul"] == 1 and stats["input"] == 1
        assert g.count(NodeKind.ADD) == 0
