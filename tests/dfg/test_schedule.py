"""Tests for ASAP levels and critical-path extraction."""

from repro.dfg import DataFlowGraph, NodeKind, asap_levels, critical_path


def chain_graph(length=4):
    g = DataFlowGraph(output_width=16)
    node = g.add_input("x", 16)
    for _ in range(length):
        node = g.add_op(NodeKind.MUL, (node, g.add_input("y", 16)))
    g.mark_output(node)
    return g


class TestAsap:
    def test_chain_levels(self):
        g = chain_graph(3)
        levels = asap_levels(g)
        assert max(levels.values()) == 3

    def test_inputs_level_zero(self):
        g = chain_graph(2)
        levels = asap_levels(g)
        for node in g.nodes:
            if node.kind == NodeKind.INPUT:
                assert levels[node.index] == 0


class TestCriticalPath:
    def test_unit_delays(self):
        g = chain_graph(4)
        delay, path = critical_path(g, lambda node: 1.0 if node.is_operator() else 0.0)
        assert delay == 4.0
        assert path[-1] == g.outputs[0]

    def test_weighted_delays(self):
        g = DataFlowGraph(output_width=16)
        x = g.add_input("x", 16)
        cheap = g.add_op(NodeKind.ADD, (x, x))
        dear = g.add_op(NodeKind.MUL, (x, x))
        top = g.add_op(NodeKind.ADD, (cheap, dear))
        g.mark_output(top)
        delay, path = critical_path(
            g,
            lambda node: {NodeKind.MUL: 10.0, NodeKind.ADD: 1.0}.get(node.kind, 0.0),
        )
        assert delay == 11.0
        assert g.nodes[path[-2]].kind == NodeKind.MUL

    def test_empty_outputs(self):
        g = DataFlowGraph(output_width=16)
        assert critical_path(g, lambda n: 1.0) == (0.0, [])
