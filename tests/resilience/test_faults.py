"""Tests for the deterministic fault-injection harness."""

import time

import pytest

from repro.testing import (
    ENV_VAR,
    FaultSpec,
    InjectedFault,
    current_attempt,
    fault_point,
    parse_faults,
    use_attempt,
)


class TestParsing:
    def test_simple_spec(self):
        (spec,) = parse_faults("hang@job:batch-07")
        assert spec.action == "hang"
        assert spec.site == "job:batch-07"
        assert spec.params == ()

    def test_params_split_off_the_site(self):
        (spec,) = parse_faults("delay@phase:cce:seconds=0.2,attempts=2")
        assert spec.site == "phase:cce"
        assert spec.get("seconds") == "0.2"
        assert spec.attempts == 2

    def test_site_may_contain_colons(self):
        (spec,) = parse_faults("raise@job:SG 4X2:message=boom")
        assert spec.site == "job:SG 4X2"
        assert spec.get("message") == "boom"

    def test_multiple_specs(self):
        specs = parse_faults("crash@job:a;hang@job:b;  ;raise@*")
        assert [s.action for s in specs] == ["crash", "hang", "raise"]
        assert specs[2].site == "*"

    def test_round_trips_through_str(self):
        for raw in ("crash@job:x:code=9", "delay@*:seconds=0.1,attempts=3"):
            (spec,) = parse_faults(raw)
            assert parse_faults(str(spec)) == (spec,)

    def test_rejects_unknown_action(self):
        with pytest.raises(ValueError):
            parse_faults("explode@job:x")

    def test_rejects_missing_site(self):
        with pytest.raises(ValueError):
            parse_faults("hang@")
        with pytest.raises(ValueError):
            parse_faults("hang")

    def test_default_attempts_is_one(self):
        (spec,) = parse_faults("crash@job:x")
        assert spec.attempts == 1

    def test_key_value_only_segment_is_kept_as_site(self):
        # A site that itself looks like key=value must not be consumed.
        (spec,) = parse_faults("raise@a=b")
        assert spec.site == "a=b"
        assert spec.params == ()


class TestFaultPoint:
    def test_noop_when_env_unset(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        fault_point("job:anything")  # must not raise

    def test_raise_action(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "raise@phase:search:message=boom")
        with pytest.raises(InjectedFault, match="boom"):
            fault_point("phase:search")
        fault_point("phase:cce")  # other sites unaffected

    def test_fnmatch_patterns(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "raise@job:batch-*")
        with pytest.raises(InjectedFault):
            fault_point("job:batch-13")
        fault_point("job:other")

    def test_delay_action_sleeps(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "delay@job:slow:seconds=0.05")
        start = time.perf_counter()
        fault_point("job:slow")
        assert time.perf_counter() - start >= 0.05

    def test_attempt_gating(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "raise@job:flaky")
        assert current_attempt() == 0
        with pytest.raises(InjectedFault):
            fault_point("job:flaky")
        with use_attempt(1):
            assert current_attempt() == 1
            fault_point("job:flaky")  # gated off on the retry
        with pytest.raises(InjectedFault):
            fault_point("job:flaky")  # attempt restored to 0

    def test_attempts_param_keeps_firing(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "raise@job:always:attempts=3")
        for attempt in range(3):
            with use_attempt(attempt), pytest.raises(InjectedFault):
                fault_point("job:always")
        with use_attempt(3):
            fault_point("job:always")

    def test_cache_follows_env_changes(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "raise@job:x")
        with pytest.raises(InjectedFault):
            fault_point("job:x")
        monkeypatch.setenv(ENV_VAR, "raise@job:y")
        fault_point("job:x")
        with pytest.raises(InjectedFault):
            fault_point("job:y")

    def test_default_message_names_the_site(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "raise@job:named")
        with pytest.raises(InjectedFault, match="job:named"):
            fault_point("job:named")


class TestSpecAccessors:
    def test_get_returns_default_for_missing_key(self):
        spec = FaultSpec("delay", "job:x", (("seconds", "1"),))
        assert spec.get("seconds") == "1"
        assert spec.get("missing") is None
        assert spec.get("missing", "7") == "7"
