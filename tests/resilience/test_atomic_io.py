"""Crash-simulation tests for the shared atomic-write primitive and the
on-disk writers that use it (cache entries, corpus files, WAL snapshots
are covered in tests/service)."""

import json
import os

import pytest

from repro.engine import DiskCache
from repro.ioutil import atomic_write_text


class TestAtomicWriteText:
    def test_round_trip(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_text(target, '{"v": 1}')
        assert target.read_text() == '{"v": 1}'

    def test_overwrites_atomically(self, tmp_path):
        target = tmp_path / "out.json"
        target.write_text("old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_no_temp_files_left_behind(self, tmp_path):
        target = tmp_path / "out.json"
        for index in range(5):
            atomic_write_text(target, f"v{index}")
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_failure_cleans_up_and_raises(self, tmp_path):
        # A directory at the target path makes os.replace fail.
        target = tmp_path / "collision"
        target.mkdir()
        (target / "keep").write_text("x")
        with pytest.raises(OSError):
            atomic_write_text(target, "data")
        assert (target / "keep").read_text() == "x"  # target untouched
        assert [p.name for p in tmp_path.iterdir()] == ["collision"]

    def test_fsync_variant_also_round_trips(self, tmp_path):
        target = tmp_path / "durable.json"
        atomic_write_text(target, "synced", fsync=True)
        assert target.read_text() == "synced"


class TestCacheCrashSimulation:
    def test_truncated_cache_entry_is_a_miss(self, tmp_path):
        """A torn write (crash mid-write of a cache entry) must read as a
        miss, never as a half-result."""
        cache = DiskCache(tmp_path)
        payload = json.dumps({"kind": "job-result", "big": "x" * 4096})
        cache.put("k" * 64, payload)
        assert cache.get("k" * 64) == payload
        # Simulate the crash: truncate the entry file mid-content.
        [entry] = [p for p in tmp_path.iterdir() if p.is_file()]
        with open(entry, "r+b") as handle:
            handle.truncate(os.path.getsize(entry) // 2)
        assert cache.get("k" * 64) is None  # a miss, not an exception

    def test_put_is_atomic_under_concurrent_read(self, tmp_path):
        """After atomic publication the reader sees old or new, never a
        mix — modelled by overwriting and checking full payloads."""
        cache = DiskCache(tmp_path)
        old = json.dumps({"v": "old" * 100})
        new = json.dumps({"v": "new" * 100})
        cache.put("a" * 64, old)
        cache.put("a" * 64, new)
        assert cache.get("a" * 64) in (old, new)
        assert cache.get("a" * 64) == new


class TestCorpusAtomicWrite:
    def test_corpus_entry_is_complete_json(self, tmp_path):
        from repro.fuzz.corpus import write_corpus_entry
        from repro.fuzz.generator import FuzzCase
        from tests.service.test_service import tiny_system

        case = FuzzCase(system=tiny_system(3), shape="tiny", seed=0, index=0)
        path = write_corpus_entry(tmp_path, case, findings=[])
        data = json.loads(path.read_text())
        assert data  # parseable, complete
        assert [p.suffix for p in tmp_path.iterdir()] == [".json"]
