"""End-to-end fault tolerance of the batch engine.

Faults are injected deterministically through ``REPRO_FAULTS``
(:mod:`repro.testing.faults`); the environment variable is inherited by
pool workers, so injected crashes and hangs happen inside real child
processes.  ``crash`` faults are only ever used with pooled engines —
in serial mode they would kill the test process itself.
"""

import time

import pytest

from repro.config import RetryPolicy, RunConfig
from repro.core import Budget
from repro.engine import BatchEngine, BatchJob
from repro.suite import get_system
from repro.testing import ENV_VAR
from repro.verify import check_systems

#: Fast backoff so retry tests do not sleep for real.
FAST_RETRY = RetryPolicy(max_retries=2, backoff_seconds=0.01, jitter=0.0)


def job(name, system="Quad", method="proposed"):
    return BatchJob(system=get_system(system), method=method, name=name)


class TestCrashRetry:
    def test_crashed_worker_is_respawned_and_job_retried(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "crash@job:victim")
        engine = BatchEngine(RunConfig(workers=2, retry=FAST_RETRY))
        report = engine.run([job("victim"), job("bystander", "MVCS")])
        assert report.retries >= 1
        by_name = {r.name: r for r in report.results}
        victim = by_name["victim"]
        assert victim.ok, victim.error
        assert victim.attempts >= 2
        assert victim.decomposition is not None
        assert by_name["bystander"].ok

    def test_bystanders_survive_the_broken_pool(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "crash@job:victim")
        engine = BatchEngine(RunConfig(workers=2, retry=FAST_RETRY))
        report = engine.run(
            [job("victim"), job("b1", "MVCS"), job("b2", "Mixer", "horner")]
        )
        assert all(r.ok for r in report.results), [r.error for r in report.results]


class TestRetriesExhausted:
    def test_error_preserved_when_retries_run_out(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "raise@job:doomed:attempts=99,message=kaboom")
        engine = BatchEngine(
            RunConfig(retry=RetryPolicy(max_retries=1, backoff_seconds=0.01))
        )
        report = engine.run([job("doomed")])
        (result,) = report.results
        assert result.ok is False
        assert "InjectedFault" in result.error and "kaboom" in result.error
        assert result.attempts == 2  # first try + one retry
        assert report.retries == 1

    def test_transient_failure_recovers_in_serial_mode(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "raise@job:flaky")  # attempt 0 only
        engine = BatchEngine(RunConfig(retry=FAST_RETRY))
        report = engine.run([job("flaky")])
        (result,) = report.results
        assert result.ok
        assert result.attempts == 2
        assert report.retries == 1

    def test_errors_are_not_cached(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "raise@job:doomed:attempts=99")
        engine = BatchEngine(
            RunConfig(retry=RetryPolicy(max_retries=0, breaker_threshold=0))
        )
        assert not engine.run([job("doomed")]).results[0].ok
        monkeypatch.delenv(ENV_VAR)
        report = engine.run([job("doomed")])
        assert report.results[0].ok
        assert report.cache_hits == 0  # the failure was never stored


class TestTimeouts:
    def test_hung_worker_is_killed_and_job_degraded(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "hang@job:stuck")
        engine = BatchEngine(
            RunConfig(
                workers=2,
                retry=RetryPolicy(
                    max_retries=1, backoff_seconds=0.01, job_timeout_seconds=2.0
                ),
            )
        )
        start = time.perf_counter()
        report = engine.run([job("stuck"), job("fine", "MVCS")])
        elapsed = time.perf_counter() - start
        assert report.timeouts == 1
        by_name = {r.name: r for r in report.results}
        stuck = by_name["stuck"]
        assert stuck.ok
        assert stuck.timed_out
        assert stuck.degraded
        assert any(d.action == "degraded-rerun" for d in stuck.degradations)
        assert stuck.decomposition is not None
        system = get_system("Quad")
        assert check_systems(
            stuck.decomposition.to_polynomials(),
            list(system.polys),
            system.signature,
        )
        assert by_name["fine"].ok and not by_name["fine"].timed_out
        # The hang was cut at the 2 s timeout, not served in full.
        assert elapsed < 60.0

    def test_degraded_results_are_not_cached(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "hang@job:stuck")
        config = RunConfig(
            workers=2,
            retry=RetryPolicy(
                max_retries=0, backoff_seconds=0.01, job_timeout_seconds=2.0
            ),
        )
        engine = BatchEngine(config)
        first = engine.run([job("stuck"), job("fine", "MVCS")])
        assert first.timeouts == 1
        monkeypatch.delenv(ENV_VAR)
        second = engine.run([job("stuck"), job("fine", "MVCS")])
        by_name = {r.name: r for r in second.results}
        # The clean bystander was cached; the degraded victim re-executed
        # and came back clean this time.
        assert by_name["fine"].cache_hit
        assert not by_name["stuck"].cache_hit
        assert by_name["stuck"].ok and not by_name["stuck"].degraded


class TestExpiredDeadline:
    def test_expired_budget_falls_back_immediately(self):
        engine = BatchEngine(RunConfig(budget=Budget(job_seconds=0.0)))
        start = time.perf_counter()
        report = engine.run([job("b1"), job("b2", "MVCS")])
        elapsed = time.perf_counter() - start
        for result in report.results:
            assert result.ok
            assert result.degraded
            assert any(
                d.action == "expired-at-start" for d in result.degradations
            )
            assert result.decomposition is not None
        assert elapsed < 10.0


class TestCircuitBreaker:
    def test_repeat_offender_is_routed_to_degraded_path(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "raise@job:offender")  # attempt 0 only
        engine = BatchEngine(
            RunConfig(
                retry=RetryPolicy(
                    max_retries=0, backoff_seconds=0.01, breaker_threshold=1
                )
            )
        )
        first = engine.run([job("offender")])
        assert not first.results[0].ok  # breaker was closed: job really ran
        second = engine.run([job("offender")])
        (result,) = second.results
        # Breaker open: degraded in-process rerun at a higher attempt,
        # where the attempt-gated fault no longer fires.
        assert result.ok
        assert any("circuit breaker" in d.reason for d in result.degradations)
        assert second.pool.degraded == 1

    def test_success_resets_the_breaker(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "raise@job:flaky")  # attempt 0 only
        engine = BatchEngine(RunConfig(retry=FAST_RETRY))
        assert engine.run([job("flaky")]).results[0].ok
        assert engine._breaker.get("flaky") is None


class TestPoolFallback:
    def test_pool_creation_failure_is_loud(self, monkeypatch, caplog):
        import repro.engine.engine as engine_mod

        def refuse(*args, **kwargs):
            raise OSError("no forks today")

        monkeypatch.setattr(engine_mod, "ProcessPoolExecutor", refuse)
        engine = BatchEngine(RunConfig(workers=2))
        with caplog.at_level("WARNING", logger="repro.engine"):
            report = engine.run([job("a"), job("b", "MVCS")])
        assert all(r.ok for r in report.results)
        assert report.pool.mode == "fallback"
        assert report.pool.fallbacks == 1
        assert "no forks today" in report.pool.fallback_reason
        assert "process pool unavailable" in caplog.text
        assert "pool fallback reason" in report.summary_table()


class TestChaosAcceptance:
    """The PR's acceptance scenario: a 20-job batch with one injected
    hang and one injected crash completes — hung job degraded but valid,
    crashed job retried to success — within twice the clean wall time
    (plus fixed slack for pool respawns on slow CI)."""

    SYSTEMS = ["Quad", "MVCS", "Mixer", "Table 14.1", "Section 14.3.1"]
    METHODS = ["proposed", "horner", "factor+cse", "direct"]

    def _jobs(self):
        return [
            job(
                f"batch-{i:02d}",
                self.SYSTEMS[i % len(self.SYSTEMS)],
                self.METHODS[i // len(self.SYSTEMS) % len(self.METHODS)],
            )
            for i in range(20)
        ]

    def _config(self):
        return RunConfig(
            workers=4,
            retry=RetryPolicy(
                max_retries=2, backoff_seconds=0.01, jitter=0.0,
                job_timeout_seconds=2.5,
            ),
        )

    @pytest.mark.slow
    def test_hostile_batch_completes(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        clean_start = time.perf_counter()
        clean = BatchEngine(self._config()).run(self._jobs())
        clean_seconds = time.perf_counter() - clean_start
        assert all(r.ok for r in clean.results)
        assert clean.timeouts == 0 and clean.retries == 0

        # The hang persists across pooled attempts (attempts=99) so the
        # outcome is deterministic even if the crash breaks the pool
        # while the hung job is in flight and forces it onto a retry;
        # the degraded in-process rerun is fault-immune by design.
        monkeypatch.setenv(
            ENV_VAR, "hang@job:batch-03:attempts=99;crash@job:batch-11"
        )
        chaos_start = time.perf_counter()
        chaos = BatchEngine(self._config()).run(self._jobs())
        chaos_seconds = time.perf_counter() - chaos_start

        assert len(chaos.results) == 20
        assert all(r.ok for r in chaos.results), [
            (r.name, r.error) for r in chaos.results if not r.ok
        ]
        assert chaos.timeouts == 1
        assert chaos.retries >= 1

        by_name = {r.name: r for r in chaos.results}
        hung = by_name["batch-03"]
        assert hung.timed_out and hung.degraded
        assert hung.decomposition is not None
        system = get_system(self.SYSTEMS[3])
        assert check_systems(
            hung.decomposition.to_polynomials(),
            list(system.polys),
            system.signature,
        )
        crashed = by_name["batch-11"]
        assert crashed.attempts >= 2
        assert not crashed.degraded

        # Wall-time bound: 2x clean plus fixed slack for the pool
        # respawn and the hard-timeout wait on loaded CI machines.
        assert chaos_seconds <= 2.0 * clean_seconds + 10.0, (
            f"chaos batch took {chaos_seconds:.1f}s "
            f"vs clean {clean_seconds:.1f}s"
        )
