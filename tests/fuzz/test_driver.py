"""The differential driver: clean sweeps, injected bugs, skip semantics."""

from types import SimpleNamespace

import pytest

import repro.fuzz.driver as driver_module
from repro.baselines import register_method, unregister_method
from repro.errors import Unsupported
from repro.fuzz import (
    DEFAULT_STRATEGIES,
    FuzzConfig,
    check_case,
    generate_case,
    method_labels,
    run_fuzz,
)

#: A fast lineup for tests that exercise driver mechanics, not methods.
FAST = ("direct", "horner")


def fast_config(**overrides) -> FuzzConfig:
    defaults = dict(
        seed=0, iterations=4, methods=FAST,
        shapes=("single-variable", "unstructured"), check_cost=False,
    )
    defaults.update(overrides)
    return FuzzConfig(**defaults)


class TestLineup:
    def test_proposed_expands_to_strategies(self):
        labels = method_labels(FuzzConfig(methods=("direct", "proposed")))
        assert labels[0] == "direct"
        assert set(labels[1:]) == {
            f"proposed[{s.label}]" for s in DEFAULT_STRATEGIES
        }

    def test_explicit_methods_respected(self):
        assert method_labels(fast_config()) == FAST


class TestCleanSweep:
    def test_shipped_code_has_no_findings(self):
        report = run_fuzz(fast_config())
        assert report.ok and report.cases == 4
        assert report.methods_run == 4 * len(FAST)
        assert not report.truncated

    def test_summary_is_deterministic(self):
        first = run_fuzz(fast_config())
        second = run_fuzz(fast_config())
        assert first.summary() == second.summary()
        assert first.digest == second.digest

    def test_time_budget_truncates_loudly(self):
        report = run_fuzz(fast_config(iterations=50, time_budget=0.0))
        assert report.truncated and report.cases == 0
        assert "time budget hit" in report.summary()

    def test_metrics_counters_advance(self):
        from repro.obs import get_registry

        registry = get_registry()

        def total(name):
            return sum(
                sample.value
                for sample in registry.collect()
                if sample.name == name
            )

        before = total("repro_fuzz_cases")
        run_fuzz(fast_config(iterations=2))
        assert total("repro_fuzz_cases") == before + 2


class TestInjectedMiscompile:
    def test_miscompile_is_caught_with_witness(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "miscompile@fuzz:horner")
        report = run_fuzz(fast_config())
        assert not report.ok
        assert {f.method for f in report.findings} == {"horner"}
        for finding in report.findings:
            assert finding.kind == "differential"
            assert finding.counterexample is not None

    def test_injected_findings_are_deterministic(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "miscompile@fuzz:direct")
        first = run_fuzz(fast_config()).summary()
        second = run_fuzz(fast_config()).summary()
        assert first == second

    def test_miscompile_shrinks_and_archives(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_FAULTS", "miscompile@fuzz:horner")
        config = fast_config(
            iterations=1, shrink=True, corpus_dir=str(tmp_path),
            max_shrink_evaluations=60,
        )
        report = run_fuzz(config)
        assert not report.ok
        assert report.shrunk  # case_id -> reproducer path
        files = list(tmp_path.glob("*.json"))
        assert len(files) == 1
        from repro.fuzz import load_corpus_entry

        entry = load_corpus_entry(files[0])
        assert entry["expect"] == "fail"
        assert entry["shrunk"] is not None


class TestSkipAndCrash:
    @pytest.fixture
    def temp_method(self):
        registered: list[str] = []

        def _register(name, fn):
            register_method(name, fn)
            registered.append(name)

        yield _register
        for name in registered:
            unregister_method(name)

    def test_unsupported_is_a_skip_not_a_finding(self, temp_method):
        def refuses(system, options=None, *, dag=None):
            raise Unsupported("refuses", "test-only input class")

        temp_method("refuses", refuses)
        config = fast_config(methods=("direct", "refuses"), iterations=2)
        report = run_fuzz(config)
        assert report.ok
        assert report.skips == 2
        assert report.methods_run == 2  # only direct actually ran

    def test_other_exceptions_are_crash_findings(self, temp_method):
        def explodes(system, options=None, *, dag=None):
            raise RuntimeError("kaboom")

        temp_method("explodes", explodes)
        config = fast_config(methods=("explodes",), iterations=1)
        report = run_fuzz(config)
        assert [f.kind for f in report.findings] == ["crash"]
        assert "kaboom" in report.findings[0].detail


class TestCostOracle:
    def test_area_regression_is_a_finding(self, monkeypatch):
        real = driver_module.estimate_decomposition

        def skewed(decomposition, signature):
            report = real(decomposition, signature)
            if decomposition.method != "direct":
                return SimpleNamespace(area=report.area * 10)
            return report

        monkeypatch.setattr(driver_module, "estimate_decomposition", skewed)
        case = generate_case(0, 0, shapes=("unstructured",))
        config = FuzzConfig(
            methods=("direct", "proposed"),
            strategies=(DEFAULT_STRATEGIES[0],),  # area only
            check_cost=True,
        )
        result = check_case(case, config)
        kinds = {f.kind for f in result.findings}
        assert kinds == {"cost"}
        assert result.findings[0].method == "proposed[area]"

    def test_no_cost_check_without_direct_baseline(self):
        # Without "direct" in the lineup there is no reference area, so
        # the cost oracle must stay silent rather than crash.
        case = generate_case(0, 0, shapes=("single-variable",))
        config = FuzzConfig(
            methods=("proposed",), strategies=(DEFAULT_STRATEGIES[0],),
            check_cost=True,
        )
        result = check_case(case, config)
        assert result.ok
