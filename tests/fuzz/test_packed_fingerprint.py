"""Corpus replay: packed and tuple kernels yield identical results.

The packed-monomial fast path is a pure representation change — ISSUE 10
requires the synthesis output to be *byte-identical* with the fast path
on and off, not merely cost-equivalent.  Every archived fuzz case is
replayed through the full flow twice (``REPRO_PACKED`` forced on, then
off, with the process caches cleared in between so nothing computed in
one mode leaks into the other) and the results are fingerprinted over
the block definitions, the output expressions, and the operator counts.
Both cse modes run: ``rectangle`` drives the exact extractor the packed
port rewrote; ``dag`` drives the DAG-priced search above it.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import pytest

from repro.api import clear_caches
from repro.core import SynthesisOptions, synthesize
from repro.fuzz import entry_case, load_corpus_entry
from repro.poly.packed import set_packed_enabled

CORPUS_DIR = Path(__file__).resolve().parent.parent / "corpus"
SHIPPED = sorted(CORPUS_DIR.glob("*.json"))


def _fingerprint(result) -> str:
    """Stable content hash of everything the flow emitted.

    ``str`` of an expression renders its full structure, and block
    *insertion order* is part of the digest — a reordered but equal
    decomposition is a parity break.
    """
    digest = hashlib.sha256()
    for name, expr in result.decomposition.blocks.items():
        digest.update(f"{name}={expr}\n".encode())
    for expr in result.decomposition.outputs:
        digest.update(f"out:{expr}\n".encode())
    digest.update(str(result.op_count).encode())
    digest.update(str(result.chosen).encode())
    return digest.hexdigest()


def _run(system, options) -> str:
    clear_caches()
    result = synthesize(list(system.polys), system.signature, options)
    return _fingerprint(result)


@pytest.mark.parametrize("path", SHIPPED, ids=[p.stem for p in SHIPPED])
@pytest.mark.parametrize("cse_mode", ["rectangle", "dag"])
def test_corpus_fingerprints_identical_packed_on_off(path, cse_mode):
    system = entry_case(load_corpus_entry(path)).system
    options = SynthesisOptions(cse_mode=cse_mode)
    try:
        set_packed_enabled(True)
        packed = _run(system, options)
        set_packed_enabled(False)
        tuples = _run(system, options)
    finally:
        set_packed_enabled(None)
        clear_caches()
    assert packed == tuples
