"""End-to-end CLI contract of ``repro fuzz`` (subprocess level)."""

import json
import os
import subprocess
import sys
from pathlib import Path

SRC = str(Path(__file__).resolve().parent.parent.parent / "src")


def run_fuzz_cli(*extra, env_extra=None, cwd=None):
    env = dict(os.environ, PYTHONPATH=SRC)
    env.pop("REPRO_FAULTS", None)
    if env_extra:
        env.update(env_extra)
    return subprocess.run(
        [sys.executable, "-m", "repro", "fuzz", *extra],
        capture_output=True, text=True, env=env, cwd=cwd,
    )


FAST = (
    "--iterations", "4",
    "--shapes", "single-variable,unstructured",
    "--methods", "direct,horner",
)


class TestCli:
    def test_clean_sweep_exits_zero_and_is_deterministic(self):
        first = run_fuzz_cli("--seed", "3", *FAST)
        second = run_fuzz_cli("--seed", "3", *FAST)
        assert first.returncode == 0, first.stderr
        # stdout is byte-identical across runs; wall-clock goes to stderr.
        assert first.stdout == second.stdout
        assert "digest" in first.stdout
        assert "elapsed:" in first.stderr
        assert "elapsed:" not in first.stdout

    def test_different_seed_different_digest(self):
        a = run_fuzz_cli("--seed", "3", *FAST)
        b = run_fuzz_cli("--seed", "4", *FAST)
        assert a.stdout != b.stdout

    def test_injected_miscompile_fails_and_archives(self, tmp_path):
        result = run_fuzz_cli(
            "--seed", "5", "--iterations", "1",
            "--shapes", "unstructured", "--methods", "direct,horner",
            "--shrink", "--corpus-dir", str(tmp_path),
            env_extra={"REPRO_FAULTS": "miscompile@fuzz:horner"},
        )
        assert result.returncode == 1
        assert "[differential] horner" in result.stdout
        assert "witness" in result.stdout
        files = list(tmp_path.glob("*.json"))
        assert len(files) == 1
        entry = json.loads(files[0].read_text())
        assert entry["expect"] == "fail"
        assert entry["findings"][0]["method"] == "horner"

    def test_time_budget_reports_truncation(self):
        result = run_fuzz_cli(
            "--seed", "1", "--iterations", "500", "--time-budget", "0",
            "--methods", "direct",
        )
        assert result.returncode == 0
        assert "time budget hit" in result.stdout

    def test_unknown_shape_is_a_usage_error(self):
        result = run_fuzz_cli("--shapes", "bogus", "--iterations", "1")
        assert result.returncode != 0
