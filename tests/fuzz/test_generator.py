"""Determinism and shape coverage of the fuzz case generator."""

import pytest

from repro.fuzz import SHAPES, FuzzCase, generate_case, generate_cases


class TestDeterminism:
    def test_same_seed_same_stream(self):
        first = [case.case_id for case in generate_cases(7, 16)]
        second = [case.case_id for case in generate_cases(7, 16)]
        assert first == second

    def test_different_seeds_diverge(self):
        a = [case.case_id for case in generate_cases(1, 8)]
        b = [case.case_id for case in generate_cases(2, 8)]
        assert a != b

    def test_case_is_pure_function_of_seed_and_index(self):
        assert generate_case(5, 3).case_id == generate_case(5, 3).case_id
        # Nearby indices are decorrelated, not shifted copies.
        stream = [generate_case(5, i).case_id for i in range(6)]
        assert len(set(stream)) == len(stream)

    def test_case_id_is_stable_content_hash(self):
        case = generate_case(0, 0)
        clone = FuzzCase(
            system=case.system, shape=case.shape, seed=99, index=42
        )
        # The id hashes the system, not the provenance.
        assert clone.case_id == case.case_id
        assert len(case.case_id) == 12
        int(case.case_id, 16)  # hex


class TestShapes:
    def test_round_robin_covers_every_shape(self):
        seen = {case.shape for case in generate_cases(0, len(SHAPES))}
        assert seen == set(SHAPES)

    def test_shape_filter_restricts(self):
        cases = list(generate_cases(0, 6, shapes=("wraparound",)))
        assert all(case.shape == "wraparound" for case in cases)

    def test_unknown_shape_rejected(self):
        with pytest.raises(KeyError, match="unknown fuzz shape"):
            generate_case(0, 0, shapes=("no-such-shape",))

    def test_generated_systems_are_well_formed(self):
        for case in generate_cases(3, 2 * len(SHAPES)):
            system = case.system
            assert system.polys, str(case)
            sig_vars = set(system.signature.variables)
            for poly in system.polys:
                assert set(poly.used_vars()) <= sig_vars, str(case)

    def test_mixed_width_is_actually_mixed(self):
        # Over a handful of cases the shape must produce at least one
        # signature with non-uniform input widths (that is its point).
        cases = list(generate_cases(0, 8, shapes=("mixed-width",)))
        assert any(
            len({w for _, w in case.system.signature.input_widths}) > 1
            for case in cases
        )

    def test_vanishing_multiple_stays_functionally_simple(self):
        # The perturbed polynomial differs from its base as an integer
        # polynomial but the signature keeps degrees tractable.
        for case in generate_cases(1, 4, shapes=("vanishing-multiple",)):
            for poly in case.system.polys:
                assert poly.total_degree() <= 8, str(case)
