"""Delta-debugging shrinker: minimization, budgets, determinism."""

import pytest

from repro.fuzz import shrink_system
from repro.poly import parse_polynomial as P
from repro.rings import BitVectorSignature
from repro.system import PolySystem


def make_system(*polys, width=8):
    polys = tuple(P(p, variables=("x", "y")) for p in polys)
    return PolySystem(
        name="shrink-test",
        polys=polys,
        signature=BitVectorSignature.uniform(("x", "y"), width),
    )


def has_big_xy_coeff(system):
    """The synthetic "bug": some x*y term with |coefficient| >= 7."""
    return any(
        abs(c) >= 7
        for p in system.polys
        for e, c in p.terms.items()
        if e == (1, 1)
    )


class TestMinimization:
    def test_shrinks_to_the_single_guilty_term(self):
        system = make_system(
            "3*x^2 + 2*y + 5",
            "14*x*y + 9*x + y^2 + 1",
            "x + y",
        )
        result = shrink_system(system, has_big_xy_coeff)
        assert has_big_xy_coeff(result.system)
        # One polynomial, one term, coefficient tightened to the floor.
        assert len(result.system.polys) == 1
        (poly,) = result.system.polys
        assert list(poly.terms) == [(1, 1)]
        assert abs(poly.terms[(1, 1)]) == 7
        assert result.accepted > 0 and not result.exhausted

    def test_variable_dropping(self):
        def uses_y(system):
            return any("y" in p.used_vars() for p in system.polys)

        system = make_system("x + 3*y", "x^2 + 1")
        result = shrink_system(system, uses_y)
        assert uses_y(result.system)
        # x is droppable (substituted to 0) but y must survive.
        assert result.system.variables == ("y",)

    def test_result_always_fails(self):
        system = make_system("8*x*y + 3", "y^3 + 2*x")
        result = shrink_system(system, has_big_xy_coeff)
        assert has_big_xy_coeff(result.system)


class TestContract:
    def test_passing_input_rejected(self):
        system = make_system("x + y")
        with pytest.raises(ValueError, match="does not fail"):
            shrink_system(system, has_big_xy_coeff)

    def test_budget_bounds_predicate_calls(self):
        calls = 0

        def counting(system):
            nonlocal calls
            calls += 1
            return has_big_xy_coeff(system)

        system = make_system(
            "14*x*y + 9*x + y^2 + 1", "3*x^2 + 2*y + 5", "x + y"
        )
        result = shrink_system(system, counting, max_evaluations=5)
        # +1 for the entry sanity check; memoized repeats are free.
        assert calls <= 6
        assert result.evaluations <= 5
        assert result.exhausted
        assert has_big_xy_coeff(result.system)

    def test_deterministic(self):
        from repro.serialize import dumps

        system = make_system("14*x*y + 9*x + y^2 + 1", "3*x^2 + 2*y + 5")
        a = shrink_system(system, has_big_xy_coeff)
        b = shrink_system(system, has_big_xy_coeff)
        assert dumps(a.system) == dumps(b.system)
        assert a.evaluations == b.evaluations

    def test_never_returns_empty_or_zero_system(self):
        def anything(system):
            return True

        system = make_system("x", "y")
        result = shrink_system(system, anything)
        assert result.system.polys
        assert not all(p.is_zero for p in result.system.polys)
