"""The regression corpus: shipped entries must hold their verdicts.

``tests/corpus/*.json`` is the archive of bugs the fuzzer has found;
each file carries an ``expect`` verdict ("pass" after a fix,
"unsupported" for typed skips, "fail" for live bugs).  Replaying them
here is the tier-1 contract that fixed bugs stay fixed.
"""

from pathlib import Path

import pytest

from repro.core import SynthesisOptions
from repro.fuzz import (
    Finding,
    FuzzConfig,
    corpus_entry,
    entry_case,
    generate_case,
    iter_corpus,
    load_corpus_entry,
    replay_entry,
    verify_entry,
    write_corpus_entry,
)
from repro.fuzz.driver import Strategy

CORPUS_DIR = Path(__file__).resolve().parent.parent / "corpus"
SHIPPED = sorted(CORPUS_DIR.glob("*.json"))

#: The cse-mode replay matrix: both scorers, both labelled so the
#: driver's never-worse-than-direct cost oracle applies to each.
CSE_MODES = (
    Strategy("area", SynthesisOptions(cse_mode="dag")),
    Strategy("rectangle", SynthesisOptions(cse_mode="rectangle")),
)


class TestShippedCorpus:
    def test_corpus_is_not_empty(self):
        assert SHIPPED, "tests/corpus must hold the locked regressions"

    @pytest.mark.parametrize(
        "path", SHIPPED, ids=[p.stem for p in SHIPPED]
    )
    def test_entry_holds_its_verdict(self, path):
        entry = load_corpus_entry(path)
        problems = verify_entry(entry)
        assert not problems, "\n".join(problems)

    @pytest.mark.parametrize(
        "path", SHIPPED, ids=[p.stem for p in SHIPPED]
    )
    def test_entry_verdict_is_mode_independent(self, path):
        """Replay every locked regression under both cse modes.

        The dag scorer must agree with the rectangle scorer on every
        archived bug: same functional verdict from the exact oracle,
        and neither mode's area-objective result worse than direct
        (the driver's cost oracle covers both lineup entries because
        both strategies carry cost-checked labels).
        """
        entry = load_corpus_entry(path)
        config = FuzzConfig(
            methods=("direct", "proposed"), strategies=CSE_MODES
        )
        result = replay_entry(entry, config)
        assert result.methods_run == 3  # direct + one run per mode
        mode_findings = [
            f for f in result.findings if f.method.startswith("proposed[")
        ]
        assert not mode_findings, "\n".join(str(f) for f in mode_findings)


class TestRoundTrip:
    def _entry(self, tmp_path, expect="fail", with_finding=True):
        case = generate_case(0, 0, shapes=("single-variable",))
        findings = []
        if with_finding:
            findings = [Finding(
                kind="differential", case_id=case.case_id, shape=case.shape,
                seed=0, index=0, method="horner", detail="synthetic",
            )]
        path = write_corpus_entry(tmp_path, case, findings, expect=expect)
        return case, path

    def test_write_load_roundtrip(self, tmp_path):
        case, path = self._entry(tmp_path)
        entry = load_corpus_entry(path)
        assert entry["id"] == case.case_id
        rebuilt = entry_case(entry)
        assert rebuilt.case_id == case.case_id

    def test_iter_corpus_sorted_and_missing_dir_empty(self, tmp_path):
        self._entry(tmp_path)
        assert [p.name for p in iter_corpus(tmp_path)] == sorted(
            p.name for p in tmp_path.glob("*.json")
        )
        assert list(iter_corpus(tmp_path / "nope")) == []

    def test_wrong_kind_rejected(self, tmp_path):
        bogus = tmp_path / "x.json"
        bogus.write_text('{"kind": "something-else"}')
        with pytest.raises(ValueError, match="not a fuzz-corpus"):
            load_corpus_entry(bogus)

    def test_expect_fail_on_passing_system_is_a_problem(self, tmp_path):
        # Shipped code passes this case, so an entry claiming "fail"
        # must be reported as stale.
        _, path = self._entry(tmp_path, expect="fail")
        problems = verify_entry(load_corpus_entry(path))
        assert problems and "expected the archived failure" in problems[0]

    def test_expect_pass_on_passing_system_holds(self, tmp_path):
        _, path = self._entry(tmp_path, expect="pass", with_finding=False)
        assert verify_entry(load_corpus_entry(path)) == []

    def test_replay_uses_fast_config(self, tmp_path):
        _, path = self._entry(tmp_path)
        entry = load_corpus_entry(path)
        result = replay_entry(
            entry, FuzzConfig(methods=("direct",), check_cost=False)
        )
        assert result.methods_run == 1

    def test_unknown_verdict_is_a_problem(self, tmp_path):
        case = generate_case(0, 0, shapes=("single-variable",))
        entry = corpus_entry(case, [], expect="maybe")
        assert any("unknown expect" in p for p in verify_entry(entry))
